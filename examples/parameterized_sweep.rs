//! Parameterized circuit families and automated sweeps (§3.1 and §3.3):
//! define a hardware-efficient ansatz with symbolic angles, sweep a
//! parameter grid, and compare ⟨Z₀⟩ landscapes computed through SQL against
//! the state-vector reference.
//!
//! ```sh
//! cargo run --example parameterized_sweep
//! ```

use std::collections::HashMap;

use qymera::circuit::library;
use qymera::circuit::param::{linspace, sweep};
use qymera::core::{BackendKind, Engine};

fn main() {
    // A 3-qubit, 1-layer hardware-efficient ansatz: 6 symbolic parameters.
    let family = library::hardware_efficient_ansatz(3, 1);
    let symbols = family.symbols();
    println!("ansatz `{}` with parameters {:?}\n", family.name, symbols);

    // Sweep the first two angles; pin the rest.
    let axes = vec![
        (symbols[0].clone(), linspace(0.0, std::f64::consts::PI, 5)),
        (symbols[1].clone(), linspace(0.0, std::f64::consts::PI, 5)),
    ];
    let pinned: HashMap<String, f64> =
        symbols.iter().skip(2).map(|s| (s.clone(), 0.3)).collect();

    let engine = Engine::with_defaults();
    println!(
        "{:>8} {:>8}  {:>12} {:>12}  {:>10}",
        symbols[0], symbols[1], "<Z0> (sql)", "<Z0> (sv)", "diff"
    );
    let mut max_diff = 0.0f64;
    for binding in sweep(&axes) {
        let mut full = pinned.clone();
        full.extend(binding.clone());
        let circuit = family.bind(&full).expect("all parameters bound");

        let z0 = |backend| {
            let r = engine.run(backend, &circuit);
            let out = r.output.expect("run succeeds");
            1.0 - 2.0 * out.qubit_one_probability(0)
        };
        let sql = z0(BackendKind::Sql);
        let sv = z0(BackendKind::StateVector);
        let diff = (sql - sv).abs();
        max_diff = max_diff.max(diff);
        println!(
            "{:>8.3} {:>8.3}  {:>12.6} {:>12.6}  {:>10.2e}",
            binding[&symbols[0]], binding[&symbols[1]], sql, sv, diff
        );
    }
    println!("\nmax |SQL − statevector| over the grid: {max_diff:.2e}");
    assert!(max_diff < 1e-9, "backends must agree across the whole sweep");
    println!("the SQL backend tracks the reference across the parameter space ✓");
}
