//! Quickstart: build a circuit, look at the SQL Qymera generates for it,
//! run it on the relational engine, and read out probabilities.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qymera::circuit::CircuitBuilder;
use qymera::core::{select_method, BackendKind, Engine};
use qymera::sim::SimOptions;
use qymera::translate::SqlSimulator;

fn main() {
    // 1. Build the paper's running example: a 3-qubit GHZ circuit (Fig. 2a).
    let circuit = CircuitBuilder::named(3, "ghz_3").h(0).cx(0, 1).cx(1, 2).build();
    println!("circuit: {}\n", circuit.summary());

    // 2. Inspect the SQL the Translation Layer produces (Fig. 2c).
    let sql_backend = SqlSimulator::paper_default();
    println!("generated SQL:\n{}\n", sql_backend.generated_sql(&circuit));

    // 3. Execute it on the embedded relational engine.
    let engine = Engine::with_defaults();
    let report = engine.run(BackendKind::Sql, &circuit);
    let state = report.output.as_ref().expect("simulation succeeded");
    println!(
        "ran on `{}` in {:.2} ms ({} nonzero amplitudes, state memory {} B)\n",
        report.backend,
        report.wall_micros as f64 / 1000.0,
        report.support,
        report.memory_bytes
    );
    println!("measurement probabilities:\n{}", state.render_probabilities(4));

    // 4. Ask the Method Selector which backend it would have picked and why.
    let selection = select_method(&circuit, &SimOptions::default());
    println!("method selector says: {}", selection.rationale);

    // 5. Cross-check the SQL result against the dense reference backend.
    let reference = engine.run(BackendKind::StateVector, &circuit);
    let diff = state.max_amplitude_diff(reference.output.as_ref().unwrap());
    println!("max amplitude difference vs state vector: {diff:.2e}");
    assert!(diff < 1e-9);
}
