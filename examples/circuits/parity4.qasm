// Parity check of the classical input 1011 (qubits 0,1,3 set) with the
// ancilla on q[4]: three ones -> the ancilla reads 1.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
x q[0];
x q[1];
x q[3];
cx q[0], q[4];
cx q[1], q[4];
cx q[2], q[4];
cx q[3], q[4];
