//! Demonstration Scenario 2 — simulation-method benchmarking.
//!
//! Runs GHZ state preparation and the equal superposition of all states
//! (the paper's two test cases) across every backend, printing the
//! time/memory pivot tables the demo's benchmark panel displays.
//!
//! ```sh
//! cargo run --release --example ghz_benchmark -- 14
//! ```

use qymera::core::benchsuite::report::{pivot_memory_table, pivot_time_table, to_csv};
use qymera::core::benchsuite::{run_sweep, Workload};
use qymera::core::{BackendKind, Engine};
use qymera::sim::SimOptions;

fn main() {
    let max_n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let sizes: Vec<usize> = (4..=max_n).step_by(2).collect();

    let engine = Engine::new(SimOptions::default());
    let workloads = vec![
        Workload::new("ghz", qymera::circuit::library::ghz),
        Workload::new("equal_superposition", qymera::circuit::library::equal_superposition),
    ];
    let records = run_sweep("scenario2", &engine, &workloads, &sizes, &BackendKind::ALL);

    for workload in ["ghz", "equal_superposition"] {
        let subset: Vec<_> = records.iter().filter(|r| r.workload == workload).cloned().collect();
        println!("=== {workload}: wall time (ms) ===");
        println!("{}", pivot_time_table(&subset));
        println!("=== {workload}: peak state memory ===");
        println!("{}", pivot_memory_table(&subset));
    }

    // Scenario 2's takeaway, computed from the data: who wins where?
    let ghz_best = fastest(&records, "ghz", max_n);
    let dense_best = fastest(&records, "equal_superposition", max_n);
    println!("fastest on ghz({max_n}):                 {ghz_best}");
    println!("fastest on equal_superposition({max_n}): {dense_best}");
    println!(
        "\n(as in the paper: no single method dominates — benchmark, don't guess.)"
    );

    // Export for further analysis, as the Output Layer's export feature does.
    let path = std::env::temp_dir().join("qymera_scenario2.csv");
    std::fs::write(&path, to_csv(&records)).expect("write CSV");
    println!("full results exported to {}", path.display());
}

fn fastest(records: &[qymera::core::benchsuite::BenchRecord], workload: &str, n: usize) -> String {
    records
        .iter()
        .filter(|r| r.workload == workload && r.num_qubits == n && r.ok)
        .min_by(|a, b| a.wall_micros.cmp(&b.wall_micros))
        .map(|r| format!("{} ({:.2} ms)", r.backend, r.wall_ms()))
        .unwrap_or_else(|| "n/a".to_string())
}
