//! Demonstration Scenario 1 — quantum algorithm design and testing.
//!
//! Builds the paper's parity-check algorithm (does a bitstring contain an
//! even or odd number of ones?), translates it to SQL, runs it on every
//! backend, and compares performance — exactly the workflow the demo walks
//! SIGMOD attendees through.
//!
//! ```sh
//! cargo run --example parity_check -- 101101
//! ```

use qymera::circuit::library;
use qymera::core::{BackendKind, Engine};
use qymera::translate::SqlSimulator;

fn main() {
    let bits_arg = std::env::args().nth(1).unwrap_or_else(|| "10110".to_string());
    let input: Vec<bool> = bits_arg
        .chars()
        .map(|c| match c {
            '0' => false,
            '1' => true,
            other => panic!("input must be a bitstring, found `{other}`"),
        })
        .collect();
    let ones = input.iter().filter(|&&b| b).count();
    println!("input bitstring: {bits_arg} ({ones} ones → parity {})", ones % 2);

    // The algorithm: prepare |input⟩ on the data register, then fan CX gates
    // into one ancilla. Measuring the ancilla yields the parity.
    let circuit = library::parity_check(&input);
    let ancilla = input.len();
    println!("circuit: {}\n", circuit.summary());

    println!("SQL for the CX fan-in:\n{}\n",
        SqlSimulator::paper_default().generated_sql(&circuit));

    let engine = Engine::with_defaults();
    println!("{:>12}  {:>10}  {:>8}  parity", "backend", "wall_ms", "memory");
    for backend in BackendKind::ALL {
        let report = engine.run(backend, &circuit);
        match &report.output {
            Some(state) => {
                let p1 = state.qubit_one_probability(ancilla);
                let parity = if p1 > 0.5 { "odd" } else { "even" };
                println!(
                    "{:>12}  {:>10.3}  {:>8}  {parity}",
                    report.backend,
                    report.wall_micros as f64 / 1000.0,
                    report.memory_bytes
                );
                assert_eq!(p1 > 0.5, ones % 2 == 1, "{backend} computed wrong parity");
            }
            None => println!("{:>12}  failed: {}", report.backend, report.error.unwrap()),
        }
    }
    println!("\nall backends agree with the classical parity ✓");
}
