//! Out-of-core simulation (§3.3): run a dense circuit whose state does not
//! fit in the memory budget. The in-memory baselines fail outright; the SQL
//! backend spills aggregation state to disk and completes.
//!
//! ```sh
//! cargo run --release --example out_of_core -- 14
//! ```

use qymera::circuit::library;
use qymera::core::{BackendKind, Engine};
use qymera::sim::SimOptions;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let circuit = library::equal_superposition(n);
    // A budget far below the 2^n-amplitude state (16·2^n bytes dense).
    let budget = 64 * 1024;
    println!(
        "workload: equal_superposition({n}) → 2^{n} = {} amplitudes\n\
         memory budget: {budget} bytes (dense state needs {} bytes)\n",
        1u64 << n,
        16u64 << n
    );

    let engine = Engine::new(SimOptions::with_memory_limit(budget));
    for backend in [
        BackendKind::StateVector,
        BackendKind::Sparse,
        BackendKind::Dd,
        BackendKind::Sql,
    ] {
        let r = engine.run(backend, &circuit);
        match (&r.output, &r.error) {
            (Some(out), _) => println!(
                "{:>12}: ok — {} amplitudes in {:.1} ms, engine peak {} B  [{}]",
                r.backend,
                out.nonzero_count(),
                r.wall_micros as f64 / 1000.0,
                r.memory_bytes,
                r.detail
            ),
            (None, Some(e)) => println!("{:>12}: FAILED — {e}", r.backend),
            _ => unreachable!(),
        }
    }
    println!(
        "\nOnly the SQL backend finishes: its grouped aggregation partitions\n\
         the state to disk when the budget runs out — the RDBMS feature the\n\
         paper highlights as enabling simulation 'at scales beyond traditional\n\
         in-memory methods'."
    );
}
