//! Demonstration Scenario 3 — educational exploration of entanglement and
//! superposition. Walks through the GHZ circuit gate by gate, showing the
//! relational state table after every step (the paper's Fig. 2 tables
//! T0 → T3) and the final measurement statistics.
//!
//! ```sh
//! cargo run --example educational_ghz
//! ```

use qymera::circuit::library;
use qymera::translate::{measure, SqlSimulator};
use qymera::sqldb::Database;

fn main() {
    let circuit = library::ghz(3);
    let sim = SqlSimulator::paper_default();

    println!("The 3-qubit GHZ circuit of the paper's Fig. 2:");
    println!("  H(q0) — put qubit 0 into superposition");
    println!("  CX(q0→q1), CX(q1→q2) — spread it into entanglement\n");

    println!("Generated SQL (one CTE per gate):\n{}\n", sim.generated_sql(&circuit));

    let states = sim.run_trace(&circuit).expect("trace runs");
    let labels = ["|ψ⟩₀ = |000⟩", "|ψ⟩₁ after H(q0)", "|ψ⟩₂ after CX(q0→q1)",
                  "|ψ⟩₃ after CX(q1→q2)"];
    for (state, label) in states.iter().zip(labels) {
        println!("{label} — state table T(s, r, i):");
        println!("  {:>3}  {:>10}  {:>10}", "s", "r", "i");
        for a in state {
            println!("  {:>3}  {:>10.6}  {:>10.6}", a.s, a.amp.re, a.amp.im);
        }
        println!();
    }

    println!("Interpretation: only |000⟩ and |111⟩ survive — measuring any one");
    println!("qubit instantly determines the other two. That is entanglement.\n");

    // Measurement statistics straight from SQL (Output Layer).
    let mut db = Database::new();
    db.execute("CREATE TABLE T (s INTEGER, r DOUBLE, i DOUBLE)").unwrap();
    let a = std::f64::consts::FRAC_1_SQRT_2;
    db.execute(&format!("INSERT INTO T VALUES (0, {a}, 0.0), (7, {a}, 0.0)")).unwrap();
    for q in 0..3 {
        let rs = db.execute(&measure::marginal_query("T", q)).unwrap();
        println!("marginal of qubit {q}:");
        print!("{}", rs.to_table_string());
    }
    let rs = db.execute(&measure::norm_query("T")).unwrap();
    println!("total probability (must be 1): {}", rs.scalar().unwrap());
}
