//! Facade re-exporting the Qymera workspace crates.
pub use qymera_circuit as circuit;
pub use qymera_core as core;
pub use qymera_sim as sim;
pub use qymera_sqldb as sqldb;
pub use qymera_translate as translate;
