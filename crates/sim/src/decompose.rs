//! Decomposition of 3-qubit gates into the {1,2}-qubit gate set.
//!
//! The MPS backend operates on nearest-neighbour 2-qubit gates; CCX/CSWAP
//! are rewritten with the textbook constructions before simulation.

use qymera_circuit::{Gate, GateKind, QuantumCircuit};

/// Rewrite a circuit so every gate acts on at most two qubits.
/// CCX uses the standard 6-CX + T-gate construction; CSWAP reduces to CCX
/// conjugated by CX.
pub fn decompose_to_two_qubit(circuit: &QuantumCircuit) -> QuantumCircuit {
    let mut out = QuantumCircuit::with_name(circuit.num_qubits, &circuit.name);
    for gate in circuit.gates() {
        match gate.kind {
            GateKind::Ccx => {
                let (a, b, c) = (gate.qubits[0], gate.qubits[1], gate.qubits[2]);
                push_ccx(&mut out, a, b, c);
            }
            GateKind::CSwap => {
                let (ctrl, x, y) = (gate.qubits[0], gate.qubits[1], gate.qubits[2]);
                push(&mut out, GateKind::Cx, &[y, x], &[]);
                push_ccx(&mut out, ctrl, x, y);
                push(&mut out, GateKind::Cx, &[y, x], &[]);
            }
            _ => out.push(gate.clone()).expect("input circuit was valid"),
        }
    }
    out
}

fn push(c: &mut QuantumCircuit, kind: GateKind, qubits: &[usize], params: &[f64]) {
    c.push(Gate::new(kind, qubits.to_vec(), params.to_vec()))
        .expect("decomposition produced an invalid gate");
}

/// Standard Toffoli decomposition (Nielsen & Chuang Fig. 4.9) with controls
/// `a`, `b` and target `c`.
fn push_ccx(out: &mut QuantumCircuit, a: usize, b: usize, c: usize) {
    use GateKind::*;
    push(out, H, &[c], &[]);
    push(out, Cx, &[b, c], &[]);
    push(out, Tdg, &[c], &[]);
    push(out, Cx, &[a, c], &[]);
    push(out, T, &[c], &[]);
    push(out, Cx, &[b, c], &[]);
    push(out, Tdg, &[c], &[]);
    push(out, Cx, &[a, c], &[]);
    push(out, T, &[b], &[]);
    push(out, T, &[c], &[]);
    push(out, H, &[c], &[]);
    push(out, Cx, &[a, b], &[]);
    push(out, T, &[a], &[]);
    push(out, Tdg, &[b], &[]);
    push(out, Cx, &[a, b], &[]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVectorSim;
    use crate::traits::{SimOptions, Simulator};
    use qymera_circuit::{library, CircuitBuilder};

    /// The decomposed circuit must act identically on every basis state.
    fn assert_equivalent(original: &QuantumCircuit) {
        let decomposed = decompose_to_two_qubit(original);
        assert!(decomposed.gates().iter().all(|g| g.qubits.len() <= 2));
        let n = original.num_qubits;
        let sim = StateVectorSim;
        for basis in 0..(1u64 << n) {
            // Prepare |basis⟩ with X gates, then run both.
            let mut prep = CircuitBuilder::new(n);
            for q in 0..n {
                if (basis >> q) & 1 == 1 {
                    prep = prep.x(q);
                }
            }
            let prep = prep.build();
            let mut c1 = prep.clone();
            c1.append(original).unwrap();
            let mut c2 = prep;
            c2.append(&decomposed).unwrap();
            let o1 = sim.simulate(&c1, &SimOptions::default()).unwrap();
            let o2 = sim.simulate(&c2, &SimOptions::default()).unwrap();
            assert!(
                o1.max_amplitude_diff(&o2) < 1e-9,
                "basis {basis}: decomposition differs"
            );
        }
    }

    #[test]
    fn ccx_decomposition_exact() {
        let c = CircuitBuilder::new(3).ccx(0, 1, 2).build();
        assert_equivalent(&c);
        // also with permuted qubit roles
        let c = CircuitBuilder::new(3).ccx(2, 0, 1).build();
        assert_equivalent(&c);
    }

    #[test]
    fn cswap_decomposition_exact() {
        let c = CircuitBuilder::new(3).cswap(0, 1, 2).build();
        assert_equivalent(&c);
        let c = CircuitBuilder::new(3).cswap(1, 2, 0).build();
        assert_equivalent(&c);
    }

    #[test]
    fn grover_decomposes_and_matches() {
        let g = library::grover(3, 2, 1);
        let d = decompose_to_two_qubit(&g);
        let sim = StateVectorSim;
        let o1 = sim.simulate(&g, &SimOptions::default()).unwrap();
        let o2 = sim.simulate(&d, &SimOptions::default()).unwrap();
        assert!(o1.max_amplitude_diff(&o2) < 1e-9);
    }

    #[test]
    fn passthrough_for_small_gates() {
        let c = library::ghz(4);
        let d = decompose_to_two_qubit(&c);
        assert_eq!(c.gates(), d.gates());
    }
}
