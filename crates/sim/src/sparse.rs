//! Sparse hash-map simulator.
//!
//! Stores only nonzero amplitudes — the in-memory analogue of the paper's
//! relational state encoding ("Only nonzero basis states are stored", §2.1).
//! Per gate, cost is O(nonzeros · 2^k); memory is O(nonzeros). On sparse
//! circuit families this is the fair non-SQL baseline; on dense circuits it
//! degenerates to a (slower) state vector.

use std::collections::{BTreeMap, HashMap};

use qymera_circuit::{Complex64, Gate, QuantumCircuit};

use crate::traits::{SimError, SimOptions, SimOutput, Simulator};

/// Sparse map backend.
#[derive(Debug, Clone, Default)]
pub struct SparseSim;

/// Approximate bytes per stored amplitude (key + value + hash overhead).
pub const BYTES_PER_ENTRY: usize = 8 + 16 + 24;

impl SparseSim {
    fn apply_gate(
        state: HashMap<u64, Complex64>,
        gate: &Gate,
        tol2: f64,
        limit: Option<usize>,
    ) -> Result<HashMap<u64, Complex64>, SimError> {
        let m = gate.matrix();
        let k = gate.qubits.len();
        let dim = 1usize << k;
        let mut next: HashMap<u64, Complex64> = HashMap::with_capacity(state.len());
        for (s, amp) in state {
            // Local input index from the gate qubits' bits.
            let mut li = 0usize;
            for (j, &q) in gate.qubits.iter().enumerate() {
                if (s >> q) & 1 == 1 {
                    li |= 1 << j;
                }
            }
            // Base index with gate-qubit bits cleared.
            let mut base = s;
            for &q in &gate.qubits {
                base &= !(1u64 << q);
            }
            for lo in 0..dim {
                let w = m[(lo, li)];
                if w.norm_sqr() == 0.0 {
                    continue;
                }
                let mut ns = base;
                for (j, &q) in gate.qubits.iter().enumerate() {
                    if (lo >> j) & 1 == 1 {
                        ns |= 1u64 << q;
                    }
                }
                let entry = next.entry(ns).or_insert(Complex64::ZERO);
                *entry += w * amp;
            }
            if let Some(limit) = limit {
                let bytes = next.len() * BYTES_PER_ENTRY;
                if bytes > limit {
                    return Err(SimError::OutOfMemory { requested: bytes, limit });
                }
            }
        }
        // Prune numerically-zero entries so sparse circuits stay sparse.
        next.retain(|_, a| a.norm_sqr() > tol2);
        Ok(next)
    }
}

impl Simulator for SparseSim {
    fn name(&self) -> &'static str {
        "sparse"
    }

    fn simulate(
        &self,
        circuit: &QuantumCircuit,
        opts: &SimOptions,
    ) -> Result<SimOutput, SimError> {
        let n = circuit.num_qubits;
        if n > 63 {
            return Err(SimError::TooManyQubits { qubits: n, max: 63 });
        }
        let tol2 = opts.truncation_tol * opts.truncation_tol;
        let mut state = HashMap::new();
        state.insert(0u64, Complex64::ONE);
        let mut peak = BYTES_PER_ENTRY;
        for gate in circuit.gates() {
            state = Self::apply_gate(state, gate, tol2, opts.memory_limit)?;
            peak = peak.max(state.len() * BYTES_PER_ENTRY);
        }
        let amplitudes: BTreeMap<u64, Complex64> = state.into_iter().collect();
        let mut out = SimOutput::from_map(n, amplitudes, peak);
        out.detail = format!("peak {} nonzero amplitudes", peak / BYTES_PER_ENTRY);
        Ok(out)
    }

    fn max_qubits(&self, _opts: &SimOptions) -> usize {
        // The basis-index width is the cap; memory depends on the circuit,
        // not the register size.
        63
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVectorSim;
    use qymera_circuit::library;

    const TOL: f64 = 1e-10;

    fn run(c: &QuantumCircuit) -> SimOutput {
        SparseSim.simulate(c, &SimOptions::default()).unwrap()
    }

    #[test]
    fn ghz_stays_two_entries_at_large_n() {
        let out = run(&library::ghz(40));
        assert_eq!(out.nonzero_count(), 2);
        assert!((out.probability(0) - 0.5).abs() < TOL);
        assert!((out.probability((1u64 << 40) - 1) - 0.5).abs() < TOL);
        assert_eq!(out.memory_bytes, 2 * BYTES_PER_ENTRY);
    }

    #[test]
    fn sparse_circuit_family_stays_sparse() {
        let c = library::sparse_circuit(32, 6, 3);
        let out = run(&c);
        assert!(out.nonzero_count() <= 2, "sparse family must stay ≤2 nonzeros");
        assert!((out.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn matches_statevector_on_random_circuits() {
        for seed in 0..6 {
            let c = library::random_circuit(5, 30, seed);
            let sparse = run(&c);
            let dense = StateVectorSim.simulate(&c, &SimOptions::default()).unwrap();
            assert!(
                sparse.max_amplitude_diff(&dense) < 1e-9,
                "seed {seed}: sparse and dense disagree"
            );
        }
    }

    #[test]
    fn interference_cancels_amplitudes() {
        // H then H returns to |0⟩; the |1⟩ entry must be pruned exactly.
        let c = qymera_circuit::CircuitBuilder::new(1).h(0).h(0).build();
        let out = run(&c);
        assert_eq!(out.nonzero_count(), 1);
        assert!((out.probability(0) - 1.0).abs() < TOL);
    }

    #[test]
    fn memory_limit_enforced_on_dense_growth() {
        let opts = SimOptions {
            memory_limit: Some(100 * BYTES_PER_ENTRY),
            ..Default::default()
        };
        let c = library::equal_superposition(10); // 1024 entries
        assert!(matches!(
            SparseSim.simulate(&c, &opts),
            Err(SimError::OutOfMemory { .. })
        ));
        // but a sparse circuit on far more qubits is fine under the same limit
        assert!(SparseSim.simulate(&library::ghz(50), &opts).is_ok());
    }

    #[test]
    fn too_many_qubits_rejected() {
        let c = QuantumCircuit::new(64);
        assert!(matches!(
            SparseSim.simulate(&c, &SimOptions::default()),
            Err(SimError::TooManyQubits { .. })
        ));
    }
}
