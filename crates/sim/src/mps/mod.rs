//! Matrix-product-state (tensor network) simulator — the paper's "MPS"
//! backend (§3.3, "tensor networks, e.g., MPS").
//!
//! The state is a chain of rank-3 tensors `T_q[l, p, r]` (left bond,
//! physical, right bond). Single-qubit gates are local contractions;
//! two-qubit gates on adjacent sites contract the pair into a Θ tensor,
//! apply the 4×4 unitary, and split it back with the SVD from
//! [`linalg`], truncating the bond to `max_bond_dim`. Non-adjacent gates are
//! routed with SWAP networks; 3-qubit gates are pre-decomposed via
//! [`crate::decompose`].
//!
//! GHZ and other low-entanglement states keep bond dimension 2 at any `n`;
//! volume-law random circuits blow up exponentially — reproducing the
//! backend trade-off narrative of Scenario 2.

pub mod linalg;

use std::collections::BTreeMap;

use qymera_circuit::{CMatrix, Complex64, Gate, QuantumCircuit};

use crate::decompose::decompose_to_two_qubit;
use crate::traits::{SimError, SimOptions, SimOutput, Simulator};

use linalg::svd;

/// One site tensor: index `(l, p, r) → data[(l*2 + p)*right + r]`.
#[derive(Debug, Clone)]
struct SiteTensor {
    left: usize,
    right: usize,
    data: Vec<Complex64>,
}

impl SiteTensor {
    fn zero_state() -> Self {
        SiteTensor { left: 1, right: 1, data: vec![Complex64::ONE, Complex64::ZERO] }
    }

    #[inline]
    fn at(&self, l: usize, p: usize, r: usize) -> Complex64 {
        self.data[(l * 2 + p) * self.right + r]
    }

    #[inline]
    fn set(&mut self, l: usize, p: usize, r: usize, v: Complex64) {
        self.data[(l * 2 + p) * self.right + r] = v;
    }

    fn bytes(&self) -> usize {
        self.data.len() * 16
    }
}

/// The evolving MPS.
pub struct MpsState {
    tensors: Vec<SiteTensor>,
    /// Largest bond dimension reached so far.
    pub max_bond_seen: usize,
    /// Total squared norm discarded by truncation so far.
    pub truncation_error: f64,
    peak_bytes: usize,
}

impl MpsState {
    /// |0…0⟩ on `n` qubits.
    pub fn zero(n: usize) -> Self {
        MpsState {
            tensors: (0..n).map(|_| SiteTensor::zero_state()).collect(),
            max_bond_seen: 1,
            truncation_error: 0.0,
            peak_bytes: n * 32,
        }
    }

    pub fn num_qubits(&self) -> usize {
        self.tensors.len()
    }

    fn current_bytes(&self) -> usize {
        self.tensors.iter().map(SiteTensor::bytes).sum()
    }

    fn note_memory(&mut self, limit: Option<usize>) -> Result<(), SimError> {
        let b = self.current_bytes();
        self.peak_bytes = self.peak_bytes.max(b);
        if let Some(limit) = limit {
            if b > limit {
                return Err(SimError::OutOfMemory { requested: b, limit });
            }
        }
        Ok(())
    }

    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Apply a single-qubit unitary at site `q`.
    fn apply_1q(&mut self, q: usize, m: &CMatrix) {
        let t = &mut self.tensors[q];
        for l in 0..t.left {
            for r in 0..t.right {
                let a0 = t.at(l, 0, r);
                let a1 = t.at(l, 1, r);
                t.set(l, 0, r, m[(0, 0)] * a0 + m[(0, 1)] * a1);
                t.set(l, 1, r, m[(1, 0)] * a0 + m[(1, 1)] * a1);
            }
        }
    }

    /// Apply a 4×4 unitary to adjacent sites `(q, q+1)` where the matrix's
    /// local bit 0 is site `q` and bit 1 is site `q+1`.
    fn apply_2q_adjacent(
        &mut self,
        q: usize,
        m: &CMatrix,
        opts: &SimOptions,
    ) -> Result<(), SimError> {
        let a = &self.tensors[q];
        let b = &self.tensors[q + 1];
        let (dl, dm, dr) = (a.left, a.right, b.right);
        debug_assert_eq!(b.left, dm);

        // Θ[l, p0, p1, r] = Σ_m A[l,p0,m] B[m,p1,r]
        let mut theta = vec![Complex64::ZERO; dl * 2 * 2 * dr];
        let idx = |l: usize, p0: usize, p1: usize, r: usize| ((l * 2 + p0) * 2 + p1) * dr + r;
        for l in 0..dl {
            for p0 in 0..2 {
                for mm in 0..dm {
                    let av = a.at(l, p0, mm);
                    if av == Complex64::ZERO {
                        continue;
                    }
                    for p1 in 0..2 {
                        for r in 0..dr {
                            theta[idx(l, p0, p1, r)] += av * b.at(mm, p1, r);
                        }
                    }
                }
            }
        }

        // Apply the gate: Θ'[l,o0,o1,r] = Σ M[(o1<<1|o0),(p1<<1|p0)] Θ[l,p0,p1,r]
        let mut theta2 = vec![Complex64::ZERO; dl * 2 * 2 * dr];
        for l in 0..dl {
            for r in 0..dr {
                for o0 in 0..2 {
                    for o1 in 0..2 {
                        let mut acc = Complex64::ZERO;
                        for p0 in 0..2 {
                            for p1 in 0..2 {
                                let w = m[((o1 << 1) | o0, (p1 << 1) | p0)];
                                if w == Complex64::ZERO {
                                    continue;
                                }
                                acc += w * theta[idx(l, p0, p1, r)];
                            }
                        }
                        theta2[idx(l, o0, o1, r)] = acc;
                    }
                }
            }
        }

        // Reshape to (l·p0) × (p1·r) and SVD-split.
        let rows = dl * 2;
        let cols = 2 * dr;
        let mut mat = CMatrix::zeros(rows, cols);
        for l in 0..dl {
            for o0 in 0..2 {
                for o1 in 0..2 {
                    for r in 0..dr {
                        mat[(l * 2 + o0, o1 * dr + r)] = theta2[idx(l, o0, o1, r)];
                    }
                }
            }
        }
        let dec = svd(&mat)?;

        // Truncate.
        let smax = dec.s.first().copied().unwrap_or(0.0);
        let mut chi = dec
            .s
            .iter()
            .take_while(|&&x| x > opts.truncation_tol * smax.max(1e-300))
            .count()
            .max(1);
        if let Some(cap) = opts.max_bond_dim {
            chi = chi.min(cap.max(1));
        }
        let discarded: f64 = dec.s[chi..].iter().map(|x| x * x).sum();
        self.truncation_error += discarded;
        // Rescale the kept spectrum to preserve the Θ block's own norm.
        // (The chain is not kept in canonical form, so the block norm is not
        // 1 in general — forcing it to 1 would corrupt the global state.)
        let kept: f64 = dec.s[..chi].iter().map(|x| x * x).sum();
        let total = kept + discarded;
        let renorm = if kept > 0.0 { (total / kept).sqrt() } else { 1.0 };
        debug_assert!(
            {
                let theta_norm2: f64 = theta2.iter().map(|z| z.norm_sqr()).sum();
                (theta_norm2 - total).abs() <= 1e-6 * theta_norm2.max(1.0)
            },
            "SVD lost mass: |theta|^2 = {}, sum s^2 = {total}",
            theta2.iter().map(|z| z.norm_sqr()).sum::<f64>()
        );

        let mut new_a = SiteTensor {
            left: dl,
            right: chi,
            data: vec![Complex64::ZERO; dl * 2 * chi],
        };
        for l in 0..dl {
            for o0 in 0..2 {
                for j in 0..chi {
                    new_a.set(l, o0, j, dec.u[(l * 2 + o0, j)]);
                }
            }
        }
        let mut new_b = SiteTensor {
            left: chi,
            right: dr,
            data: vec![Complex64::ZERO; chi * 2 * dr],
        };
        for j in 0..chi {
            let sj = dec.s[j] * renorm;
            for o1 in 0..2 {
                for r in 0..dr {
                    new_b.set(j, o1, r, dec.vt[(j, o1 * dr + r)].scale(sj));
                }
            }
        }
        self.tensors[q] = new_a;
        self.tensors[q + 1] = new_b;
        self.max_bond_seen = self.max_bond_seen.max(chi);
        self.note_memory(opts.memory_limit)
    }

    /// Apply an arbitrary 2-qubit gate via SWAP routing.
    fn apply_2q(&mut self, gate: &Gate, opts: &SimOptions) -> Result<(), SimError> {
        let (a, b) = (gate.qubits[0], gate.qubits[1]);
        let m = gate.matrix();
        let swap = Gate::new(qymera_circuit::GateKind::Swap, vec![0, 1], vec![]).matrix();
        let (lo, hi) = (a.min(b), a.max(b));
        // Route `hi` down to `lo + 1`.
        for site in (lo + 1..hi).rev() {
            self.apply_2q_adjacent(site, &swap, opts)?;
        }
        // After routing, sites are (lo, lo+1) holding qubits (a..) — if the
        // first listed qubit is the higher one, permute the matrix bits.
        let m_local = if a < b { m } else { permute_2q_bits(&m) };
        self.apply_2q_adjacent(lo, &m_local, opts)?;
        // Route back.
        for site in lo + 1..hi {
            self.apply_2q_adjacent(site, &swap, opts)?;
        }
        Ok(())
    }

    /// Amplitude of basis state `s`: contract left-to-right, O(n·χ²).
    pub fn amplitude(&self, s: u64) -> Complex64 {
        let mut vec: Vec<Complex64> = vec![Complex64::ONE];
        for (q, t) in self.tensors.iter().enumerate() {
            let p = ((s >> q) & 1) as usize;
            let mut next = vec![Complex64::ZERO; t.right];
            for (l, &vl) in vec.iter().enumerate() {
                if vl == Complex64::ZERO {
                    continue;
                }
                for (r, slot) in next.iter_mut().enumerate() {
                    *slot += vl * t.at(l, p, r);
                }
            }
            vec = next;
        }
        vec[0]
    }

    /// Reconstruct all amplitudes (exponential; guarded by the caller).
    fn reconstruct(&self, tol: f64) -> BTreeMap<u64, Complex64> {
        let n = self.num_qubits();
        // Running contraction: for each partial basis prefix, a bond vector.
        let mut partial: Vec<(u64, Vec<Complex64>)> = vec![(0, vec![Complex64::ONE])];
        for (q, t) in self.tensors.iter().enumerate() {
            let mut next = Vec::with_capacity(partial.len() * 2);
            for (bits, v) in &partial {
                for p in 0..2u64 {
                    let mut nv = vec![Complex64::ZERO; t.right];
                    let mut nonzero = false;
                    for (l, &vl) in v.iter().enumerate() {
                        if vl == Complex64::ZERO {
                            continue;
                        }
                        for (r, slot) in nv.iter_mut().enumerate() {
                            *slot += vl * t.at(l, p as usize, r);
                            nonzero = true;
                        }
                    }
                    // Prune branches that are exactly dead to keep sparse
                    // states cheap.
                    if nonzero && nv.iter().any(|z| z.norm_sqr() > 1e-30) {
                        next.push((bits | (p << q), nv));
                    }
                }
            }
            partial = next;
            let _ = n;
        }
        let tol2 = tol * tol;
        partial
            .into_iter()
            .filter_map(|(bits, v)| {
                let a = v[0];
                if a.norm_sqr() > tol2 {
                    Some((bits, a))
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Permute a 4×4 gate matrix so local bits 0 and 1 swap roles.
fn permute_2q_bits(m: &CMatrix) -> CMatrix {
    let perm = |i: usize| ((i & 1) << 1) | ((i >> 1) & 1);
    let mut out = CMatrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            out[(perm(i), perm(j))] = m[(i, j)];
        }
    }
    out
}

/// The MPS backend.
#[derive(Debug, Clone, Default)]
pub struct MpsSim;

/// Largest register for which [`MpsState::reconstruct`] is allowed.
const MAX_RECONSTRUCT_QUBITS: usize = 26;

impl MpsSim {
    /// Run and return the MPS itself (for bond-dimension inspection and
    /// amplitude queries at scales where reconstruction is impossible).
    pub fn run_mps(
        &self,
        circuit: &QuantumCircuit,
        opts: &SimOptions,
    ) -> Result<MpsState, SimError> {
        let circuit = decompose_to_two_qubit(circuit);
        let mut state = MpsState::zero(circuit.num_qubits);
        for gate in circuit.gates() {
            match gate.qubits.len() {
                1 => state.apply_1q(gate.qubits[0], &gate.matrix()),
                2 => state.apply_2q(gate, opts)?,
                k => {
                    return Err(SimError::Unsupported(format!(
                        "{k}-qubit gate survived decomposition"
                    )))
                }
            }
        }
        Ok(state)
    }
}

impl Simulator for MpsSim {
    fn name(&self) -> &'static str {
        "mps"
    }

    fn simulate(
        &self,
        circuit: &QuantumCircuit,
        opts: &SimOptions,
    ) -> Result<SimOutput, SimError> {
        if circuit.num_qubits > MAX_RECONSTRUCT_QUBITS {
            return Err(SimError::TooManyQubits {
                qubits: circuit.num_qubits,
                max: MAX_RECONSTRUCT_QUBITS,
            });
        }
        let state = self.run_mps(circuit, opts)?;
        let amplitudes = state.reconstruct(opts.truncation_tol);
        let mut out = SimOutput::from_map(circuit.num_qubits, amplitudes, state.peak_bytes());
        out.detail = format!(
            "max bond {} / truncation error {:.3e}",
            state.max_bond_seen, state.truncation_error
        );
        Ok(out)
    }

    fn max_qubits(&self, _opts: &SimOptions) -> usize {
        MAX_RECONSTRUCT_QUBITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVectorSim;
    use qymera_circuit::{library, CircuitBuilder};

    const TOL: f64 = 1e-8;

    fn run(c: &QuantumCircuit) -> SimOutput {
        MpsSim.simulate(c, &SimOptions::default()).unwrap()
    }

    #[test]
    fn ghz_has_bond_dimension_two() {
        let sim = MpsSim;
        let state = sim.run_mps(&library::ghz(12), &SimOptions::default()).unwrap();
        assert_eq!(state.max_bond_seen, 2, "GHZ entanglement is bond-2");
        let out = run(&library::ghz(12));
        assert_eq!(out.nonzero_count(), 2);
        assert!((out.probability(0) - 0.5).abs() < TOL);
        assert!((out.probability((1 << 12) - 1) - 0.5).abs() < TOL);
    }

    #[test]
    fn matches_statevector_on_random_circuits() {
        for seed in 0..5 {
            let c = library::random_circuit(5, 25, seed);
            let mps = run(&c);
            let sv = StateVectorSim.simulate(&c, &SimOptions::default()).unwrap();
            let diff = mps.max_amplitude_diff(&sv);
            assert!(diff < 1e-7, "seed {seed}: MPS differs from dense by {diff}");
        }
    }

    #[test]
    fn non_adjacent_gates_route_correctly() {
        // CX(0, 3) requires swap routing.
        let c = CircuitBuilder::new(4).x(0).cx(0, 3).build();
        let out = run(&c);
        assert!((out.probability(0b1001) - 1.0).abs() < TOL);
        // And with reversed listed order: CX(3, 0) control on the high qubit.
        let c = CircuitBuilder::new(4).x(3).cx(3, 0).build();
        let out = run(&c);
        assert!((out.probability(0b1001) - 1.0).abs() < TOL);
    }

    #[test]
    fn toffoli_via_decomposition() {
        let c = CircuitBuilder::new(3).x(0).x(1).ccx(0, 1, 2).build();
        let out = run(&c);
        assert!((out.probability(7) - 1.0).abs() < TOL);
    }

    #[test]
    fn bond_cap_truncates_and_reports() {
        let c = library::dense_circuit(8, 4, 5);
        let opts = SimOptions { max_bond_dim: Some(2), ..Default::default() };
        let state = MpsSim.run_mps(&c, &opts).unwrap();
        assert!(state.max_bond_seen <= 2);
        assert!(state.truncation_error > 0.0, "dense circuit must truncate at χ=2");
        // exact run discards only numerical noise
        let exact = MpsSim.run_mps(&c, &SimOptions::default()).unwrap();
        assert!(exact.truncation_error < 1e-20);
    }

    #[test]
    fn amplitude_query_matches_reconstruction() {
        let c = library::w_state(6);
        let state = MpsSim.run_mps(&c, &SimOptions::default()).unwrap();
        let out = run(&c);
        for s in [1u64, 2, 4, 8, 16, 32] {
            let a1 = state.amplitude(s);
            let a2 = out.amplitude(s);
            assert!((a1 - a2).abs() < TOL);
            assert!((a1.norm_sqr() - 1.0 / 6.0).abs() < TOL);
        }
    }

    #[test]
    fn memory_limit_enforced() {
        let c = library::dense_circuit(12, 6, 1);
        let opts = SimOptions { memory_limit: Some(4096), ..Default::default() };
        assert!(matches!(
            MpsSim.run_mps(&c, &opts),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn norm_preserved_exact_mode() {
        for seed in [11, 22] {
            let c = library::random_circuit(6, 30, seed);
            let out = run(&c);
            assert!((out.norm_sqr() - 1.0).abs() < 1e-7, "seed {seed}");
        }
    }
}
