//! Complex linear algebra for the MPS backend, implemented from scratch:
//! a one-sided Jacobi SVD for complex matrices.
//!
//! One-sided Jacobi orthogonalizes the columns of `A` by repeatedly applying
//! complex plane rotations (accumulated into `V`), maintaining the invariant
//! `A_orig = W · V†` where `W` is the working matrix. At convergence the
//! column norms of `W` are the singular values. It is slower than
//! Golub–Kahan but compact, numerically robust, and exact enough for
//! bond-dimension truncation at simulation scales (matrices here are at most
//! a few hundred square).

use qymera_circuit::{CMatrix, Complex64};
#[cfg(test)]
use qymera_circuit::c64;

use crate::traits::SimError;

/// Thin SVD result: `a = u · diag(s) · vt`, singular values descending.
#[derive(Debug, Clone)]
pub struct Svd {
    pub u: CMatrix,
    pub s: Vec<f64>,
    pub vt: CMatrix,
}

const MAX_SWEEPS: usize = 100;
const JACOBI_TOL: f64 = 1e-14;

/// Compute the thin SVD of an arbitrary complex matrix.
pub fn svd(a: &CMatrix) -> Result<Svd, SimError> {
    if a.rows() >= a.cols() {
        svd_tall(a)
    } else {
        // A = U S V†  ⇔  A† = V S U†
        let at = a.dagger();
        let r = svd_tall(&at)?;
        Ok(Svd { u: r.vt.dagger(), s: r.s, vt: r.u.dagger() })
    }
}

/// One-sided Jacobi for `m ≥ n`.
fn svd_tall(a: &CMatrix) -> Result<Svd, SimError> {
    let (m, n) = (a.rows(), a.cols());
    let mut w = a.clone(); // working matrix, columns converge to U·Σ
    let mut v = CMatrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // 2×2 Gram block of columns p, q.
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = Complex64::ZERO;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    alpha += wp.norm_sqr();
                    beta += wq.norm_sqr();
                    gamma += wp.conj() * wq;
                }
                let gmag = gamma.abs();
                // Absolute floor guards against near-zero column pairs where
                // 1/|γ| would overflow to infinity (rank-deficient blocks).
                if gmag <= JACOBI_TOL * (alpha * beta).sqrt() || gmag < 1e-150 {
                    continue;
                }
                rotated = true;
                // Phase so the off-diagonal becomes real positive.
                let phase = gamma.scale(1.0 / gmag); // e^{iφ}
                let tau = (beta - alpha) / (2.0 * gmag);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Column rotation: p' = c·p − s·e^{−iφ}·q ; q' = s·e^{iφ}·p + c·q
                let s_eiphi = phase.scale(s);
                let s_emiphi = phase.conj().scale(s);
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = wp.scale(c) - s_emiphi * wq;
                    w[(i, q)] = s_eiphi * wp + wq.scale(c);
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = vp.scale(c) - s_emiphi * vq;
                    v[(i, q)] = s_eiphi * vp + vq.scale(c);
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Extract singular values and normalize U columns.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| w[(i, j)].norm_sqr()).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&x, &y| norms[y].total_cmp(&norms[x]));

    let mut u = CMatrix::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vt = CMatrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let sigma = norms[old_j];
        s.push(sigma);
        if sigma > 0.0 {
            for i in 0..m {
                u[(i, new_j)] = w[(i, old_j)].scale(1.0 / sigma);
            }
        } else {
            // Null column: any unit vector orthogonal works; e_{new_j} keeps
            // U numerically well-formed (it multiplies σ = 0 anyway).
            if new_j < m {
                u[(new_j, new_j)] = Complex64::ONE;
            }
        }
        for k in 0..n {
            vt[(new_j, k)] = v[(k, old_j)].conj();
        }
    }
    Ok(Svd { u, s, vt })
}

/// Reconstruct `u · diag(s) · vt` (test helper; also used by truncation
/// diagnostics).
pub fn reconstruct(svd: &Svd) -> CMatrix {
    let n = svd.s.len();
    let mut us = svd.u.clone();
    for j in 0..n {
        for i in 0..us.rows() {
            us[(i, j)] = us[(i, j)].scale(svd.s[j]);
        }
    }
    us.matmul(&svd.vt)
}

/// Frobenius norm.
pub fn fro_norm(a: &CMatrix) -> f64 {
    a.data().iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
}

/// Random-ish deterministic matrix for tests (simple LCG, no rand dep here).
#[cfg(test)]
pub fn test_matrix(m: usize, n: usize, seed: u64) -> CMatrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let mut a = CMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            a[(i, j)] = c64(next(), next());
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    fn check_svd(a: &CMatrix) {
        let r = svd(a).unwrap();
        // Reconstruction.
        let back = reconstruct(&r);
        let mut diff = a.clone();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                diff[(i, j)] -= back[(i, j)];
            }
        }
        assert!(
            fro_norm(&diff) <= TOL * fro_norm(a).max(1.0),
            "reconstruction error too large: {}",
            fro_norm(&diff)
        );
        // Descending nonnegative singular values.
        for w in r.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(r.s.iter().all(|&x| x >= 0.0));
        // U has orthonormal columns where σ > 0.
        let gram = r.u.dagger().matmul(&r.u);
        for j in 0..r.s.len() {
            if r.s[j] > 1e-10 {
                assert!((gram[(j, j)].re - 1.0).abs() < 1e-8, "U column {j} not unit");
            }
        }
        // V† is unitary.
        let gram = r.vt.matmul(&r.vt.dagger());
        let mut dev: f64 = 0.0;
        for i in 0..gram.rows() {
            for j in 0..gram.cols() {
                let expect = if i == j { 1.0 } else { 0.0 };
                dev = dev.max((gram[(i, j)].re - expect).abs()).max(gram[(i, j)].im.abs());
            }
        }
        assert!(dev < 1e-8, "V† not unitary ({}x{}), deviation {dev:.3e}", a.rows(), a.cols());
    }

    #[test]
    fn identity_and_diagonal() {
        check_svd(&CMatrix::identity(4));
        let mut d = CMatrix::zeros(3, 3);
        d[(0, 0)] = c64(3.0, 0.0);
        d[(1, 1)] = c64(0.0, 2.0); // complex diagonal: σ = |entry|
        d[(2, 2)] = c64(1.0, 0.0);
        let r = svd(&d).unwrap();
        assert!((r.s[0] - 3.0).abs() < TOL);
        assert!((r.s[1] - 2.0).abs() < TOL);
        assert!((r.s[2] - 1.0).abs() < TOL);
        check_svd(&d);
    }

    #[test]
    fn random_square_tall_wide() {
        check_svd(&test_matrix(6, 6, 1));
        check_svd(&test_matrix(12, 5, 2));
        check_svd(&test_matrix(4, 9, 3));
        check_svd(&test_matrix(1, 7, 4));
        check_svd(&test_matrix(7, 1, 5));
    }

    #[test]
    fn rank_deficient() {
        // Two identical columns → one zero singular value.
        let mut a = test_matrix(5, 3, 7);
        for i in 0..5 {
            let v = a[(i, 0)];
            a[(i, 2)] = v;
        }
        let r = svd(&a).unwrap();
        assert!(r.s[2] < 1e-9, "expected a (near-)zero singular value");
        check_svd(&a);
    }

    #[test]
    fn zero_matrix() {
        let a = CMatrix::zeros(4, 3);
        let r = svd(&a).unwrap();
        assert!(r.s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn singular_values_match_known_case() {
        // A = [[1, 0], [0, 0], [0, 2i]] → σ = {2, 1}
        let mut a = CMatrix::zeros(3, 2);
        a[(0, 0)] = c64(1.0, 0.0);
        a[(2, 1)] = c64(0.0, 2.0);
        let r = svd(&a).unwrap();
        assert!((r.s[0] - 2.0).abs() < TOL);
        assert!((r.s[1] - 1.0).abs() < TOL);
    }
}
