//! Dense state-vector simulator — the paper's "conventional simulation
//! method" baseline (cuQuantum/Aer stand-in).
//!
//! Θ(2ⁿ) memory, Θ(2ⁿ) work per gate. Memory is 16 bytes per amplitude;
//! under the 2.0 GB budget of the paper's intro experiment this caps out at
//! n = 27, which is the denominator of the "3,118× more qubits" claim.

use std::collections::BTreeMap;

use qymera_circuit::{Complex64, Gate, QuantumCircuit};

use crate::traits::{SimError, SimOptions, SimOutput, Simulator};

/// Dense state-vector backend.
#[derive(Debug, Clone, Default)]
pub struct StateVectorSim;

/// Bytes needed for the dense state of `n` qubits.
pub fn dense_state_bytes(n: usize) -> usize {
    16usize.saturating_mul(1usize.checked_shl(n as u32).unwrap_or(usize::MAX))
}

/// Largest `n` whose dense state fits in `bytes`.
pub fn max_dense_qubits(bytes: usize) -> usize {
    let mut n = 0;
    while n < 60 && dense_state_bytes(n + 1) <= bytes {
        n += 1;
    }
    n
}

impl StateVectorSim {
    /// Apply one gate in place.
    fn apply_gate(state: &mut [Complex64], n: usize, gate: &Gate) {
        let qs = &gate.qubits;
        let k = qs.len();
        let m = gate.matrix();
        let dim = 1usize << k;

        if k == 1 {
            // Fast path: single-qubit gate.
            let q = qs[0];
            let bit = 1usize << q;
            let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
            for s in 0..state.len() {
                if s & bit == 0 {
                    let a0 = state[s];
                    let a1 = state[s | bit];
                    state[s] = m00 * a0 + m01 * a1;
                    state[s | bit] = m10 * a0 + m11 * a1;
                }
            }
            return;
        }

        // General path: enumerate base indices with the gate-qubit bits zero,
        // gather the 2^k amplitudes, multiply, scatter.
        let mut sorted = qs.clone();
        sorted.sort_unstable();
        let mut scratch_in = vec![Complex64::ZERO; dim];
        let total = 1usize << (n - k);
        for mgroup in 0..total {
            // Expand mgroup into a base index with zeros at gate qubits.
            let mut base = mgroup;
            for &q in &sorted {
                let low = base & ((1usize << q) - 1);
                base = ((base >> q) << (q + 1)) | low;
            }
            // Gather: local index l has bit j = value of gate qubit qs[j].
            for (l, slot) in scratch_in.iter_mut().enumerate() {
                let mut s = base;
                for (j, &q) in qs.iter().enumerate() {
                    if (l >> j) & 1 == 1 {
                        s |= 1usize << q;
                    }
                }
                *slot = state[s];
            }
            // Multiply and scatter.
            for lo in 0..dim {
                let mut acc = Complex64::ZERO;
                for (li, &amp) in scratch_in.iter().enumerate() {
                    acc += m[(lo, li)] * amp;
                }
                let mut s = base;
                for (j, &q) in qs.iter().enumerate() {
                    if (lo >> j) & 1 == 1 {
                        s |= 1usize << q;
                    }
                }
                state[s] = acc;
            }
        }
    }

    /// Run and return the raw dense state (used by cross-validation tests).
    pub fn run_dense(
        &self,
        circuit: &QuantumCircuit,
        opts: &SimOptions,
    ) -> Result<Vec<Complex64>, SimError> {
        let n = circuit.num_qubits;
        if n > 30 {
            // 2^30 amplitudes = 16 GiB; treat as the representational cap.
            return Err(SimError::TooManyQubits { qubits: n, max: 30 });
        }
        let bytes = dense_state_bytes(n);
        if let Some(limit) = opts.memory_limit {
            if bytes > limit {
                return Err(SimError::OutOfMemory { requested: bytes, limit });
            }
        }
        let mut state = vec![Complex64::ZERO; 1usize << n];
        state[0] = Complex64::ONE;
        for gate in circuit.gates() {
            Self::apply_gate(&mut state, n, gate);
        }
        Ok(state)
    }
}

impl Simulator for StateVectorSim {
    fn name(&self) -> &'static str {
        "statevector"
    }

    fn simulate(
        &self,
        circuit: &QuantumCircuit,
        opts: &SimOptions,
    ) -> Result<SimOutput, SimError> {
        let state = self.run_dense(circuit, opts)?;
        let tol2 = opts.truncation_tol * opts.truncation_tol;
        let mut amplitudes = BTreeMap::new();
        for (s, &a) in state.iter().enumerate() {
            if a.norm_sqr() > tol2 {
                amplitudes.insert(s as u64, a);
            }
        }
        let mut out = SimOutput::from_map(
            circuit.num_qubits,
            amplitudes,
            dense_state_bytes(circuit.num_qubits),
        );
        out.detail = format!("dense 2^{} amplitudes", circuit.num_qubits);
        Ok(out)
    }

    fn max_qubits(&self, opts: &SimOptions) -> usize {
        match opts.memory_limit {
            Some(limit) => max_dense_qubits(limit).min(30),
            None => 30,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qymera_circuit::{c64, library, CircuitBuilder};

    const TOL: f64 = 1e-10;

    fn run(c: &QuantumCircuit) -> SimOutput {
        StateVectorSim.simulate(c, &SimOptions::default()).unwrap()
    }

    #[test]
    fn ghz_state() {
        let out = run(&library::ghz(3));
        assert_eq!(out.nonzero_count(), 2);
        assert!((out.probability(0) - 0.5).abs() < TOL);
        assert!((out.probability(7) - 0.5).abs() < TOL);
    }

    #[test]
    fn equal_superposition() {
        let out = run(&library::equal_superposition(4));
        assert_eq!(out.nonzero_count(), 16);
        for s in 0..16 {
            assert!((out.probability(s) - 1.0 / 16.0).abs() < TOL);
        }
    }

    #[test]
    fn x_chain_reaches_all_ones() {
        let c = CircuitBuilder::new(5).x(0).x(1).x(2).x(3).x(4).build();
        let out = run(&c);
        assert!((out.probability(31) - 1.0).abs() < TOL);
    }

    #[test]
    fn bell_then_inverse_is_identity() {
        let bell = library::bell();
        let mut c = bell.clone();
        c.append(&bell.inverse()).unwrap();
        let out = run(&c);
        assert!((out.probability(0) - 1.0).abs() < TOL);
    }

    #[test]
    fn w_state_probabilities() {
        let out = run(&library::w_state(4));
        for s in [1u64, 2, 4, 8] {
            assert!((out.probability(s) - 0.25).abs() < TOL, "p({s})");
        }
        assert!(out.probability(0) < TOL);
        assert!((out.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let out = run(&library::qft(4));
        for s in 0..16 {
            assert!((out.probability(s) - 1.0 / 16.0).abs() < TOL);
        }
    }

    #[test]
    fn parity_check_computes_parity() {
        for bits in [[true, false, true], [true, true, true], [false, false, false]] {
            let ones = bits.iter().filter(|&&b| b).count();
            let c = library::parity_check(&bits);
            let out = run(&c);
            let ancilla = bits.len();
            let p1 = out.qubit_one_probability(ancilla);
            if ones % 2 == 1 {
                assert!((p1 - 1.0).abs() < TOL, "{bits:?}");
            } else {
                assert!(p1 < TOL, "{bits:?}");
            }
        }
    }

    #[test]
    fn grover_amplifies_marked_state() {
        // 3 data qubits, marked = 5, optimal iterations.
        let iters = library::grover_optimal_iterations(3);
        let c = library::grover(3, 5, iters);
        let out = run(&c);
        // Probability of the marked data pattern (ancilla back to 0).
        let p = out.probability(5);
        assert!(p > 0.8, "Grover should amplify |101⟩, got {p}");
    }

    #[test]
    fn norm_preserved_on_random_circuits() {
        for seed in 0..5 {
            let c = library::random_circuit(5, 40, seed);
            let out = run(&c);
            assert!((out.norm_sqr() - 1.0).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn memory_limit_enforced() {
        let opts = SimOptions::with_memory_limit(1 << 20); // 1 MiB → n ≤ 16
        let sim = StateVectorSim;
        assert_eq!(sim.max_qubits(&opts), 16);
        let c = library::ghz(17);
        assert!(matches!(
            sim.simulate(&c, &opts),
            Err(SimError::OutOfMemory { .. })
        ));
        assert!(sim.simulate(&library::ghz(16), &opts).is_ok());
    }

    #[test]
    fn the_paper_2gb_cap_is_27_qubits() {
        // 16·2^27 = 2 GiB exactly fits; 2^28 does not.
        let two_gb = 2 * 1024 * 1024 * 1024usize;
        assert_eq!(max_dense_qubits(two_gb), 27);
    }

    #[test]
    fn swap_and_toffoli_semantics() {
        // |q1 q0⟩ = |01⟩ → swap → |10⟩
        let c = CircuitBuilder::new(2).x(0).swap(0, 1).build();
        assert!((run(&c).probability(2) - 1.0).abs() < TOL);
        // CCX flips target only when both controls set.
        let c = CircuitBuilder::new(3).x(0).x(1).ccx(0, 1, 2).build();
        assert!((run(&c).probability(7) - 1.0).abs() < TOL);
        let c = CircuitBuilder::new(3).x(0).ccx(0, 1, 2).build();
        assert!((run(&c).probability(1) - 1.0).abs() < TOL);
    }

    #[test]
    fn amplitude_values_match_theory() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let out = run(&CircuitBuilder::new(1).h(0).z(0).build());
        assert!(out.amplitude(0).approx_eq(c64(s, 0.0), TOL));
        assert!(out.amplitude(1).approx_eq(c64(-s, 0.0), TOL));
    }
}
