//! The common simulator interface and result type.
//!
//! Every backend (§3.3 of the paper: state-vector, sparse, tensor-network
//! MPS, decision diagram — plus the SQL engine in `qymera-translate`)
//! produces a [`SimOutput`]: the final state's nonzero amplitudes plus the
//! representation's peak memory footprint, which is the metric the paper's
//! benchmarking suite reports alongside wall time.

use std::collections::BTreeMap;

use qymera_circuit::{Complex64, QuantumCircuit};

/// Errors a simulation backend can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The backend cannot represent this many qubits at all (e.g. a dense
    /// state vector beyond the address space, or > 63 qubits for u64 basis
    /// indices).
    TooManyQubits { qubits: usize, max: usize },
    /// The memory budget cannot hold the state representation.
    OutOfMemory { requested: usize, limit: usize },
    /// Gate or feature outside the backend's capability.
    Unsupported(String),
    /// Internal numerical failure (e.g. SVD non-convergence).
    Numerical(String),
    /// The simulation was cancelled cooperatively (Ctrl-C or an explicit
    /// cancel handle); partial work was rolled back by the backend.
    Cancelled,
    /// The simulation exceeded its configured deadline.
    Timeout {
        /// The configured deadline in milliseconds.
        ms: u64,
    },
    /// The backend refused admission: too many concurrent runs against the
    /// shared engine (or database directory). Transient — retry later.
    Overloaded {
        /// Grants (or slots) in use when admission was refused.
        active: usize,
        /// The configured concurrency limit.
        max: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TooManyQubits { qubits, max } => {
                write!(f, "{qubits} qubits exceeds backend maximum of {max}")
            }
            SimError::OutOfMemory { requested, limit } => {
                write!(f, "needs {requested} bytes, limit is {limit} bytes")
            }
            SimError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SimError::Numerical(m) => write!(f, "numerical failure: {m}"),
            SimError::Cancelled => write!(f, "simulation cancelled"),
            SimError::Timeout { ms } => {
                write!(f, "simulation timed out after {ms} ms")
            }
            SimError::Overloaded { active, max } => {
                write!(f, "overloaded: {active} of {max} concurrent runs in use")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Backend-independent options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Memory limit in bytes for the state representation (the paper's
    /// 2.0 GB experiment sets this); `None` = unlimited.
    pub memory_limit: Option<usize>,
    /// MPS bond-dimension cap (`None` = exact, grows as needed).
    pub max_bond_dim: Option<usize>,
    /// Magnitude below which amplitudes/singular values are treated as zero.
    pub truncation_tol: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { memory_limit: None, max_bond_dim: None, truncation_tol: 1e-12 }
    }
}

impl SimOptions {
    pub fn with_memory_limit(bytes: usize) -> Self {
        SimOptions { memory_limit: Some(bytes), ..Default::default() }
    }
}

/// Final state: nonzero amplitudes keyed by basis-state index, plus metrics.
#[derive(Debug, Clone)]
pub struct SimOutput {
    pub num_qubits: usize,
    /// Sorted nonzero amplitudes (basis index → amplitude).
    pub amplitudes: BTreeMap<u64, Complex64>,
    /// Peak bytes the backend's state representation occupied.
    pub memory_bytes: usize,
    /// Backend-specific note (e.g. max bond dimension, DD node count).
    pub detail: String,
}

impl SimOutput {
    pub fn from_map(
        num_qubits: usize,
        amplitudes: BTreeMap<u64, Complex64>,
        memory_bytes: usize,
    ) -> Self {
        SimOutput { num_qubits, amplitudes, memory_bytes, detail: String::new() }
    }

    /// Number of stored (nonzero) amplitudes.
    pub fn nonzero_count(&self) -> usize {
        self.amplitudes.len()
    }

    /// Amplitude of basis state `s` (zero if absent).
    pub fn amplitude(&self, s: u64) -> Complex64 {
        self.amplitudes.get(&s).copied().unwrap_or(Complex64::ZERO)
    }

    /// Measurement probability of basis state `s`.
    pub fn probability(&self, s: u64) -> f64 {
        self.amplitude(s).norm_sqr()
    }

    /// Σ|a|² — should be 1 for a valid run.
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.values().map(|a| a.norm_sqr()).sum()
    }

    /// Probability of measuring qubit `q` as 1.
    pub fn qubit_one_probability(&self, q: usize) -> f64 {
        self.amplitudes
            .iter()
            .filter(|(s, _)| (*s >> q) & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// |⟨self|other⟩|² — state fidelity between two pure outputs.
    pub fn fidelity(&self, other: &SimOutput) -> f64 {
        let mut dot = Complex64::ZERO;
        for (s, a) in &self.amplitudes {
            dot += a.conj() * other.amplitude(*s);
        }
        dot.norm_sqr()
    }

    /// Max |a_self(s) − a_other(s)| over the union of supports, modulo a
    /// global phase (aligned on the largest amplitude of `self`).
    pub fn max_amplitude_diff(&self, other: &SimOutput) -> f64 {
        // Align global phase using the largest-|a| entry of self.
        let phase = self
            .amplitudes
            .iter()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            .map(|(s, a)| {
                let o = other.amplitude(*s);
                if o.norm_sqr() > 0.0 && a.norm_sqr() > 0.0 {
                    let ratio = o * a.conj();
                    let mag = ratio.abs();
                    if mag > 0.0 {
                        return ratio.scale(1.0 / mag);
                    }
                    Complex64::ONE
                } else {
                    Complex64::ONE
                }
            })
            .unwrap_or(Complex64::ONE);
        let mut keys: Vec<u64> = self.amplitudes.keys().copied().collect();
        keys.extend(other.amplitudes.keys().copied());
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter()
            .map(|s| (self.amplitude(s) * phase - other.amplitude(s)).abs())
            .fold(0.0, f64::max)
    }

    /// Sample `shots` measurement outcomes in the computational basis using
    /// the given RNG (inverse-CDF over the stored nonzero amplitudes) —
    /// the Output Layer's "measurement outcomes".
    pub fn sample_counts(
        &self,
        shots: usize,
        rng: &mut impl rand::Rng,
    ) -> std::collections::BTreeMap<u64, usize> {
        // Cumulative distribution over the support.
        let mut cdf: Vec<(f64, u64)> = Vec::with_capacity(self.amplitudes.len());
        let mut acc = 0.0;
        for (s, a) in &self.amplitudes {
            acc += a.norm_sqr();
            cdf.push((acc, *s));
        }
        let total = acc.max(f64::MIN_POSITIVE);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..shots {
            let x: f64 = rng.gen_range(0.0..total);
            let idx = cdf.partition_point(|(c, _)| *c <= x).min(cdf.len() - 1);
            *counts.entry(cdf[idx].1).or_insert(0) += 1;
        }
        counts
    }

    /// The `k` most probable basis states, descending.
    pub fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self
            .amplitudes
            .iter()
            .map(|(s, a)| (*s, a.norm_sqr()))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Render `|bits⟩: prob` lines for the `k` most probable states
    /// (educational output, Scenario 3).
    pub fn render_probabilities(&self, k: usize) -> String {
        let mut out = String::new();
        for (s, p) in self.top_k(k) {
            let bits: String = (0..self.num_qubits)
                .rev()
                .map(|q| if (s >> q) & 1 == 1 { '1' } else { '0' })
                .collect();
            out.push_str(&format!("|{bits}⟩  p = {p:.6}\n"));
        }
        out
    }
}

/// A simulation backend.
pub trait Simulator {
    /// Short stable identifier ("statevector", "sparse", "mps", "dd", "sql").
    fn name(&self) -> &'static str;

    /// Run `circuit` from `|0…0⟩` and return the final state.
    fn simulate(&self, circuit: &QuantumCircuit, opts: &SimOptions)
        -> Result<SimOutput, SimError>;

    /// Largest register this backend can represent under `opts` (used by the
    /// max-qubits experiment to avoid probing sizes that cannot allocate).
    fn max_qubits(&self, opts: &SimOptions) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use qymera_circuit::c64;

    fn ghz_output() -> SimOutput {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let mut m = BTreeMap::new();
        m.insert(0u64, c64(s, 0.0));
        m.insert(7u64, c64(s, 0.0));
        SimOutput::from_map(3, m, 32)
    }

    #[test]
    fn probabilities_and_norm() {
        let o = ghz_output();
        assert!((o.norm_sqr() - 1.0).abs() < 1e-12);
        assert!((o.probability(0) - 0.5).abs() < 1e-12);
        assert_eq!(o.probability(3), 0.0);
        assert!((o.qubit_one_probability(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fidelity_self_is_one() {
        let o = ghz_output();
        assert!((o.fidelity(&o) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_diff_ignores_global_phase() {
        let o = ghz_output();
        let mut rotated = o.clone();
        let phase = Complex64::from_phase(1.2);
        for a in rotated.amplitudes.values_mut() {
            *a *= phase;
        }
        assert!(o.max_amplitude_diff(&rotated) < 1e-12);
        // but a genuinely different state has a large diff
        let mut different = o.clone();
        different.amplitudes.insert(3, c64(0.5, 0.0));
        assert!(o.max_amplitude_diff(&different) > 0.4);
    }

    #[test]
    fn top_k_and_render() {
        let o = ghz_output();
        let top = o.top_k(5);
        assert_eq!(top.len(), 2);
        let text = o.render_probabilities(2);
        assert!(text.contains("|000⟩"));
        assert!(text.contains("|111⟩"));
        assert!(text.contains("0.5000"));
    }
}

#[cfg(test)]
mod sampling_tests {
    use super::*;
    use qymera_circuit::c64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_matches_distribution() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let mut m = BTreeMap::new();
        m.insert(0u64, c64(s, 0.0));
        m.insert(7u64, c64(s, 0.0));
        let out = SimOutput::from_map(3, m, 32);
        let mut rng = StdRng::seed_from_u64(42);
        let counts = out.sample_counts(10_000, &mut rng);
        assert_eq!(counts.keys().copied().collect::<Vec<_>>(), vec![0, 7]);
        let p0 = counts[&0] as f64 / 10_000.0;
        assert!((p0 - 0.5).abs() < 0.03, "p0 = {p0}");
    }

    #[test]
    fn sampling_deterministic_state() {
        let mut m = BTreeMap::new();
        m.insert(5u64, Complex64::ONE);
        let out = SimOutput::from_map(3, m, 16);
        let mut rng = StdRng::seed_from_u64(1);
        let counts = out.sample_counts(100, &mut rng);
        assert_eq!(counts.get(&5), Some(&100));
    }
}
