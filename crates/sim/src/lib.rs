//! # qymera-sim
//!
//! Baseline quantum-circuit simulators for the Qymera reproduction — the
//! "state-of-the-art simulation methods" the paper benchmarks its RDBMS
//! approach against (§3.3): dense state-vector, sparse hash-map, matrix
//! product state (tensor network), and decision diagram backends, all
//! implementing the common [`Simulator`] trait with byte-accounted memory
//! limits so the paper's 2.0 GB experiment applies uniformly.

pub mod dd;
pub mod decompose;
pub mod mps;
pub mod sparse;
pub mod statevector;
pub mod traits;

pub use dd::DdSim;
pub use decompose::decompose_to_two_qubit;
pub use mps::MpsSim;
pub use sparse::SparseSim;
pub use statevector::StateVectorSim;
pub use traits::{SimError, SimOptions, SimOutput, Simulator};
