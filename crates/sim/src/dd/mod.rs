//! Decision-diagram simulator (QMDD-style), the paper's "decision diagram
//! based simulators (MQT DD)" backend [Zulehner et al., ICCAD'19].
//!
//! Quantum states are vectors encoded as reduced, weight-normalized decision
//! diagrams: a node at level `v` splits on the value of qubit `v`, edge
//! weights multiply along each root-to-terminal path, and structurally equal
//! subtrees are shared through a unique table. Gates become *matrix* DDs
//! (4 children per node); application is the cached recursive mat-vec
//! multiply. Structured states stay polynomial (GHZ is a single chain of
//! nodes at any `n`), while unstructured dense states degenerate to 2ⁿ
//! paths — the same asymmetry the relational encoding exhibits.

use std::collections::{BTreeMap, HashMap};

use qymera_circuit::{Complex64, Gate, QuantumCircuit};

use crate::traits::{SimError, SimOptions, SimOutput, Simulator};

type NodeId = u32;
const TERMINAL: NodeId = 0;

/// Weighted edge of a vector DD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VEdge {
    node: NodeId,
    w: Complex64,
}

impl VEdge {
    const ZERO: VEdge = VEdge { node: TERMINAL, w: Complex64::ZERO };

    fn terminal(w: Complex64) -> VEdge {
        VEdge { node: TERMINAL, w }
    }

    fn is_zero(&self) -> bool {
        self.node == TERMINAL && self.w.norm_sqr() == 0.0
    }
}

#[derive(Debug, Clone, Copy)]
pub struct MEdge {
    node: NodeId,
    w: Complex64,
}

impl MEdge {
    const ZERO: MEdge = MEdge { node: TERMINAL, w: Complex64::ZERO };
}

#[derive(Debug, Clone)]
struct VNode {
    var: u32,
    children: [VEdge; 2],
}

#[derive(Debug, Clone)]
struct MNode {
    var: u32,
    /// Index `(row << 1) | col` of the 2×2 block structure.
    children: [MEdge; 4],
}

/// Hash key for weights: exact rounding to a fine grid makes nearly-equal
/// weights share nodes (tolerance-based canonicity, as in MQT DD).
fn wkey(w: Complex64) -> (i64, i64) {
    const INV_EPS: f64 = 1e12;
    ((w.re * INV_EPS).round() as i64, (w.im * INV_EPS).round() as i64)
}

type VKey = (u32, NodeId, (i64, i64), NodeId, (i64, i64));
type MKey = (u32, [(NodeId, (i64, i64)); 4]);

/// The DD package: node arenas, unique tables, operation caches.
pub struct DdPackage {
    vnodes: Vec<VNode>,
    vunique: HashMap<VKey, NodeId>,
    mnodes: Vec<MNode>,
    munique: HashMap<MKey, NodeId>,
    apply_cache: HashMap<(NodeId, NodeId), VEdge>,
    add_cache: HashMap<AddKey, VEdge>,
}

/// Key of the addition cache: both operand edges as (node, weight) pairs.
type AddKey = (NodeId, (i64, i64), NodeId, (i64, i64));

impl DdPackage {
    pub fn new() -> Self {
        // Slot 0 in both arenas is the terminal sentinel.
        DdPackage {
            vnodes: vec![VNode { var: u32::MAX, children: [VEdge::ZERO; 2] }],
            vunique: HashMap::new(),
            mnodes: vec![MNode { var: u32::MAX, children: [MEdge::ZERO; 4] }],
            munique: HashMap::new(),
            apply_cache: HashMap::new(),
            add_cache: HashMap::new(),
        }
    }

    /// Total vector nodes ever created (the arena is not garbage-collected,
    /// so this includes intermediate states).
    pub fn vnode_count(&self) -> usize {
        self.vnodes.len() - 1
    }

    /// Nodes reachable from `root` — the size of the *current* state's DD.
    pub fn reachable_vnodes(&self, root: VEdge) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root.node];
        while let Some(id) = stack.pop() {
            if id == TERMINAL || !seen.insert(id) {
                continue;
            }
            for c in &self.vnodes[id as usize].children {
                stack.push(c.node);
            }
        }
        seen.len()
    }

    /// Approximate bytes held by the package (nodes + tables + caches).
    pub fn bytes(&self) -> usize {
        self.vnodes.len() * 48
            + self.mnodes.len() * 88
            + self.vunique.len() * 64
            + self.munique.len() * 96
            + self.apply_cache.len() * 40
            + self.add_cache.len() * 56
    }

    fn clear_caches(&mut self) {
        self.apply_cache.clear();
        self.add_cache.clear();
    }

    /// Create or share a normalized vector node; returns the weighted edge.
    fn make_vnode(&mut self, var: u32, mut children: [VEdge; 2]) -> VEdge {
        let n0 = children[0].w.norm_sqr();
        let n1 = children[1].w.norm_sqr();
        if n0 == 0.0 && n1 == 0.0 {
            return VEdge::ZERO;
        }
        // Normalize by the larger-magnitude child weight (ties → child 0).
        let top = if n0 >= n1 { children[0].w } else { children[1].w };
        let inv = top.inv();
        children[0].w *= inv;
        children[1].w *= inv;
        if children[0].w.norm_sqr() == 0.0 {
            children[0].node = TERMINAL;
        }
        if children[1].w.norm_sqr() == 0.0 {
            children[1].node = TERMINAL;
        }
        let key: VKey = (
            var,
            children[0].node,
            wkey(children[0].w),
            children[1].node,
            wkey(children[1].w),
        );
        let node = match self.vunique.get(&key) {
            Some(&id) => id,
            None => {
                let id = self.vnodes.len() as NodeId;
                self.vnodes.push(VNode { var, children });
                self.vunique.insert(key, id);
                id
            }
        };
        VEdge { node, w: top }
    }

    fn make_mnode(&mut self, var: u32, mut children: [MEdge; 4]) -> MEdge {
        let norms: Vec<f64> = children.iter().map(|e| e.w.norm_sqr()).collect();
        let best = (0..4).max_by(|&a, &b| norms[a].total_cmp(&norms[b])).unwrap();
        if norms[best] == 0.0 {
            return MEdge::ZERO;
        }
        let top = children[best].w;
        let inv = top.inv();
        for e in children.iter_mut() {
            e.w *= inv;
            if e.w.norm_sqr() == 0.0 {
                e.node = TERMINAL;
            }
        }
        let key: MKey = (
            var,
            [
                (children[0].node, wkey(children[0].w)),
                (children[1].node, wkey(children[1].w)),
                (children[2].node, wkey(children[2].w)),
                (children[3].node, wkey(children[3].w)),
            ],
        );
        let node = match self.munique.get(&key) {
            Some(&id) => id,
            None => {
                let id = self.mnodes.len() as NodeId;
                self.mnodes.push(MNode { var, children });
                self.munique.insert(key, id);
                id
            }
        };
        MEdge { node, w: top }
    }

    /// DD for the basis state |0…0⟩ on `n` qubits.
    pub fn zero_state(&mut self, n: usize) -> VEdge {
        let mut e = VEdge::terminal(Complex64::ONE);
        for v in 0..n as u32 {
            e = self.make_vnode(v, [e, VEdge::ZERO]);
        }
        e
    }

    /// Build the matrix DD of `gate` over an `n`-qubit register.
    fn gate_dd(&mut self, gate: &Gate, n: usize) -> MEdge {
        let m = gate.matrix();
        // qubit → local bit position within the gate
        let mut pos: HashMap<usize, usize> = HashMap::new();
        for (p, &q) in gate.qubits.iter().enumerate() {
            pos.insert(q, p);
        }
        let mut memo: HashMap<(i64, usize, usize), MEdge> = HashMap::new();
        self.gate_dd_rec(n as i64 - 1, 0, 0, &pos, &m, &mut memo)
    }

    fn gate_dd_rec(
        &mut self,
        v: i64,
        r: usize,
        c: usize,
        pos: &HashMap<usize, usize>,
        m: &qymera_circuit::CMatrix,
        memo: &mut HashMap<(i64, usize, usize), MEdge>,
    ) -> MEdge {
        if v < 0 {
            return MEdge { node: TERMINAL, w: m[(r, c)] };
        }
        if let Some(e) = memo.get(&(v, r, c)) {
            return *e;
        }
        let result = match pos.get(&(v as usize)) {
            Some(&p) => {
                let mut children = [MEdge::ZERO; 4];
                for i in 0..2 {
                    for j in 0..2 {
                        children[(i << 1) | j] =
                            self.gate_dd_rec(v - 1, r | (i << p), c | (j << p), pos, m, memo);
                    }
                }
                self.make_mnode(v as u32, children)
            }
            None => {
                let diag = self.gate_dd_rec(v - 1, r, c, pos, m, memo);
                self.make_mnode(v as u32, [diag, MEdge::ZERO, MEdge::ZERO, diag])
            }
        };
        memo.insert((v, r, c), result);
        result
    }

    /// Cached vector addition.
    fn add(&mut self, a: VEdge, b: VEdge) -> VEdge {
        if a.is_zero() || a.w.norm_sqr() == 0.0 {
            return b;
        }
        if b.is_zero() || b.w.norm_sqr() == 0.0 {
            return a;
        }
        if a.node == TERMINAL && b.node == TERMINAL {
            return VEdge::terminal(a.w + b.w);
        }
        // Order-normalize the commutative cache key.
        let (x, y) = if (a.node, wkey(a.w)) <= (b.node, wkey(b.w)) { (a, b) } else { (b, a) };
        let key = (x.node, wkey(x.w), y.node, wkey(y.w));
        if let Some(&e) = self.add_cache.get(&key) {
            return e;
        }
        let na = self.vnodes[x.node as usize].clone();
        let nb = self.vnodes[y.node as usize].clone();
        debug_assert_eq!(na.var, nb.var, "add on mismatched levels");
        let c0 = self.add(
            VEdge { node: na.children[0].node, w: x.w * na.children[0].w },
            VEdge { node: nb.children[0].node, w: y.w * nb.children[0].w },
        );
        let c1 = self.add(
            VEdge { node: na.children[1].node, w: x.w * na.children[1].w },
            VEdge { node: nb.children[1].node, w: y.w * nb.children[1].w },
        );
        let result = self.make_vnode(na.var, [c0, c1]);
        self.add_cache.insert(key, result);
        result
    }

    /// Cached matrix-vector application.
    pub fn apply(&mut self, m: MEdge, v: VEdge) -> VEdge {
        if m.w.norm_sqr() == 0.0 || v.w.norm_sqr() == 0.0 {
            return VEdge::ZERO;
        }
        let sub = self.apply_nodes(m.node, v.node);
        VEdge { node: sub.node, w: sub.w * m.w * v.w }
    }

    fn apply_nodes(&mut self, mn: NodeId, vn: NodeId) -> VEdge {
        if mn == TERMINAL && vn == TERMINAL {
            return VEdge::terminal(Complex64::ONE);
        }
        if let Some(&e) = self.apply_cache.get(&(mn, vn)) {
            return e;
        }
        let mnode = self.mnodes[mn as usize].clone();
        let vnode = self.vnodes[vn as usize].clone();
        debug_assert_eq!(mnode.var, vnode.var, "apply on mismatched levels");
        let mut rows = [VEdge::ZERO; 2];
        for (row, slot) in rows.iter_mut().enumerate() {
            let mut acc = VEdge::ZERO;
            for col in 0..2 {
                let me = mnode.children[(row << 1) | col];
                let ve = vnode.children[col];
                if me.w.norm_sqr() == 0.0 || ve.w.norm_sqr() == 0.0 {
                    continue;
                }
                let term = {
                    let sub = self.apply_nodes(me.node, ve.node);
                    VEdge { node: sub.node, w: sub.w * me.w * ve.w }
                };
                acc = self.add(acc, term);
            }
            *slot = acc;
        }
        let result = self.make_vnode(mnode.var, rows);
        self.apply_cache.insert((mn, vn), result);
        result
    }

    /// Amplitude of basis state `s` under edge `root`.
    pub fn amplitude(&self, root: VEdge, s: u64) -> Complex64 {
        let mut w = root.w;
        let mut node = root.node;
        while node != TERMINAL {
            let n = &self.vnodes[node as usize];
            let bit = ((s >> n.var) & 1) as usize;
            let e = n.children[bit];
            w *= e.w;
            node = e.node;
            if w.norm_sqr() == 0.0 {
                return Complex64::ZERO;
            }
        }
        w
    }

    /// Enumerate all nonzero amplitudes (cost proportional to the support).
    pub fn nonzeros(&self, root: VEdge, tol: f64) -> BTreeMap<u64, Complex64> {
        let mut out = BTreeMap::new();
        let tol2 = tol * tol;
        self.collect(root, 0u64, &mut out, tol2);
        out
    }

    fn collect(&self, e: VEdge, bits: u64, out: &mut BTreeMap<u64, Complex64>, tol2: f64) {
        if e.w.norm_sqr() <= tol2 && e.node == TERMINAL {
            return;
        }
        if e.node == TERMINAL {
            if e.w.norm_sqr() > tol2 {
                out.insert(bits, e.w);
            }
            return;
        }
        let n = &self.vnodes[e.node as usize];
        for bit in 0..2u64 {
            let c = n.children[bit as usize];
            if c.w.norm_sqr() == 0.0 {
                continue;
            }
            self.collect(
                VEdge { node: c.node, w: e.w * c.w },
                bits | (bit << n.var),
                out,
                tol2,
            );
        }
    }
}

impl Default for DdPackage {
    fn default() -> Self {
        Self::new()
    }
}

/// The decision-diagram backend.
#[derive(Debug, Clone, Default)]
pub struct DdSim;

impl DdSim {
    /// Run the circuit, returning the package, final edge, and peak bytes.
    pub fn run_dd(
        &self,
        circuit: &QuantumCircuit,
        opts: &SimOptions,
    ) -> Result<(DdPackage, VEdge, usize), SimError> {
        let n = circuit.num_qubits;
        if n > 63 {
            return Err(SimError::TooManyQubits { qubits: n, max: 63 });
        }
        let mut pkg = DdPackage::new();
        let mut state = pkg.zero_state(n);
        let mut peak = pkg.bytes();
        for gate in circuit.gates() {
            let gdd = pkg.gate_dd(gate, n);
            state = pkg.apply(gdd, state);
            // Operation caches are only valid while referenced nodes exist;
            // we never GC, so they stay valid — but clear between gates to
            // bound their growth (they are gate-specific anyway).
            pkg.clear_caches();
            peak = peak.max(pkg.bytes());
            if let Some(limit) = opts.memory_limit {
                if peak > limit {
                    return Err(SimError::OutOfMemory { requested: peak, limit });
                }
            }
        }
        Ok((pkg, state, peak))
    }
}

impl Simulator for DdSim {
    fn name(&self) -> &'static str {
        "dd"
    }

    fn simulate(
        &self,
        circuit: &QuantumCircuit,
        opts: &SimOptions,
    ) -> Result<SimOutput, SimError> {
        let (pkg, root, peak) = self.run_dd(circuit, opts)?;
        let amplitudes = pkg.nonzeros(root, opts.truncation_tol);
        let mut out = SimOutput::from_map(circuit.num_qubits, amplitudes, peak);
        out.detail = format!("{} vector nodes", pkg.vnode_count());
        Ok(out)
    }

    fn max_qubits(&self, _opts: &SimOptions) -> usize {
        63
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVectorSim;
    use qymera_circuit::{library, CircuitBuilder};

    const TOL: f64 = 1e-8;

    fn run(c: &QuantumCircuit) -> SimOutput {
        DdSim.simulate(c, &SimOptions::default()).unwrap()
    }

    #[test]
    fn zero_state_dd() {
        let mut pkg = DdPackage::new();
        let e = pkg.zero_state(4);
        assert!((pkg.amplitude(e, 0) - Complex64::ONE).abs() < TOL);
        assert_eq!(pkg.amplitude(e, 5), Complex64::ZERO);
        assert_eq!(pkg.nonzeros(e, 1e-12).len(), 1);
    }

    #[test]
    fn ghz_dd_stays_linear_in_n() {
        let out = run(&library::ghz(30));
        assert_eq!(out.nonzero_count(), 2);
        assert!((out.probability(0) - 0.5).abs() < TOL);
        assert!((out.probability((1u64 << 30) - 1) - 0.5).abs() < TOL);
        // Node growth must be linear, not exponential: bytes for n=30 GHZ
        // should be far below a dense representation (16 GiB).
        assert!(out.memory_bytes < 10 * 1024 * 1024);
    }

    #[test]
    fn matches_statevector_on_random_circuits() {
        for seed in 0..6 {
            let c = library::random_circuit(5, 25, seed);
            let dd = run(&c);
            let sv = StateVectorSim.simulate(&c, &SimOptions::default()).unwrap();
            let diff = dd.max_amplitude_diff(&sv);
            assert!(diff < 1e-7, "seed {seed}: DD differs from dense by {diff}");
        }
    }

    #[test]
    fn structured_circuits_match_dense() {
        for c in [
            library::qft(5),
            library::w_state(5),
            library::grover(3, 4, 2),
            library::equal_superposition(6),
        ] {
            let dd = run(&c);
            let sv = StateVectorSim.simulate(&c, &SimOptions::default()).unwrap();
            assert!(dd.max_amplitude_diff(&sv) < 1e-7, "{} differs", c.name);
        }
    }

    #[test]
    fn equal_superposition_dd_is_tiny() {
        // H⊗n has maximal support but a single shared node per level.
        let (pkg, root, _) = DdSim
            .run_dd(&library::equal_superposition(20), &SimOptions::default())
            .unwrap();
        assert_eq!(
            pkg.reachable_vnodes(root),
            20,
            "uniform superposition should share one node per level"
        );
    }

    #[test]
    fn interference_cancellation_is_exact() {
        let c = CircuitBuilder::new(2).h(0).h(1).h(0).h(1).build();
        let out = run(&c);
        assert_eq!(out.nonzero_count(), 1);
        assert!((out.probability(0) - 1.0).abs() < TOL);
    }

    #[test]
    fn toffoli_and_permutation_gates() {
        let c = CircuitBuilder::new(3).x(0).x(1).ccx(0, 1, 2).build();
        let out = run(&c);
        assert!((out.probability(7) - 1.0).abs() < TOL);
        let c = CircuitBuilder::new(2).x(0).swap(0, 1).build();
        assert!((run(&c).probability(2) - 1.0).abs() < TOL);
    }

    #[test]
    fn memory_limit_enforced() {
        let c = library::dense_circuit(14, 5, 3);
        let opts = SimOptions { memory_limit: Some(8 * 1024), ..Default::default() };
        assert!(matches!(
            DdSim.run_dd(&c, &opts),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn norm_preserved() {
        for seed in [5, 9] {
            let out = run(&library::random_circuit(6, 40, seed));
            assert!((out.norm_sqr() - 1.0).abs() < 1e-7, "seed {seed}");
        }
    }
}
