//! Gate fusion — §3.2 "Query Optimization: consecutive gates are fused into
//! single SQL query where possible, minimizing intermediate results".
//!
//! Greedy scheme: consecutive gates whose combined qubit support stays within
//! `max_fused_qubits` are multiplied into one unitary block, so the CTE chain
//! shrinks (each CTE is one join + one aggregation over the whole state, so
//! fewer CTEs means proportionally fewer passes).

use qymera_circuit::{CMatrix, Complex64, Gate, QuantumCircuit};

use crate::tables::{GateOp, GateTableRegistry, GATE_AMPLITUDE_TOL};

/// Embed `m` (acting on `from`, local bit j = `from[j]`) into the qubit list
/// `to` (⊇ `from`), producing a 2^|to| matrix with identity on `to ∖ from`.
pub fn embed(m: &CMatrix, from: &[usize], to: &[usize]) -> CMatrix {
    let pos: Vec<usize> = from
        .iter()
        .map(|q| {
            to.iter()
                .position(|t| t == q)
                .expect("`from` qubits must be a subset of `to`")
        })
        .collect();
    let dim = 1usize << to.len();
    let rest_mask: usize = {
        let mut used = 0usize;
        for &p in &pos {
            used |= 1 << p;
        }
        !used & (dim - 1)
    };
    let mut out = CMatrix::zeros(dim, dim);
    for a in 0..dim {
        for b in 0..dim {
            if a & rest_mask != b & rest_mask {
                continue; // identity on untouched qubits
            }
            let mut la = 0usize;
            let mut lb = 0usize;
            for (j, &p) in pos.iter().enumerate() {
                la |= ((a >> p) & 1) << j;
                lb |= ((b >> p) & 1) << j;
            }
            out[(a, b)] = m[(la, lb)];
        }
    }
    out
}

/// Sparse entries of an arbitrary unitary block (the fused gate's relational
/// table).
pub fn matrix_entries(m: &CMatrix, tol: f64) -> Vec<(u64, u64, Complex64)> {
    let mut entries = Vec::new();
    for in_s in 0..m.cols() {
        for out_s in 0..m.rows() {
            let amp = m[(out_s, in_s)];
            if amp.norm_sqr() > tol * tol {
                entries.push((in_s as u64, out_s as u64, amp));
            }
        }
    }
    entries
}

/// One fused block before lowering.
#[derive(Debug, Clone)]
struct Block {
    qubits: Vec<usize>,
    matrix: CMatrix,
    gates: Vec<Gate>,
}

impl Block {
    fn from_gate(g: &Gate) -> Self {
        Block { qubits: g.qubits.clone(), matrix: g.matrix(), gates: vec![g.clone()] }
    }

    /// Try to absorb `g`; returns false (unchanged) if the union would
    /// exceed `max_qubits`.
    fn try_absorb(&mut self, g: &Gate, max_qubits: usize) -> bool {
        let mut union = self.qubits.clone();
        for &q in &g.qubits {
            if !union.contains(&q) {
                union.push(q);
            }
        }
        if union.len() > max_qubits {
            return false;
        }
        let lifted_block = embed(&self.matrix, &self.qubits, &union);
        let lifted_gate = embed(&g.matrix(), &g.qubits, &union);
        self.matrix = lifted_gate.matmul(&lifted_block);
        self.qubits = union;
        self.gates.push(g.clone());
        true
    }

    fn lower(self, reg: &mut GateTableRegistry) -> GateOp {
        if self.gates.len() == 1 {
            // Single gate: keep the canonical shared table (H, CX, …).
            return reg.lower_gate(&self.gates[0]);
        }
        let entries = matrix_entries(&self.matrix, GATE_AMPLITUDE_TOL);
        reg.register_custom("F", self.qubits, entries)
    }
}

/// Lower a circuit to gate operations, optionally fusing consecutive gates
/// up to `max_fused_qubits` (`None` disables fusion — one op per gate).
pub fn lower_circuit(
    circuit: &QuantumCircuit,
    reg: &mut GateTableRegistry,
    max_fused_qubits: Option<usize>,
) -> Vec<GateOp> {
    match max_fused_qubits {
        None => circuit.gates().iter().map(|g| reg.lower_gate(g)).collect(),
        Some(max_q) => {
            let mut ops = Vec::new();
            let mut current: Option<Block> = None;
            for g in circuit.gates() {
                let absorbed = match current.as_mut() {
                    Some(block) => block.try_absorb(g, max_q),
                    None => false,
                };
                if !absorbed {
                    if let Some(block) = current.take() {
                        ops.push(block.lower(reg));
                    }
                    current = Some(Block::from_gate(g));
                }
            }
            if let Some(block) = current {
                ops.push(block.lower(reg));
            }
            ops
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qymera_circuit::{library, CircuitBuilder, GateKind};

    #[test]
    fn embed_identity_on_rest() {
        // X on qubit 0, embedded into [0, 2]: |q2 q0⟩ basis, X on bit 0.
        let x = Gate::new(GateKind::X, vec![0], vec![]).matrix();
        let e = embed(&x, &[0], &[0, 2]);
        assert_eq!(e.rows(), 4);
        // |00⟩→|01⟩ (local), |10⟩→|11⟩; identity on bit 1 (qubit 2)
        assert_eq!(e[(1, 0)], qymera_circuit::c64(1.0, 0.0));
        assert_eq!(e[(3, 2)], qymera_circuit::c64(1.0, 0.0));
        assert_eq!(e[(2, 0)], qymera_circuit::Complex64::ZERO);
        assert!(e.is_unitary(1e-12));
    }

    #[test]
    fn fused_block_equals_gate_product() {
        // H(0) then X(0): block matrix must equal X·H.
        let c = CircuitBuilder::new(1).h(0).x(0).build();
        let mut block = Block::from_gate(&c.gates()[0]);
        assert!(block.try_absorb(&c.gates()[1], 2));
        let h = c.gates()[0].matrix();
        let x = c.gates()[1].matrix();
        let expect = x.matmul(&h);
        assert!(block.matrix.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn fusion_reduces_op_count_on_ghz() {
        let c = library::ghz(3);
        let mut reg = GateTableRegistry::new();
        let unfused = lower_circuit(&c, &mut reg, None);
        assert_eq!(unfused.len(), 3);
        let mut reg = GateTableRegistry::new();
        let fused = lower_circuit(&c, &mut reg, Some(2));
        // H(0) and CX(0,1) fuse (2 qubits); CX(1,2) cannot join (union = 3).
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].qubits, vec![0, 1]);
    }

    #[test]
    fn fusion_with_cap_3_collapses_ghz3_to_one_op() {
        let c = library::ghz(3);
        let mut reg = GateTableRegistry::new();
        let fused = lower_circuit(&c, &mut reg, Some(3));
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].qubits.len(), 3);
        // The fused block must be unitary: entries form a valid table.
        assert!(!fused[0].entries.is_empty());
    }

    #[test]
    fn oversized_gate_passes_through() {
        let c = CircuitBuilder::new(3).ccx(0, 1, 2).h(0).build();
        let mut reg = GateTableRegistry::new();
        let ops = lower_circuit(&c, &mut reg, Some(2));
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].qubits.len(), 3, "CCX alone in its block");
    }

    #[test]
    fn single_gate_blocks_share_canonical_tables() {
        let c = CircuitBuilder::new(4).cx(0, 1).cx(2, 3).build();
        let mut reg = GateTableRegistry::new();
        let ops = lower_circuit(&c, &mut reg, Some(2));
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].table, "CX");
        assert_eq!(ops[1].table, "CX", "both blocks reuse the CX table");
    }

    #[test]
    fn fused_matrix_entries_are_pruned() {
        // CZ is diagonal: 4 entries, not 16.
        let cz = Gate::new(GateKind::Cz, vec![0, 1], vec![]).matrix();
        let entries = matrix_entries(&cz, 1e-15);
        assert_eq!(entries.len(), 4);
    }
}
