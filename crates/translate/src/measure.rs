//! Measurement and analysis queries over a final state table — the Output
//! Layer's "final quantum state, including measurement probabilities"
//! (§3.4), expressed as SQL like everything else in Qymera.

/// Total squared norm: should return 1 for a valid state.
pub fn norm_query(table: &str) -> String {
    format!("SELECT SUM((r * r) + (i * i)) AS norm FROM {table}")
}

/// Basis-state probabilities, most probable first.
pub fn probabilities_query(table: &str, limit: Option<usize>) -> String {
    let mut sql = format!(
        "SELECT s, ((r * r) + (i * i)) AS p FROM {table} ORDER BY p DESC, s"
    );
    if let Some(k) = limit {
        sql.push_str(&format!(" LIMIT {k}"));
    }
    sql
}

/// Marginal distribution of one qubit: rows `(bit, probability)`.
/// The bit expression is wrapped in `CAST(… AS INTEGER)` so it stays an
/// ordinary integer under the `HUGEINT` encoding as well.
pub fn marginal_query(table: &str, qubit: usize) -> String {
    let bit = bit_expr(table, qubit);
    format!(
        "SELECT {bit} AS bit, SUM((r * r) + (i * i)) AS p FROM {table} GROUP BY {bit} ORDER BY bit"
    )
}

/// ⟨Z_q⟩ expectation: Σ p(s) · (1 − 2·bit_q(s)).
pub fn expectation_z_query(table: &str, qubit: usize) -> String {
    let bit = bit_expr(table, qubit);
    format!("SELECT SUM(((r * r) + (i * i)) * (1 - (2 * {bit}))) AS ez FROM {table}")
}

/// Probability that qubits measured in the computational basis equal
/// `pattern` on the masked positions: rows restricted by `s & mask = value`.
pub fn pattern_probability_query(table: &str, mask: u64, value: u64) -> String {
    format!(
        "SELECT SUM((r * r) + (i * i)) AS p FROM {table} WHERE (s & {mask}) = {value}"
    )
}

/// Number of stored (nonzero) basis states.
pub fn support_size_query(table: &str) -> String {
    format!("SELECT COUNT(*) AS nonzeros FROM {table}")
}

/// Number of distinct configurations the masked qubits take across the
/// support: `COUNT(DISTINCT s & mask)`. A quick entanglement/locality probe
/// — a product state over the masked qubits shows exactly one configuration
/// per branch of the rest.
pub fn mask_support_query(table: &str, mask: u64) -> String {
    format!("SELECT COUNT(DISTINCT (s & {mask})) AS configs FROM {table}")
}

/// Per-basis-state comparison of two state tables (debugging / fidelity
/// inspection): every basis state of `a` with `b`'s amplitude beside it,
/// NULL-padded where `b` has no such state. States present only in `b` can
/// be listed by swapping the arguments.
pub fn state_diff_query(a: &str, b: &str) -> String {
    format!(
        "SELECT {a}.s AS s, {a}.r AS ar, {a}.i AS ai, {b}.r AS br, {b}.i AS bi \
         FROM {a} LEFT JOIN {b} ON {b}.s = {a}.s ORDER BY {a}.s"
    )
}

fn bit_expr(table: &str, qubit: usize) -> String {
    if qubit == 0 {
        format!("CAST(({table}.s & 1) AS INTEGER)")
    } else {
        format!("CAST((({table}.s >> {qubit}) & 1) AS INTEGER)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qymera_sqldb::{parser, Database, Value};

    fn ghz_state_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (s INTEGER, r DOUBLE, i DOUBLE)").unwrap();
        let a = std::f64::consts::FRAC_1_SQRT_2;
        db.execute(&format!("INSERT INTO T VALUES (0, {a}, 0.0), (7, {a}, 0.0)"))
            .unwrap();
        db
    }

    #[test]
    fn all_queries_parse() {
        for sql in [
            norm_query("T"),
            probabilities_query("T", Some(5)),
            probabilities_query("T", None),
            marginal_query("T", 2),
            expectation_z_query("T", 0),
            pattern_probability_query("T", 3, 1),
            support_size_query("T"),
            mask_support_query("T", 5),
            state_diff_query("T", "U"),
        ] {
            parser::parse_statement(&sql).unwrap_or_else(|e| panic!("{e}: {sql}"));
        }
    }

    #[test]
    fn mask_support_counts_distinct_configs() {
        let mut db = ghz_state_db();
        // GHZ support {|000⟩, |111⟩}: qubit 0 takes two configurations, and
        // adding a state that repeats s&1 = 1 must not raise the count.
        db.execute("INSERT INTO T VALUES (5, 0.1, 0.0)").unwrap();
        let n = db.execute(&mask_support_query("T", 1)).unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(2)));
        let n = db.execute(&mask_support_query("T", 7)).unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn state_diff_pads_missing_states() {
        let mut db = ghz_state_db();
        let a = std::f64::consts::FRAC_1_SQRT_2;
        db.execute("CREATE TABLE U (s INTEGER, r DOUBLE, i DOUBLE)").unwrap();
        db.execute(&format!("INSERT INTO U VALUES (0, {a}, 0.0)")).unwrap();
        let rs = db.execute(&state_diff_query("T", "U")).unwrap();
        assert_eq!(rs.rows().len(), 2, "one row per state of T");
        assert_eq!(rs.rows()[0][0], Value::Int(0));
        assert!(!rs.rows()[0][3].is_null(), "|000⟩ exists in both");
        assert_eq!(rs.rows()[1][0], Value::Int(7));
        assert!(rs.rows()[1][3].is_null(), "|111⟩ missing from U → NULL pad");
    }

    #[test]
    fn norm_and_support() {
        let mut db = ghz_state_db();
        let norm = db.execute(&norm_query("T")).unwrap().scalar().unwrap().as_f64().unwrap();
        assert!((norm - 1.0).abs() < 1e-12);
        let n = db.execute(&support_size_query("T")).unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn probabilities_ordering() {
        let mut db = ghz_state_db();
        db.execute("INSERT INTO T VALUES (3, 0.1, 0.0)").unwrap();
        let rs = db.execute(&probabilities_query("T", Some(2))).unwrap();
        assert_eq!(rs.rows().len(), 2);
        // the two GHZ components (p = 0.5) come before the 0.01 entry
        assert_eq!(rs.rows()[0][0], Value::Int(0));
        assert_eq!(rs.rows()[1][0], Value::Int(7));
    }

    #[test]
    fn marginal_of_ghz_qubit() {
        let mut db = ghz_state_db();
        let rs = db.execute(&marginal_query("T", 1)).unwrap();
        assert_eq!(rs.rows().len(), 2);
        assert!((rs.rows()[0][1].as_f64().unwrap() - 0.5).abs() < 1e-12);
        assert!((rs.rows()[1][1].as_f64().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn z_expectation_of_ghz_is_zero() {
        let mut db = ghz_state_db();
        let ez = db
            .execute(&expectation_z_query("T", 0))
            .unwrap()
            .scalar()
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(ez.abs() < 1e-12);
    }

    #[test]
    fn pattern_probability() {
        let mut db = ghz_state_db();
        // P(qubit0 = 1 and qubit1 = 1) = P(|111⟩) = 0.5
        let p = db
            .execute(&pattern_probability_query("T", 3, 3))
            .unwrap()
            .scalar()
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }
}
