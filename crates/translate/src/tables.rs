//! Relational encodings of quantum states and gates (§2.1 of the paper).
//!
//! * A state is a table `T(s, r, i)` holding only nonzero basis states;
//! * a gate is a table `G(in_s, out_s, r, i)` of transition amplitudes.
//!
//! [`GateTableRegistry`] deduplicates gate tables: every `H` in a circuit
//! shares one `H` table (as in Fig. 2b, where both CX gates reuse the same
//! `CX` table), while parameterized gates get distinct numbered tables.

use std::collections::HashMap;

use qymera_circuit::{gate_table_entries, Complex64, Gate};
use qymera_sqldb::{BigBits, Database, Result as SqlResult, Value};

use crate::masks::StateEncoding;

/// Amplitudes smaller than this (in magnitude) are omitted from gate tables.
pub const GATE_AMPLITUDE_TOL: f64 = 1e-15;

/// One lowered gate operation: the qubits it acts on and its relational
/// `(in_s, out_s, amplitude)` rows. Both plain gates and fused blocks lower
/// to this form.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOp {
    /// Name of the gate table in the database (e.g. `H`, `CX`, `RZ_1`).
    pub table: String,
    /// Qubits in local-bit order (bit j of `in_s`/`out_s` is `qubits[j]`).
    pub qubits: Vec<usize>,
    /// Nonzero transition amplitudes.
    pub entries: Vec<(u64, u64, Complex64)>,
}

impl GateOp {
    /// Rows in the paper's `G(in_s, out_s, r, i)` schema.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.entries
            .iter()
            .map(|&(in_s, out_s, amp)| {
                vec![
                    Value::Int(in_s as i64),
                    Value::Int(out_s as i64),
                    Value::Float(amp.re),
                    Value::Float(amp.im),
                ]
            })
            .collect()
    }
}

/// One materialized gate table: its name and `(in_s, out_s, amplitude)`
/// entries.
pub type GateTable = (String, Vec<(u64, u64, Complex64)>);

/// Deduplicating registry of gate tables for one translation.
#[derive(Debug, Default)]
pub struct GateTableRegistry {
    /// (kind name, param bit patterns) → table name
    by_shape: HashMap<(String, Vec<u64>), String>,
    /// Tables in creation order: (name, entries).
    tables: Vec<GateTable>,
    param_counter: usize,
}

impl GateTableRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lower a circuit gate, registering its table if unseen.
    pub fn lower_gate(&mut self, gate: &Gate) -> GateOp {
        let key = (
            gate.kind.name().to_string(),
            gate.params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        );
        let table = match self.by_shape.get(&key) {
            Some(name) => name.clone(),
            None => {
                let name = if gate.params.is_empty() {
                    gate.kind.name().to_uppercase()
                } else {
                    self.param_counter += 1;
                    format!("{}_{}", gate.kind.name().to_uppercase(), self.param_counter)
                };
                let entries = gate_table_entries(gate, GATE_AMPLITUDE_TOL);
                self.tables.push((name.clone(), entries));
                self.by_shape.insert(key, name.clone());
                name
            }
        };
        let entries = self
            .tables
            .iter()
            .find(|(n, _)| *n == table)
            .expect("registered above")
            .1
            .clone();
        GateOp { table, qubits: gate.qubits.clone(), entries }
    }

    /// Register a pre-built operation (fused blocks) under a fresh name.
    pub fn register_custom(
        &mut self,
        label: &str,
        qubits: Vec<usize>,
        entries: Vec<(u64, u64, Complex64)>,
    ) -> GateOp {
        self.param_counter += 1;
        let name = format!("{}_{}", label.to_uppercase(), self.param_counter);
        self.tables.push((name.clone(), entries.clone()));
        GateOp { table: name, qubits, entries }
    }

    /// Distinct gate tables in creation order.
    pub fn tables(&self) -> &[GateTable] {
        &self.tables
    }

    /// `CREATE TABLE` + bulk-load every registered gate table into `db`.
    /// Pre-existing tables of the same name are replaced, so re-running a
    /// circuit against a persistent database stays idempotent.
    pub fn materialize(&self, db: &mut Database) -> SqlResult<()> {
        for (name, entries) in &self.tables {
            db.drop_table_if_exists(name)?;
            db.execute(&format!(
                "CREATE TABLE {name} (in_s INTEGER, out_s INTEGER, r DOUBLE, i DOUBLE)"
            ))?;
            let rows: Vec<Vec<Value>> = entries
                .iter()
                .map(|&(i, o, a)| {
                    vec![
                        Value::Int(i as i64),
                        Value::Int(o as i64),
                        Value::Float(a.re),
                        Value::Float(a.im),
                    ]
                })
                .collect();
            db.insert_rows(name, rows)?;
        }
        Ok(())
    }
}

/// Create the initial state table `name(s, r, i)` holding `|basis⟩` with
/// amplitude 1, using the encoding appropriate for `num_qubits`.
pub fn create_initial_state_table(
    db: &mut Database,
    name: &str,
    num_qubits: usize,
    basis: u64,
) -> SqlResult<StateEncoding> {
    let enc = StateEncoding::for_qubits(num_qubits);
    db.drop_table_if_exists(name)?;
    db.execute(&format!(
        "CREATE TABLE {name} (s {}, r DOUBLE, i DOUBLE)",
        enc.sql_type()
    ))?;
    let s_value = match enc {
        StateEncoding::Int => Value::Int(basis as i64),
        StateEncoding::Huge => Value::Big(BigBits::from_u64(basis, num_qubits)),
    };
    db.insert_rows(name, vec![vec![s_value, Value::Float(1.0), Value::Float(0.0)]])?;
    Ok(enc)
}

/// Load an arbitrary sparse state into a fresh table (used for mid-circuit
/// resumption and tests).
pub fn create_state_table_from(
    db: &mut Database,
    name: &str,
    num_qubits: usize,
    amplitudes: &[(u64, Complex64)],
) -> SqlResult<StateEncoding> {
    let enc = StateEncoding::for_qubits(num_qubits);
    db.drop_table_if_exists(name)?;
    db.execute(&format!(
        "CREATE TABLE {name} (s {}, r DOUBLE, i DOUBLE)",
        enc.sql_type()
    ))?;
    let rows: Vec<Vec<Value>> = amplitudes
        .iter()
        .map(|&(s, a)| {
            let sv = match enc {
                StateEncoding::Int => Value::Int(s as i64),
                StateEncoding::Huge => Value::Big(BigBits::from_u64(s, num_qubits)),
            };
            vec![sv, Value::Float(a.re), Value::Float(a.im)]
        })
        .collect();
    db.insert_rows(name, rows)?;
    Ok(enc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qymera_circuit::{c64, GateKind};

    #[test]
    fn h_and_cx_tables_match_fig2b() {
        let mut reg = GateTableRegistry::new();
        let h = reg.lower_gate(&Gate::new(GateKind::H, vec![0], vec![]));
        assert_eq!(h.table, "H");
        assert_eq!(h.entries.len(), 4);
        let cx = reg.lower_gate(&Gate::new(GateKind::Cx, vec![0, 1], vec![]));
        assert_eq!(cx.table, "CX");
        let io: Vec<(u64, u64)> = cx.entries.iter().map(|&(i, o, _)| (i, o)).collect();
        assert_eq!(io, vec![(0, 0), (1, 3), (2, 2), (3, 1)]);
    }

    #[test]
    fn identical_gates_share_tables() {
        let mut reg = GateTableRegistry::new();
        reg.lower_gate(&Gate::new(GateKind::Cx, vec![0, 1], vec![]));
        reg.lower_gate(&Gate::new(GateKind::Cx, vec![1, 2], vec![]));
        assert_eq!(reg.tables().len(), 1, "same CX matrix → one table (Fig. 2b)");
        // same kind with different parameters → distinct tables
        reg.lower_gate(&Gate::new(GateKind::Rz, vec![0], vec![0.5]));
        reg.lower_gate(&Gate::new(GateKind::Rz, vec![0], vec![0.7]));
        reg.lower_gate(&Gate::new(GateKind::Rz, vec![1], vec![0.5]));
        assert_eq!(reg.tables().len(), 3, "two RZ angles → two more tables");
    }

    #[test]
    fn materialize_creates_queryable_tables() {
        let mut reg = GateTableRegistry::new();
        reg.lower_gate(&Gate::new(GateKind::H, vec![0], vec![]));
        let mut db = Database::new();
        reg.materialize(&mut db).unwrap();
        let rs = db.execute("SELECT COUNT(*) FROM H").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(4)));
        let rs = db
            .execute("SELECT r FROM H WHERE in_s = 1 AND out_s = 1")
            .unwrap();
        let v = rs.scalar().unwrap().as_f64().unwrap();
        assert!((v + std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn initial_state_tables() {
        let mut db = Database::new();
        let enc = create_initial_state_table(&mut db, "T0", 3, 0).unwrap();
        assert_eq!(enc, StateEncoding::Int);
        let rs = db.execute("SELECT s, r, i FROM T0").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(0), Value::Float(1.0), Value::Float(0.0)]);

        let enc = create_initial_state_table(&mut db, "TB", 100, 5).unwrap();
        assert_eq!(enc, StateEncoding::Huge);
        let rs = db.execute("SELECT s FROM TB").unwrap();
        assert!(matches!(rs.rows()[0][0], Value::Big(_)));
    }

    #[test]
    fn custom_state_load() {
        let mut db = Database::new();
        let amp = std::f64::consts::FRAC_1_SQRT_2;
        create_state_table_from(
            &mut db,
            "S",
            2,
            &[(0, c64(amp, 0.0)), (3, c64(0.0, amp))],
        )
        .unwrap();
        let rs = db.execute("SELECT SUM((r*r) + (i*i)) FROM S").unwrap();
        let norm = rs.scalar().unwrap().as_f64().unwrap();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_registration_gets_unique_names() {
        let mut reg = GateTableRegistry::new();
        let a = reg.register_custom("fused", vec![0, 1], vec![(0, 0, c64(1.0, 0.0))]);
        let b = reg.register_custom("fused", vec![1, 2], vec![(0, 0, c64(1.0, 0.0))]);
        assert_ne!(a.table, b.table);
    }
}
