//! The SQL simulation backend: translate a circuit, execute it on the
//! embedded relational engine, read the final state back.
//!
//! Two execution modes mirror the system description:
//!
//! * [`ExecMode::SingleQuery`] — the whole circuit as one `WITH` chain
//!   (Fig. 2c). The engine pipelines the CTEs; grouped aggregation spills to
//!   disk under memory pressure, which is the paper's out-of-core story
//!   (§3.3) in action.
//! * [`ExecMode::StepTables`] — one `CREATE TABLE … AS` per gate, dropping
//!   the previous state. Intermediate states are inspectable (Scenario 3's
//!   educational walk-through) at the cost of materializing each state.

use std::collections::BTreeMap;

use qymera_circuit::{c64, Complex64, QuantumCircuit};
use qymera_sim::{SimError, SimOptions, SimOutput, Simulator};
use qymera_sqldb::{
    CancelHandle, Database, DbStats, DurabilityOptions, Error as SqlError, MemoryBudget, Value,
};

use crate::fusion::lower_circuit;
use crate::sqlgen::{circuit_query, state_table_name, step_statement, SqlGenConfig};
use crate::tables::{create_initial_state_table, GateOp, GateTableRegistry};

/// How the translated circuit is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One CTE chain per circuit (streaming, out-of-core friendly).
    #[default]
    SingleQuery,
    /// One materialized state table per gate (inspectable).
    StepTables,
}

/// Configuration of the SQL backend.
#[derive(Debug, Clone, Default)]
pub struct SqlSimConfig {
    /// Single-query CTE chain vs. one materialized table per gate.
    pub mode: ExecMode,
    /// Fuse consecutive gates up to this many qubits (§3.2); `None` = off.
    pub fusion: Option<usize>,
    /// SQL generation options (e.g. interference pruning via `HAVING`).
    pub sqlgen: SqlGenConfig,
    /// Engine memory budget in bytes (tables + operators); `None` unlimited.
    /// This is what the paper's 2.0 GB experiment constrains.
    pub memory_limit: Option<usize>,
    /// Run the engine's row-at-a-time reference path instead of the default
    /// vectorized batch executor. Useful for A/B performance comparisons and
    /// as a correctness oracle; results are identical on both paths.
    pub row_engine: bool,
    /// Worker threads for the engine's morsel-parallel batch execution.
    /// `None` keeps the engine default (host core count, or the
    /// `QYMERA_PARALLELISM` environment variable); `Some(1)` forces fully
    /// sequential execution.
    pub parallelism: Option<usize>,
    /// Open the engine on a persistent on-disk database at this directory
    /// (write-ahead logged, checkpointed, crash-recoverable) instead of the
    /// default in-memory store. Gate and state tables are replaced on rerun,
    /// so pointing repeated simulations at one directory is safe.
    pub db_path: Option<std::path::PathBuf>,
    /// Per-statement deadline in milliseconds for every SQL statement the
    /// run issues; exceeding it fails the run with [`SimError::Timeout`] and
    /// rolls the engine back cleanly. `None` falls back to the
    /// `QYMERA_TIMEOUT_MS` environment variable (unset or 0 = no deadline).
    pub timeout_ms: Option<u64>,
    /// External cancel handle observed by every statement of the run (wire
    /// a Ctrl-C handler to it); a cancel surfaces as [`SimError::Cancelled`]
    /// with the engine rolled back cleanly. `None` creates a private,
    /// never-cancelled handle.
    pub cancel: Option<CancelHandle>,
}

/// One amplitude of the final state as the engine returned it. The basis
/// index is a [`Value`] because registers beyond 63 qubits use `HUGEINT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlAmplitude {
    /// Basis-state index (`INTEGER` or `HUGEINT` past 63 qubits).
    pub s: Value,
    /// The complex amplitude of that basis state.
    pub amp: Complex64,
}

/// Result of a SQL-backend run.
#[derive(Debug, Clone)]
pub struct SqlRunResult {
    /// Register width of the simulated circuit.
    pub num_qubits: usize,
    /// The final state's nonzero amplitudes, in engine order.
    pub amplitudes: Vec<SqlAmplitude>,
    /// Engine statistics (peak memory, spill files/bytes, statement count).
    pub stats: DbStats,
    /// Number of gate operations after fusion.
    pub ops_executed: usize,
}

impl SqlRunResult {
    /// Σ|a|².
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.amp.norm_sqr()).sum()
    }

    /// Stored (nonzero) amplitude count.
    pub fn support(&self) -> usize {
        self.amplitudes.len()
    }
}

/// The SQL simulation backend.
///
/// # Examples
///
/// ```
/// use qymera_translate::SqlSimulator;
/// use qymera_circuit::library;
///
/// // Simulate a 3-qubit GHZ circuit entirely inside the relational engine.
/// let result = SqlSimulator::paper_default().run(&library::ghz(3)).unwrap();
/// assert_eq!(result.support(), 2); // |000⟩ and |111⟩
/// assert!((result.norm_sqr() - 1.0).abs() < 1e-12);
///
/// // The generated SQL is the paper's Fig. 2c CTE chain.
/// let sql = SqlSimulator::paper_default().generated_sql(&library::ghz(3));
/// assert!(sql.starts_with("WITH T1 AS ("));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SqlSimulator {
    /// Execution mode, fusion, SQL generation, and memory-limit settings.
    pub config: SqlSimConfig,
}

impl SqlSimulator {
    /// Simulator with an explicit configuration.
    pub fn new(config: SqlSimConfig) -> Self {
        SqlSimulator { config }
    }

    /// The paper's default setup: single query, no fusion, no limit.
    pub fn paper_default() -> Self {
        Self::new(SqlSimConfig::default())
    }

    fn make_db(&self) -> Result<Database, SimError> {
        let mut db = match &self.config.db_path {
            Some(dir) => {
                let mut opts = DurabilityOptions::default();
                if let Some(limit) = self.config.memory_limit {
                    opts.budget = MemoryBudget::with_limit(limit);
                }
                Database::open_with(dir, opts).map_err(map_sql_error)?
            }
            None => match self.config.memory_limit {
                Some(limit) => Database::with_memory_limit(limit),
                None => Database::new(),
            },
        };
        if self.config.row_engine {
            db.set_exec_path(qymera_sqldb::ExecPath::Row);
        }
        if let Some(n) = self.config.parallelism {
            db.set_parallelism(n);
        }
        db.set_statement_timeout_ms(self.config.timeout_ms.or_else(env_timeout_ms));
        if let Some(handle) = &self.config.cancel {
            db.set_cancel_handle(handle.clone());
        }
        Ok(db)
    }

    fn lower(&self, circuit: &QuantumCircuit) -> (GateTableRegistry, Vec<GateOp>) {
        let mut reg = GateTableRegistry::new();
        let ops = lower_circuit(circuit, &mut reg, self.config.fusion);
        (reg, ops)
    }

    /// The full SQL this backend would execute for `circuit` (single-query
    /// mode text, as shown in the paper's Fig. 2c).
    pub fn generated_sql(&self, circuit: &QuantumCircuit) -> String {
        let (_, ops) = self.lower(circuit);
        circuit_query(&ops, circuit.num_qubits, "T0", &self.config.sqlgen)
    }

    /// Execute the full translated query under `EXPLAIN ANALYZE`, returning
    /// the per-operator profile (rows and inclusive time per plan node) —
    /// the Output Layer's performance metrics at operator granularity.
    pub fn profile(&self, circuit: &QuantumCircuit) -> Result<String, SimError> {
        let (reg, ops) = self.lower(circuit);
        let mut db = self.make_db()?;
        reg.materialize(&mut db).map_err(map_sql_error)?;
        create_initial_state_table(&mut db, "T0", circuit.num_qubits, 0)
            .map_err(map_sql_error)?;
        let sql = circuit_query(&ops, circuit.num_qubits, "T0", &self.config.sqlgen);
        db.explain_analyze(&sql).map_err(map_sql_error)
    }

    /// Run the circuit and return the final state plus engine statistics.
    pub fn run(&self, circuit: &QuantumCircuit) -> Result<SqlRunResult, SimError> {
        let (reg, ops) = self.lower(circuit);
        let mut db = self.make_db()?;
        reg.materialize(&mut db).map_err(map_sql_error)?;
        create_initial_state_table(&mut db, "T0", circuit.num_qubits, 0)
            .map_err(map_sql_error)?;

        let final_rows = match self.config.mode {
            ExecMode::SingleQuery => {
                let sql = circuit_query(&ops, circuit.num_qubits, "T0", &self.config.sqlgen);
                db.execute(&sql).map_err(map_sql_error)?.into_rows()
            }
            ExecMode::StepTables => {
                for (k, op) in ops.iter().enumerate() {
                    let (next, select) =
                        step_statement(k, op, circuit.num_qubits, &self.config.sqlgen);
                    db.create_table_as(&next, &select).map_err(map_sql_error)?;
                    db.drop_table_if_exists(&state_table_name(k)).map_err(map_sql_error)?;
                }
                let last = state_table_name(ops.len());
                db.execute(&format!("SELECT s, r, i FROM {last} ORDER BY s"))
                    .map_err(map_sql_error)?
                    .into_rows()
            }
        };

        let amplitudes = rows_to_amplitudes(final_rows)?;
        Ok(SqlRunResult {
            num_qubits: circuit.num_qubits,
            amplitudes,
            stats: db.stats(),
            ops_executed: ops.len(),
        })
    }

    /// Step-by-step execution returning every intermediate state — the
    /// educational trace of Demonstration Scenario 3. Index 0 is the initial
    /// state, index k the state after gate k.
    pub fn run_trace(
        &self,
        circuit: &QuantumCircuit,
    ) -> Result<Vec<Vec<SqlAmplitude>>, SimError> {
        let (reg, ops) = self.lower(circuit);
        let mut db = self.make_db()?;
        reg.materialize(&mut db).map_err(map_sql_error)?;
        create_initial_state_table(&mut db, "T0", circuit.num_qubits, 0)
            .map_err(map_sql_error)?;
        let mut states = Vec::with_capacity(ops.len() + 1);
        let read = |db: &mut Database, t: &str| -> Result<Vec<SqlAmplitude>, SimError> {
            let rows = db
                .execute(&format!("SELECT s, r, i FROM {t} ORDER BY s"))
                .map_err(map_sql_error)?
                .into_rows();
            rows_to_amplitudes(rows)
        };
        states.push(read(&mut db, "T0")?);
        for (k, op) in ops.iter().enumerate() {
            let (next, select) = step_statement(k, op, circuit.num_qubits, &self.config.sqlgen);
            db.create_table_as(&next, &select).map_err(map_sql_error)?;
            states.push(read(&mut db, &next)?);
        }
        Ok(states)
    }
}

fn rows_to_amplitudes(rows: Vec<Vec<Value>>) -> Result<Vec<SqlAmplitude>, SimError> {
    rows.into_iter()
        .map(|row| {
            if row.len() != 3 {
                return Err(SimError::Numerical("state row arity mismatch".into()));
            }
            let mut it = row.into_iter();
            let s = it.next().expect("len checked");
            let r = it.next().expect("len checked");
            let i = it.next().expect("len checked");
            let re = r.as_f64().map_err(|e| SimError::Numerical(e.to_string()))?;
            let im = i.as_f64().map_err(|e| SimError::Numerical(e.to_string()))?;
            Ok(SqlAmplitude { s, amp: c64(re, im) })
        })
        .collect()
}

/// `QYMERA_TIMEOUT_MS` — per-statement deadline fallback when
/// [`SqlSimConfig::timeout_ms`] is unset; 0 or unset means no deadline.
/// Panics on an unparsable value, matching the other environment knobs.
fn env_timeout_ms() -> Option<u64> {
    match std::env::var("QYMERA_TIMEOUT_MS") {
        Ok(v) => {
            let ms: u64 = v.trim().parse().unwrap_or_else(|_| {
                panic!("QYMERA_TIMEOUT_MS must be an integer, got {v:?}")
            });
            (ms > 0).then_some(ms)
        }
        Err(_) => None,
    }
}

fn map_sql_error(e: SqlError) -> SimError {
    match e {
        SqlError::OutOfMemory { requested, budget } => {
            SimError::OutOfMemory { requested, limit: budget }
        }
        SqlError::Cancelled => SimError::Cancelled,
        SqlError::Timeout { ms } => SimError::Timeout { ms },
        SqlError::Overloaded { active, max } => SimError::Overloaded { active, max },
        other => SimError::Numerical(other.to_string()),
    }
}

impl Simulator for SqlSimulator {
    fn name(&self) -> &'static str {
        "sql"
    }

    fn simulate(
        &self,
        circuit: &QuantumCircuit,
        opts: &SimOptions,
    ) -> Result<SimOutput, SimError> {
        // SimOutput uses u64 basis indices; wider registers must use
        // `run()` directly (the HUGEINT path).
        if circuit.num_qubits > 63 {
            return Err(SimError::TooManyQubits { qubits: circuit.num_qubits, max: 63 });
        }
        let mut this = self.clone();
        if this.config.memory_limit.is_none() {
            this.config.memory_limit = opts.memory_limit;
        }
        let result = this.run(circuit)?;
        let tol2 = opts.truncation_tol * opts.truncation_tol;
        let mut amplitudes = BTreeMap::new();
        for a in result.amplitudes {
            if a.amp.norm_sqr() <= tol2 {
                continue;
            }
            let s = match &a.s {
                Value::Int(v) if *v >= 0 => *v as u64,
                Value::Big(b) => b
                    .to_u64()
                    .ok_or_else(|| SimError::Numerical("basis index exceeds u64".into()))?,
                other => {
                    return Err(SimError::Numerical(format!(
                        "unexpected basis index value {other:?}"
                    )))
                }
            };
            amplitudes.insert(s, a.amp);
        }
        let mut out =
            SimOutput::from_map(circuit.num_qubits, amplitudes, result.stats.peak_memory_bytes);
        out.detail = format!(
            "{} ops, {} spill files, {} spill bytes",
            result.ops_executed, result.stats.spill_files, result.stats.spill_bytes
        );
        Ok(out)
    }

    fn max_qubits(&self, _opts: &SimOptions) -> usize {
        // The relational encoding itself is bounded by the HUGEINT width we
        // are willing to generate, not by memory; the trait interface caps at
        // u64 indices.
        63
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qymera_circuit::{library, CircuitBuilder};
    use qymera_sim::StateVectorSim;

    const TOL: f64 = 1e-9;

    fn run_sql(c: &QuantumCircuit) -> SimOutput {
        SqlSimulator::paper_default().simulate(c, &SimOptions::default()).unwrap()
    }

    #[test]
    fn ghz3_matches_fig2_output() {
        let out = run_sql(&library::ghz(3));
        assert_eq!(out.nonzero_count(), 2);
        assert!((out.probability(0) - 0.5).abs() < TOL);
        assert!((out.probability(7) - 0.5).abs() < TOL);
    }

    #[test]
    fn matches_statevector_on_random_circuits() {
        for seed in 0..6 {
            let c = library::random_circuit(4, 20, seed);
            let sql = run_sql(&c);
            let sv = StateVectorSim.simulate(&c, &SimOptions::default()).unwrap();
            let diff = sql.max_amplitude_diff(&sv);
            assert!(diff < 1e-8, "seed {seed}: SQL differs from dense by {diff}");
        }
    }

    #[test]
    fn step_mode_matches_single_query() {
        let c = library::qft(4);
        let single = run_sql(&c);
        let stepped = SqlSimulator::new(SqlSimConfig {
            mode: ExecMode::StepTables,
            ..Default::default()
        })
        .simulate(&c, &SimOptions::default())
        .unwrap();
        assert!(single.max_amplitude_diff(&stepped) < TOL);
    }

    #[test]
    fn fusion_preserves_semantics() {
        for seed in 0..4 {
            let c = library::random_circuit(4, 18, seed);
            let plain = run_sql(&c);
            for fuse in [2usize, 3] {
                let fused = SqlSimulator::new(SqlSimConfig {
                    fusion: Some(fuse),
                    ..Default::default()
                })
                .simulate(&c, &SimOptions::default())
                .unwrap();
                let diff = plain.max_amplitude_diff(&fused);
                assert!(diff < 1e-8, "seed {seed} fuse {fuse}: diff {diff}");
            }
        }
    }

    #[test]
    fn fusion_reduces_executed_ops() {
        let c = library::qft(5);
        let plain = SqlSimulator::paper_default().run(&c).unwrap();
        let fused = SqlSimulator::new(SqlSimConfig { fusion: Some(3), ..Default::default() })
            .run(&c)
            .unwrap();
        assert!(
            fused.ops_executed < plain.ops_executed,
            "fusion should shrink the CTE chain: {} vs {}",
            fused.ops_executed,
            plain.ops_executed
        );
    }

    #[test]
    fn trace_shows_fig2_intermediate_states() {
        let states = SqlSimulator::paper_default().run_trace(&library::ghz(3)).unwrap();
        assert_eq!(states.len(), 4);
        // |ψ⟩0 = |000⟩
        assert_eq!(states[0].len(), 1);
        // |ψ⟩1 = (|000⟩ + |001⟩)/√2 → rows s=0, s=1 (Fig. 2c table T1)
        let s1: Vec<i64> = states[1].iter().map(|a| a.s.as_i64().unwrap()).collect();
        assert_eq!(s1, vec![0, 1]);
        // |ψ⟩2 → rows 0 and 3 (table T2)
        let s2: Vec<i64> = states[2].iter().map(|a| a.s.as_i64().unwrap()).collect();
        assert_eq!(s2, vec![0, 3]);
        // |ψ⟩3 → rows 0 and 7 (table T3)
        let s3: Vec<i64> = states[3].iter().map(|a| a.s.as_i64().unwrap()).collect();
        assert_eq!(s3, vec![0, 7]);
    }

    #[test]
    fn huge_register_runs_beyond_63_qubits() {
        // 80-qubit GHZ: impossible for every in-memory baseline, a couple of
        // rows for the relational representation.
        let c = library::ghz(80);
        let result = SqlSimulator::paper_default().run(&c).unwrap();
        assert_eq!(result.support(), 2);
        assert!((result.norm_sqr() - 1.0).abs() < TOL);
        // the all-ones index must be the 80-bit value
        let big = result
            .amplitudes
            .iter()
            .filter_map(|a| match &a.s {
                Value::Big(b) => Some(b.clone()),
                _ => None,
            })
            .max()
            .expect("expected a HUGEINT basis index");
        assert_eq!(big.bit_len(), 80, "all-ones component spans all 80 qubits");
        // trait interface refuses (u64 output impossible)
        assert!(matches!(
            SqlSimulator::paper_default().simulate(&c, &SimOptions::default()),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn memory_limit_propagates_from_options() {
        let c = library::equal_superposition(12);
        let opts = SimOptions::with_memory_limit(16 * 1024);
        // 4096 amplitudes don't fit in 16 KiB of engine memory, but the
        // aggregate spills, so the run must SUCCEED (unlike the in-memory
        // baselines) — this is the out-of-core claim of §3.3.
        let out = SqlSimulator::paper_default().simulate(&c, &opts).unwrap();
        assert_eq!(out.nonzero_count(), 4096);
        assert!(out.detail.contains("spill"), "{}", out.detail);
    }

    #[test]
    fn generated_sql_is_fig2c() {
        let sql = SqlSimulator::paper_default().generated_sql(&library::ghz(3));
        assert!(sql.starts_with("WITH T1 AS ("));
        assert!(sql.contains("((T0.s & ~1) | H.out_s)"));
        assert!(sql.contains("((T2.s & ~6) | (CX.out_s << 1))"));
        assert!(sql.ends_with("SELECT s, r, i FROM T3 ORDER BY s"));
    }

    #[test]
    fn interference_prunes_with_having() {
        let c = CircuitBuilder::new(1).h(0).h(0).build();
        // without pruning the engine returns the structural zero row
        let plain = SqlSimulator::paper_default().run(&c).unwrap();
        assert_eq!(plain.support(), 2);
        // with HAVING pruning it is dropped inside the engine
        let pruned = SqlSimulator::new(SqlSimConfig {
            sqlgen: SqlGenConfig { prune_threshold: Some(1e-20) },
            ..Default::default()
        })
        .run(&c)
        .unwrap();
        assert_eq!(pruned.support(), 1);
    }

    #[test]
    fn empty_circuit_returns_initial_state() {
        let c = QuantumCircuit::new(3);
        let out = run_sql(&c);
        assert_eq!(out.nonzero_count(), 1);
        assert!((out.probability(0) - 1.0).abs() < TOL);
    }
}

#[cfg(test)]
mod huge_register_tests {
    use super::*;
    use qymera_circuit::CircuitBuilder;
    use qymera_sqldb::BigBits;

    fn big_index(result: &SqlRunResult) -> Vec<BigBits> {
        result
            .amplitudes
            .iter()
            .map(|a| match &a.s {
                Value::Big(b) => b.clone(),
                Value::Int(i) => BigBits::from_u64(*i as u64, 64),
                other => panic!("unexpected index {other:?}"),
            })
            .collect()
    }

    #[test]
    fn non_contiguous_gate_beyond_63_qubits() {
        // X(0) then CX(0, 69): control low, target high — the XOR form with
        // per-bit placement must set exactly bits 0 and 69 of a 70-bit index.
        let c = CircuitBuilder::new(70).x(0).cx(0, 69).build();
        let result = SqlSimulator::paper_default().run(&c).unwrap();
        assert_eq!(result.support(), 1);
        let idx = &big_index(&result)[0];
        assert!(idx.bit(0) && idx.bit(69));
        assert_eq!(idx.bit_len(), 70);
        assert!((result.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_qubit_order_beyond_63() {
        // CX listed [high, low]: the non-contiguous mask path.
        let c = CircuitBuilder::new(66).x(65).cx(65, 2).build();
        let result = SqlSimulator::paper_default().run(&c).unwrap();
        let idx = &big_index(&result)[0];
        assert!(idx.bit(65) && idx.bit(2), "control 65 set → target 2 flips");
    }

    #[test]
    fn superposition_on_high_qubit() {
        // H on qubit 64: two components differing in bit 64 only.
        let c = CircuitBuilder::new(65).h(64).build();
        let result = SqlSimulator::paper_default().run(&c).unwrap();
        assert_eq!(result.support(), 2);
        let idxs = big_index(&result);
        let diff = idxs[0].xor(&idxs[1]);
        assert!(diff.bit(64));
        assert_eq!(diff.bit_len(), 65);
    }

    #[test]
    fn step_mode_matches_single_query_beyond_63() {
        let c = CircuitBuilder::new(80).h(0).cx(0, 40).cx(40, 79).build();
        let single = SqlSimulator::paper_default().run(&c).unwrap();
        let stepped = SqlSimulator::new(SqlSimConfig {
            mode: ExecMode::StepTables,
            ..Default::default()
        })
        .run(&c)
        .unwrap();
        assert_eq!(single.support(), stepped.support());
        for (a, b) in single.amplitudes.iter().zip(&stepped.amplitudes) {
            assert_eq!(a.s, b.s);
            assert!((a.amp - b.amp).abs() < 1e-12);
        }
    }

    #[test]
    fn interference_cancels_in_huge_registers() {
        // H then Z then H on qubit 70 = X up to nothing measurable on |0⟩…
        // precisely: HZH = X, so bit 70 must flip deterministically.
        let c = CircuitBuilder::new(71).h(70).z(70).h(70).build();
        let result = SqlSimulator::paper_default().run(&c).unwrap();
        // the zero-amplitude |0…0⟩ row may remain structurally; filter it
        let live: Vec<_> = result
            .amplitudes
            .iter()
            .filter(|a| a.amp.norm_sqr() > 1e-20)
            .collect();
        assert_eq!(live.len(), 1);
        match &live[0].s {
            Value::Big(b) => assert!(b.bit(70)),
            other => panic!("{other:?}"),
        }
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use qymera_circuit::library;

    #[test]
    fn profile_shows_one_pipeline_stage_per_gate() {
        let sim = SqlSimulator::paper_default();
        let text = sim.profile(&library::ghz(3)).unwrap();
        // Three gates → three aggregates and three joins in the profile.
        assert_eq!(text.matches("Aggregate").count(), 3, "{text}");
        assert_eq!(text.matches("Join").count(), 3, "{text}");
        assert!(text.contains("Sort"), "{text}");
        assert!(text.contains("total output rows: 2"), "{text}");
    }
}
