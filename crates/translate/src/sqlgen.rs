//! SQL generation (§2.2, Fig. 2c): one `JOIN … GROUP BY` block per gate,
//! chained through CTEs, with the complex product expanded into the
//! real/imaginary sum-of-products columns.

use crate::masks::GateMasks;
use crate::tables::GateOp;

/// Generation options.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct SqlGenConfig {
    /// If set, add a `HAVING` clause that drops result amplitudes whose
    /// squared magnitude falls below the threshold (the paper stores "only
    /// nonzero basis states"; interference can otherwise leave exact-zero
    /// rows in the table). `None` reproduces Fig. 2c verbatim.
    pub prune_threshold: Option<f64>,
}


/// The `SELECT` block applying `op` to state table `prev` (no `WITH`
/// wrapper) — query `q_k` of Fig. 2c.
pub fn gate_select(prev: &str, op: &GateOp, num_qubits: usize, cfg: &SqlGenConfig) -> String {
    let masks = GateMasks::new(&op.qubits, num_qubits);
    let g = &op.table;
    let new_s = masks.new_state_expr(prev, g);
    let in_s = masks.in_expr(prev);
    let r_sum = format!("SUM(({prev}.r * {g}.r) - ({prev}.i * {g}.i))");
    let i_sum = format!("SUM(({prev}.r * {g}.i) + ({prev}.i * {g}.r))");
    let mut sql = format!(
        "SELECT {new_s} AS s, {r_sum} AS r, {i_sum} AS i \
         FROM {prev} JOIN {g} ON {g}.in_s = {in_s} \
         GROUP BY {new_s}"
    );
    if let Some(tol) = cfg.prune_threshold {
        sql.push_str(&format!(
            " HAVING ({r_sum} * {r_sum}) + ({i_sum} * {i_sum}) > {tol:e}"
        ));
    }
    sql
}

/// State-table name for step `k` (`T0` is the initial state).
pub fn state_table_name(step: usize) -> String {
    format!("T{step}")
}

/// The full single-statement translation of a circuit: a `WITH` chain with
/// one CTE per lowered gate operation, reading the initial state from
/// `initial` and emitting the final state ordered by basis index.
pub fn circuit_query(
    ops: &[GateOp],
    num_qubits: usize,
    initial: &str,
    cfg: &SqlGenConfig,
) -> String {
    if ops.is_empty() {
        return format!("SELECT s, r, i FROM {initial} ORDER BY s");
    }
    let mut sql = String::from("WITH ");
    let mut prev = initial.to_string();
    for (k, op) in ops.iter().enumerate() {
        let name = state_table_name(k + 1);
        if k > 0 {
            sql.push_str(", ");
        }
        sql.push_str(&name);
        sql.push_str(" AS (");
        sql.push_str(&gate_select(&prev, op, num_qubits, cfg));
        sql.push(')');
        prev = name;
    }
    sql.push_str(&format!(" SELECT s, r, i FROM {prev} ORDER BY s"));
    sql
}

/// A `CREATE TABLE … AS` step statement pair for the materialized
/// (out-of-core-friendly, inspectable) execution mode: returns
/// `(new_table_name, select_sql)`.
pub fn step_statement(
    step: usize,
    op: &GateOp,
    num_qubits: usize,
    cfg: &SqlGenConfig,
) -> (String, String) {
    let prev = state_table_name(step);
    let next = state_table_name(step + 1);
    (next, gate_select(&prev, op, num_qubits, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::GateTableRegistry;
    use qymera_circuit::{library, Gate, GateKind};

    fn ghz_ops() -> Vec<GateOp> {
        let mut reg = GateTableRegistry::new();
        library::ghz(3).gates().iter().map(|g| reg.lower_gate(g)).collect()
    }

    #[test]
    fn q1_matches_fig2c_text() {
        let ops = ghz_ops();
        let sql = gate_select("T0", &ops[0], 3, &SqlGenConfig::default());
        assert_eq!(
            sql,
            "SELECT ((T0.s & ~1) | H.out_s) AS s, \
             SUM((T0.r * H.r) - (T0.i * H.i)) AS r, \
             SUM((T0.r * H.i) + (T0.i * H.r)) AS i \
             FROM T0 JOIN H ON H.in_s = (T0.s & 1) \
             GROUP BY ((T0.s & ~1) | H.out_s)"
        );
    }

    #[test]
    fn q3_matches_fig2c_text() {
        let ops = ghz_ops();
        let sql = gate_select("T2", &ops[2], 3, &SqlGenConfig::default());
        assert_eq!(
            sql,
            "SELECT ((T2.s & ~6) | (CX.out_s << 1)) AS s, \
             SUM((T2.r * CX.r) - (T2.i * CX.i)) AS r, \
             SUM((T2.r * CX.i) + (T2.i * CX.r)) AS i \
             FROM T2 JOIN CX ON CX.in_s = ((T2.s >> 1) & 3) \
             GROUP BY ((T2.s & ~6) | (CX.out_s << 1))"
        );
    }

    #[test]
    fn full_chain_structure() {
        let ops = ghz_ops();
        let sql = circuit_query(&ops, 3, "T0", &SqlGenConfig::default());
        assert!(sql.starts_with("WITH T1 AS (SELECT"));
        assert!(sql.contains(", T2 AS ("));
        assert!(sql.contains(", T3 AS ("));
        assert!(sql.ends_with("SELECT s, r, i FROM T3 ORDER BY s"));
        // It must parse in the engine's dialect.
        assert!(qymera_sqldb::parser::parse_statement(&sql).is_ok());
    }

    #[test]
    fn empty_circuit_reads_initial_state() {
        let sql = circuit_query(&[], 4, "T0", &SqlGenConfig::default());
        assert_eq!(sql, "SELECT s, r, i FROM T0 ORDER BY s");
    }

    #[test]
    fn prune_threshold_adds_having() {
        let ops = ghz_ops();
        let cfg = SqlGenConfig { prune_threshold: Some(1e-30) };
        let sql = gate_select("T0", &ops[0], 3, &cfg);
        assert!(sql.contains("HAVING"), "{sql}");
        assert!(qymera_sqldb::parser::parse_statement(&sql).is_ok());
    }

    #[test]
    fn step_statements_advance_names() {
        let ops = ghz_ops();
        let (name, sql) = step_statement(0, &ops[0], 3, &SqlGenConfig::default());
        assert_eq!(name, "T1");
        assert!(sql.contains("FROM T0"));
        let (name, _) = step_statement(1, &ops[1], 3, &SqlGenConfig::default());
        assert_eq!(name, "T2");
    }

    #[test]
    fn parameterized_gate_table_names_appear() {
        let mut reg = GateTableRegistry::new();
        let op = reg.lower_gate(&Gate::new(GateKind::Rz, vec![1], vec![0.5]));
        let sql = gate_select("T0", &op, 2, &SqlGenConfig::default());
        assert!(sql.contains("RZ_1"), "{sql}");
        assert!(qymera_sqldb::parser::parse_statement(&sql).is_ok());
    }

    #[test]
    fn every_generated_query_parses_for_random_circuits() {
        for seed in 0..5 {
            let c = library::random_circuit(6, 25, seed);
            let mut reg = GateTableRegistry::new();
            let ops: Vec<GateOp> = c.gates().iter().map(|g| reg.lower_gate(g)).collect();
            let sql = circuit_query(&ops, 6, "T0", &SqlGenConfig::default());
            qymera_sqldb::parser::parse_statement(&sql)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{sql}"));
        }
    }
}
