//! Bit-mask arithmetic for locating qubits inside the integer state index
//! (§2.2 of the paper, Table 1).
//!
//! For a gate on qubits `[q₀, …, q_{k−1}]` the generated SQL must:
//!
//! * extract the *local* input index `in_s = Σ bit(s, qⱼ) << j`
//!   (`(T0.s & 1)` and `((T2.s >> 1) & 3)` in Fig. 2c);
//! * clear those qubit bits (`T0.s & ~1`, `T2.s & ~6`);
//! * re-insert the gate's output bits (`| H.out_s`, `| (CX.out_s << 1)`).
//!
//! When the gate's qubits are contiguous ascending, the expressions reduce to
//! the exact shift-and-mask forms of the paper; arbitrary qubit tuples fall
//! back to per-bit extraction. Registers wider than 63 qubits switch to
//! `HUGEINT` hex literals, and `~mask` is emitted as a precomputed complement
//! (bitwise NOT needs an explicit width on arbitrary-precision integers).

use qymera_sqldb::BigBits;

/// How basis-state integers are represented in SQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateEncoding {
    /// `INTEGER` (i64) — up to 63 qubits; the paper's setting.
    Int,
    /// `HUGEINT` with hex literals — arbitrary widths (sparse experiment).
    Huge,
}

impl StateEncoding {
    /// Pick the narrowest encoding for an `n`-qubit register.
    pub fn for_qubits(n: usize) -> StateEncoding {
        if n <= 63 {
            StateEncoding::Int
        } else {
            StateEncoding::Huge
        }
    }

    /// SQL column type name for the `s` column.
    pub fn sql_type(&self) -> &'static str {
        match self {
            StateEncoding::Int => "INTEGER",
            StateEncoding::Huge => "HUGEINT",
        }
    }
}

/// Mask expressions for one gate application.
#[derive(Debug, Clone, PartialEq)]
pub struct GateMasks {
    qubits: Vec<usize>,
    num_qubits: usize,
    encoding: StateEncoding,
}

impl GateMasks {
    /// Masks for a gate acting on `qubits` of an `num_qubits`-wide register.
    pub fn new(qubits: &[usize], num_qubits: usize) -> Self {
        assert!(!qubits.is_empty());
        assert!(qubits.iter().all(|&q| q < num_qubits));
        GateMasks {
            qubits: qubits.to_vec(),
            num_qubits,
            encoding: StateEncoding::for_qubits(num_qubits),
        }
    }

    /// The index encoding (native `INTEGER` vs `HUGEINT`) this register needs.
    pub fn encoding(&self) -> StateEncoding {
        self.encoding
    }

    /// True if qubits are `q₀, q₀+1, …` in ascending order.
    fn contiguous_ascending(&self) -> bool {
        self.qubits.windows(2).all(|w| w[1] == w[0] + 1)
    }

    /// Σ 1 << qⱼ — the bits this gate touches.
    fn touched_mask_u64(&self) -> u64 {
        self.qubits.iter().fold(0u64, |m, &q| m | (1u64 << q.min(63)))
    }

    /// SQL literal for an arbitrary-width constant.
    fn literal(&self, small: u64, big: impl FnOnce() -> BigBits) -> String {
        match self.encoding {
            StateEncoding::Int => format!("{small}"),
            StateEncoding::Huge => format!("0x{}", big().to_hex()),
        }
    }

    /// The *input-extraction* expression: the local index of the gate's
    /// qubits inside `{t}.s` (e.g. `(T0.s & 1)`, `((T2.s >> 1) & 3)`).
    pub fn in_expr(&self, t: &str) -> String {
        let k = self.qubits.len();
        let local_mask = (1u64 << k) - 1;
        if self.contiguous_ascending() {
            let q0 = self.qubits[0];
            let mask_lit = self.literal(local_mask, || BigBits::from_u64(local_mask, 64));
            if q0 == 0 {
                format!("({t}.s & {mask_lit})")
            } else {
                format!("(({t}.s >> {q0}) & {mask_lit})")
            }
        } else {
            // Per-bit extraction: (((s >> qj) & 1) << j) OR-ed together.
            let parts: Vec<String> = self
                .qubits
                .iter()
                .enumerate()
                .map(|(j, &q)| {
                    let extract = if q == 0 {
                        format!("({t}.s & 1)")
                    } else {
                        format!("(({t}.s >> {q}) & 1)")
                    };
                    if j == 0 {
                        extract
                    } else {
                        format!("({extract} << {j})")
                    }
                })
                .collect();
            format!("({})", parts.join(" | "))
        }
    }

    /// The *bit-clearing* expression `({t}.s & ~mask)` — for `HUGEINT`, the
    /// complement is precomputed into a hex literal of the register's width.
    pub fn clear_expr(&self, t: &str) -> String {
        match self.encoding {
            StateEncoding::Int => {
                format!("({t}.s & ~{})", self.touched_mask_u64())
            }
            StateEncoding::Huge => {
                let mut mask = BigBits::zero(self.num_qubits);
                for &q in &self.qubits {
                    mask.set_bit(q, true);
                }
                format!("({t}.s & 0x{})", mask.not().to_hex())
            }
        }
    }

    /// The *output-placement* expression for the gate table's `out_s`
    /// (e.g. `H.out_s`, `(CX.out_s << 1)`).
    pub fn out_expr(&self, g: &str) -> String {
        self.place_expr(g, "out_s")
    }

    /// Like [`Self::out_expr`] but placing an arbitrary gate-table column
    /// (`in_s` or `out_s`) at this gate's qubit positions.
    fn place_expr(&self, g: &str, col: &str) -> String {
        if self.contiguous_ascending() {
            let q0 = self.qubits[0];
            if q0 == 0 {
                format!("{g}.{col}")
            } else {
                format!("({g}.{col} << {q0})")
            }
        } else {
            let parts: Vec<String> = self
                .qubits
                .iter()
                .enumerate()
                .map(|(j, &q)| {
                    let extract = if j == 0 {
                        format!("({g}.{col} & 1)")
                    } else {
                        format!("(({g}.{col} >> {j}) & 1)")
                    };
                    if q == 0 {
                        extract
                    } else {
                        format!("({extract} << {q})")
                    }
                })
                .collect();
            format!("({})", parts.join(" | "))
        }
    }

    /// The full new-state expression.
    ///
    /// * `INTEGER` encoding: `((T.s & ~mask) | out)` — Fig. 2c verbatim.
    /// * `HUGEINT` encoding: `((T.s ^ placed(in_s)) ^ placed(out_s))` — the
    ///   join guarantees `placed(in_s)` equals the touched bits of `s`, so
    ///   XOR clears then re-inserts them *without* an n-bit complement-mask
    ///   literal. This keeps generated SQL O(1) in the register width, which
    ///   is what makes the paper's thousands-of-qubits sparse experiment
    ///   practical to drive through SQL text.
    pub fn new_state_expr(&self, t: &str, g: &str) -> String {
        match self.encoding {
            StateEncoding::Int => format!("({} | {})", self.clear_expr(t), self.out_expr(g)),
            StateEncoding::Huge => format!(
                "(({t}.s ^ {}) ^ {})",
                self.place_expr(g, "in_s"),
                self.place_expr(g, "out_s")
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_q1_h_on_qubit0() {
        let m = GateMasks::new(&[0], 3);
        assert_eq!(m.in_expr("T0"), "(T0.s & 1)");
        assert_eq!(m.new_state_expr("T0", "H"), "((T0.s & ~1) | H.out_s)");
    }

    #[test]
    fn fig2_q2_cx_on_01() {
        let m = GateMasks::new(&[0, 1], 3);
        assert_eq!(m.in_expr("T1"), "(T1.s & 3)");
        assert_eq!(m.new_state_expr("T1", "CX"), "((T1.s & ~3) | CX.out_s)");
    }

    #[test]
    fn fig2_q3_cx_on_12() {
        let m = GateMasks::new(&[1, 2], 3);
        assert_eq!(m.in_expr("T2"), "((T2.s >> 1) & 3)");
        assert_eq!(
            m.new_state_expr("T2", "CX"),
            "((T2.s & ~6) | (CX.out_s << 1))"
        );
    }

    #[test]
    fn non_contiguous_qubits() {
        // CX with control 2, target 0 (listed [2, 0]): not contiguous.
        let m = GateMasks::new(&[2, 0], 4);
        let e = m.in_expr("T");
        assert!(e.contains("(T.s >> 2) & 1"), "{e}");
        assert!(e.contains("(T.s & 1) << 1"), "{e}");
        let o = m.out_expr("G");
        assert!(o.contains("(G.out_s & 1) << 2"), "{o}");
        assert_eq!(m.clear_expr("T"), "(T.s & ~5)");
    }

    #[test]
    fn descending_pair_is_non_contiguous() {
        let m = GateMasks::new(&[1, 0], 3);
        // [1, 0] must NOT be treated as contiguous-ascending.
        assert!(m.in_expr("T").contains("|"));
    }

    #[test]
    fn huge_encoding_uses_hex_complements() {
        let m = GateMasks::new(&[0], 100);
        assert_eq!(m.encoding(), StateEncoding::Huge);
        let c = m.clear_expr("T");
        assert!(c.starts_with("(T.s & 0x"), "{c}");
        // complement of bit 0 over 100 bits: ...fffe (25 hex digits)
        assert!(c.contains("fffe"), "{c}");
        assert_eq!(m.in_expr("T"), "(T.s & 0x1)");
    }

    #[test]
    fn huge_new_state_uses_xor_form() {
        // Wide registers avoid O(n)-sized complement literals entirely.
        let m = GateMasks::new(&[70, 71], 100_000);
        let e = m.new_state_expr("T", "G");
        assert_eq!(e, "((T.s ^ (G.in_s << 70)) ^ (G.out_s << 70))");
        assert!(e.len() < 64, "expression must be O(1) in register width");
        let m0 = GateMasks::new(&[0], 100_000);
        assert_eq!(m0.new_state_expr("T", "H"), "((T.s ^ H.in_s) ^ H.out_s)");
    }

    #[test]
    fn huge_high_qubit_shift() {
        let m = GateMasks::new(&[70, 71], 100);
        assert_eq!(m.in_expr("T"), "((T.s >> 70) & 0x3)");
        assert_eq!(m.out_expr("G"), "(G.out_s << 70)");
    }

    #[test]
    fn encoding_selection_boundary() {
        assert_eq!(StateEncoding::for_qubits(63), StateEncoding::Int);
        assert_eq!(StateEncoding::for_qubits(64), StateEncoding::Huge);
        assert_eq!(StateEncoding::Int.sql_type(), "INTEGER");
        assert_eq!(StateEncoding::Huge.sql_type(), "HUGEINT");
    }

    #[test]
    fn three_qubit_contiguous() {
        let m = GateMasks::new(&[2, 3, 4], 8);
        assert_eq!(m.in_expr("T"), "((T.s >> 2) & 7)");
        assert_eq!(m.clear_expr("T"), "(T.s & ~28)");
        assert_eq!(m.out_expr("G"), "(G.out_s << 2)");
    }
}
