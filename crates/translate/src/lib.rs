//! # qymera-translate
//!
//! The Translation Layer of the Qymera reproduction (§2 and §3.2 of the
//! paper): quantum states become tables `T(s, r, i)`, gates become tables
//! `G(in_s, out_s, r, i)`, and each gate application becomes a
//! `JOIN … GROUP BY` with bitwise index arithmetic, chained through CTEs.
//! [`SqlSimulator`] executes the generated SQL on the embedded engine in
//! `qymera-sqldb` and implements the common `Simulator` trait.

#![warn(missing_docs)]

pub mod fusion;
pub mod masks;
pub mod measure;
pub mod runner;
pub mod sqlgen;
pub mod tables;

pub use masks::{GateMasks, StateEncoding};
pub use qymera_sqldb::CancelHandle;
pub use runner::{ExecMode, SqlAmplitude, SqlRunResult, SqlSimConfig, SqlSimulator};
pub use sqlgen::{circuit_query, gate_select, SqlGenConfig};
pub use tables::{GateOp, GateTableRegistry};
