//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote` in the
//! offline environment). Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields;
//! * enums with only unit variants (serialized as strings);
//! * `#[serde(untagged)]` enums with single-field tuple variants and/or
//!   struct variants;
//!
//! and the attributes `rename_all = "lowercase"`, `untagged`, `default`,
//! `skip`, `skip_serializing_if = "path"`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- model -----------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Attr {
    RenameAllLowercase,
    Untagged,
    Default,
    Skip,
    SkipSerializingIf(String),
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: Vec<Attr>,
}

#[derive(Debug)]
enum VariantData {
    Unit,
    /// Single-field tuple variant; the payload is the type's token text.
    Tuple(String),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    data: VariantData,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    attrs: Vec<Attr>,
    kind: ItemKind,
}

impl Item {
    fn has(&self, a: &Attr) -> bool {
        self.attrs.contains(a)
    }
}

// ---- parsing ---------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_ident(&mut self, expected: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == expected {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected identifier, found {other:?}"),
        }
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consume leading `#[...]` attributes, returning the serde ones.
    fn parse_attrs(&mut self) -> Vec<Attr> {
        let mut out = Vec::new();
        loop {
            let is_attr = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_attr {
                return out;
            }
            self.pos += 1; // '#'
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("serde derive: malformed attribute");
            };
            let mut inner = Cursor::new(g.stream());
            if !inner.eat_ident("serde") {
                continue; // doc comment or foreign attribute
            }
            let Some(TokenTree::Group(args)) = inner.next() else {
                continue;
            };
            let mut args = Cursor::new(args.stream());
            while let Some(TokenTree::Ident(key)) = args.next() {
                let key = key.to_string();
                let value = if args.eat_punct('=') {
                    match args.next() {
                        Some(TokenTree::Literal(l)) => {
                            Some(l.to_string().trim_matches('"').to_string())
                        }
                        other => panic!("serde derive: expected literal, found {other:?}"),
                    }
                } else {
                    None
                };
                match (key.as_str(), value) {
                    ("rename_all", Some(v)) if v == "lowercase" => {
                        out.push(Attr::RenameAllLowercase)
                    }
                    ("rename_all", Some(v)) => {
                        panic!("serde derive: unsupported rename_all = {v:?}")
                    }
                    ("untagged", None) => out.push(Attr::Untagged),
                    ("default", None) => out.push(Attr::Default),
                    ("skip", None) => out.push(Attr::Skip),
                    ("skip_serializing_if", Some(path)) => {
                        out.push(Attr::SkipSerializingIf(path))
                    }
                    (k, _) => panic!("serde derive: unsupported attribute `{k}`"),
                }
                args.eat_punct(',');
            }
        }
    }

    /// Consume `pub` / `pub(...)` if present.
    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consume type tokens until a top-level `,` or the end of the stream.
    fn parse_type_text(&mut self) -> String {
        let mut text = String::new();
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    break;
                }
            }
            text.push_str(&t.to_string());
            text.push(' ');
            self.pos += 1;
        }
        text
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = cur.parse_attrs();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident();
        assert!(cur.eat_punct(':'), "serde derive: expected `:` after field `{name}`");
        cur.parse_type_text();
        cur.eat_punct(',');
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let attrs = cur.parse_attrs();
    cur.skip_visibility();
    let is_enum = if cur.eat_ident("struct") {
        false
    } else if cur.eat_ident("enum") {
        true
    } else {
        panic!("serde derive: only structs and enums are supported");
    };
    let name = cur.expect_ident();
    let Some(TokenTree::Group(body)) = cur.next() else {
        panic!("serde derive: generics/tuple structs are not supported");
    };
    assert!(
        body.delimiter() == Delimiter::Brace,
        "serde derive: expected a brace-delimited body"
    );

    let kind = if is_enum {
        let mut vcur = Cursor::new(body.stream());
        let mut variants = Vec::new();
        while vcur.peek().is_some() {
            let _vattrs = vcur.parse_attrs();
            if vcur.peek().is_none() {
                break;
            }
            let vname = vcur.expect_ident();
            let data = match vcur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let mut tcur = Cursor::new(g.stream());
                    let ty = tcur.parse_type_text();
                    assert!(
                        tcur.peek().is_none(),
                        "serde derive: only single-field tuple variants are supported"
                    );
                    vcur.pos += 1;
                    VariantData::Tuple(ty)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    vcur.pos += 1;
                    VariantData::Struct(fields)
                }
                _ => VariantData::Unit,
            };
            vcur.eat_punct(',');
            variants.push(Variant { name: vname, data });
        }
        ItemKind::Enum(variants)
    } else {
        ItemKind::Struct(parse_named_fields(body.stream()))
    };

    Item { name, attrs, kind }
}

// ---- codegen helpers -------------------------------------------------------

fn variant_tag(item: &Item, variant: &str) -> String {
    if item.has(&Attr::RenameAllLowercase) {
        variant.to_lowercase()
    } else {
        variant.to_string()
    }
}

fn field_skipped(f: &Field) -> bool {
    f.attrs.contains(&Attr::Skip)
}

fn field_has_default(f: &Field) -> bool {
    f.attrs.contains(&Attr::Default) || field_skipped(f)
}

fn serialize_fields_body(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        if field_skipped(f) {
            continue;
        }
        let access = format!("{}{}", access_prefix, f.name);
        let push = format!(
            "__fields.push((::std::string::String::from(\"{0}\"), \
             ::serde::Serialize::to_value(&{1})));\n",
            f.name, access
        );
        if let Some(Attr::SkipSerializingIf(path)) =
            f.attrs.iter().find(|a| matches!(a, Attr::SkipSerializingIf(_)))
        {
            out.push_str(&format!("if !{path}(&{access}) {{ {push} }}\n"));
        } else {
            out.push_str(&push);
        }
    }
    out.push_str("::serde::Value::Object(__fields)\n");
    out
}

fn deserialize_fields_ctor(type_path: &str, fields: &[Field]) -> String {
    let mut out = format!("::std::result::Result::Ok({type_path} {{\n");
    for f in fields {
        if field_skipped(f) {
            out.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
            continue;
        }
        let fallback = if field_has_default(f) {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::std::string::String::from(\
                 \"missing field `{}`\"))",
                f.name
            )
        };
        out.push_str(&format!(
            "{0}: match ::serde::find(__obj, \"{0}\") {{ \
             ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, \
             ::std::option::Option::None => {1}, }},\n",
            f.name, fallback
        ));
    }
    out.push_str("})\n");
    out
}

// ---- derives ---------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => serialize_fields_body(fields, "self."),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.data {
                    VariantData::Unit => {
                        let tag = variant_tag(&item, &v.name);
                        if item.has(&Attr::Untagged) {
                            arms.push_str(&format!(
                                "{name}::{0} => ::serde::Value::Null,\n",
                                v.name
                            ));
                        } else {
                            arms.push_str(&format!(
                                "{name}::{0} => \
                                 ::serde::Value::Str(::std::string::String::from(\"{tag}\")),\n",
                                v.name
                            ));
                        }
                    }
                    VariantData::Tuple(_) => {
                        assert!(
                            item.has(&Attr::Untagged),
                            "serde derive: tuple variants require #[serde(untagged)]"
                        );
                        arms.push_str(&format!(
                            "{name}::{0}(__x) => ::serde::Serialize::to_value(__x),\n",
                            v.name
                        ));
                    }
                    VariantData::Struct(fields) => {
                        assert!(
                            item.has(&Attr::Untagged),
                            "serde derive: struct variants require #[serde(untagged)]"
                        );
                        let pattern: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let body = serialize_fields_body(fields, "*");
                        arms.push_str(&format!(
                            "{name}::{0} {{ {1} }} => {{ {body} }},\n",
                            v.name,
                            pattern.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("serde derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => format!(
            "let __obj = __v.as_object().ok_or_else(|| \
             ::std::format!(\"expected object for `{name}`\"))?;\n{}",
            deserialize_fields_ctor(name, fields)
        ),
        ItemKind::Enum(variants) if item.has(&Attr::Untagged) => {
            let mut attempts = String::new();
            for v in variants {
                match &v.data {
                    VariantData::Unit => {
                        attempts.push_str(&format!(
                            "if __v.is_null() {{ \
                             return ::std::result::Result::Ok({name}::{0}); }}\n",
                            v.name
                        ));
                    }
                    VariantData::Tuple(ty) => {
                        attempts.push_str(&format!(
                            "if let ::std::result::Result::Ok(__x) = \
                             <{ty} as ::serde::Deserialize>::from_value(__v) {{ \
                             return ::std::result::Result::Ok({name}::{0}(__x)); }}\n",
                            v.name
                        ));
                    }
                    VariantData::Struct(fields) => {
                        let ctor = deserialize_fields_ctor(&format!("{name}::{}", v.name), fields);
                        attempts.push_str(&format!(
                            "if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
                             let __try = (|| -> ::std::result::Result<{name}, \
                             ::std::string::String> {{ {ctor} }})();\n\
                             if let ::std::result::Result::Ok(__x) = __try {{ \
                             return ::std::result::Result::Ok(__x); }}\n}}\n",
                        ));
                    }
                }
            }
            format!(
                "{attempts}\n::std::result::Result::Err(\
                 ::std::format!(\"no variant of `{name}` matched\"))"
            )
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                assert!(
                    matches!(v.data, VariantData::Unit),
                    "serde derive: data-carrying variants require #[serde(untagged)]"
                );
                let tag = variant_tag(&item, &v.name);
                arms.push_str(&format!(
                    "\"{tag}\" => ::std::result::Result::Ok({name}::{0}),\n",
                    v.name
                ));
            }
            format!(
                "let __s = __v.as_str().ok_or_else(|| \
                 ::std::format!(\"expected string for `{name}`\"))?;\n\
                 match __s {{\n{arms}\
                 __other => ::std::result::Result::Err(\
                 ::std::format!(\"unknown variant `{{__other}}` of `{name}`\")),\n}}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<{name}, ::std::string::String> {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("serde derive: generated invalid Deserialize impl")
}
