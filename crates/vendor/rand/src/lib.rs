//! Offline stand-in for the `rand` crate: `StdRng` + `Rng`/`SeedableRng`
//! with the `gen_range` surface the workspace uses. The generator is
//! SplitMix64 — statistically fine for test/bench workloads, not
//! cryptographic. (No network access, so no registry crates.)

use std::ops::{Range, RangeInclusive};

/// Core generator: a stream of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let addr = &now as *const _ as u64;
        Self::seed_from_u64(now ^ addr.rotate_left(32))
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample<G: RngCore>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + x) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let x = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + x) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<G: RngCore>(self, rng: &mut G) -> f32 {
        (Range { start: self.start as f64, end: self.end as f64 }).sample(rng) as f32
    }
}

/// The standard seedable generator (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0..4);
            assert!((0..4).contains(&i));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
