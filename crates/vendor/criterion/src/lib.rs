//! Offline stand-in for `criterion`: same macro/builder surface, simple
//! wall-clock measurement (median of timed iterations printed to stdout).
//! Good enough to track relative perf trajectories without the registry.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per benchmark measurement.
const TARGET: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 10_000_000;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, f);
        self
    }

    /// Upstream parses CLI filters here; the stand-in runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// Identifier for parameterized benchmarks (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Hint for per-iteration setup cost; ignored by the stand-in.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.into_bench_id()), f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Both `&str` names and [`BenchmarkId`]s are accepted as bench identifiers.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    /// (iterations, elapsed) recorded by the `iter*` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and estimate a single-iteration cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((iters, start.elapsed()));
    }

    pub fn iter_batched<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        let mut spent = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
        }
        let _ = start;
        self.result = Some((iters, spent));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { result: None };
    f(&mut b);
    match b.result {
        Some((iters, elapsed)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("bench {name:<48} {:>14} ns/iter  ({iters} iters)", format_ns(per_iter));
        }
        None => println!("bench {name:<48} (no measurement)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1000.0 {
        format!("{:.1}", ns)
    } else {
        format!("{ns:.2}")
    }
}

/// Declare a group of benchmark functions, mirroring upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
