//! Offline stand-in for the `bytes` crate: just enough of the
//! `BytesMut`/`Bytes` + `Buf`/`BufMut` surface for the spill-file codec.
//! (The container image has no network access and no vendored registry, so
//! the workspace ships a minimal local implementation.)

use std::ops::Deref;

/// Growable byte buffer (append-only).
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Default, Clone)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// Write-side trait (little-endian putters used by the spill codec).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

/// Read-side trait. Getters panic on underflow, matching upstream `bytes`.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = self.data[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Bytes::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u32_le(0xdead_beef);
        w.put_i64_le(-42);
        w.put_f64_le(1.5);
        w.put_slice(b"xyz");
        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"xyz");
        assert!(r.is_empty());
    }
}
