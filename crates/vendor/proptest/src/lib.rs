//! Offline stand-in for `proptest`: the `proptest!` macro over simple
//! random-sampling strategies. No shrinking — failures report the sampled
//! inputs via the assertion message instead.

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (SplitMix64); each test gets a fixed seed so runs
/// are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// `any::<T>()` — the full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64() * 2e6 - 1e6
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 16 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $($rest:tt)*)?) => {
        assert!($cond $(, $($rest)*)?)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($rest:tt)*)?) => {
        assert_eq!($a, $b $(, $($rest)*)?)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($rest:tt)*)?) => {
        assert_ne!($a, $b $(, $($rest)*)?)
    };
}

/// Skip the current case when its sampled inputs don't satisfy a
/// precondition. Expands to an early `Err` return inside the per-case
/// closure generated by [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

/// The test-declaration macro. Each declared test runs `config.cases`
/// sampled cases with a per-test deterministic seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (@tests ($cfg:expr) $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Seed from the test name so cases differ across tests but
                // stay reproducible across runs.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                    });
                let mut rng = $crate::TestRng::new(seed);
                for _case in 0..config.cases {
                    #[allow(clippy::redundant_closure_call)]
                    let _ = (|| -> ::std::result::Result<(), ()> {
                        $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, u64)> {
        (1usize..=4, any::<u64>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 2usize..=5, x in 0usize..12, f in -1.5f64..1.5) {
            prop_assert!((2..=5).contains(&n));
            prop_assert!(x < 12);
            prop_assert!((-1.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_and_assume((a, _b) in pair(), v in collection::vec(0usize..3, 1..4)) {
            prop_assume!(a != 1);
            prop_assert!(a >= 2);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(v.iter().filter(|&&x| x > 2).count(), 0);
        }
    }
}
