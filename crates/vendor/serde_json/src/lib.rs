//! Offline stand-in for `serde_json`: JSON text encoding/decoding over the
//! [`serde::Value`] data model of the companion offline `serde` crate.

use std::fmt;

use serde::{Deserialize, Number, Serialize, Value};

/// Encoding/decoding error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Object(fields) => {
            write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1)
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        // Integer lanes print exactly — all 64 bits survive the round trip.
        Number::Int(i) => out.push_str(&format!("{i}")),
        Number::UInt(u) => out.push_str(&format!("{u}")),
        Number::Float(f) if !f.is_finite() => out.push_str("null"), // JSON has no NaN/inf
        // `{:?}` is Rust's shortest round-trip float form, valid JSON here;
        // it always keeps a `.0` or exponent, so floats re-parse as floats.
        Number::Float(f) => out.push_str(&format!("{f:?}")),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let mut code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // UTF-16 surrogate pair: \uD800-\uDBFF must be
                            // followed by \uDC00-\uDFFF; combine them.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos + 3..self.pos + 7)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| self.err("invalid \\u escape"))?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                code = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low - 0xDC00);
                                self.pos += 6;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Integer-looking text (no fraction/exponent) stays on the exact
        // integer lanes; i64 first, then u64 for values above i64::MAX.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_pairs_decode() {
        // A non-BMP char as real serde_json emits it: \uD83D\uDE00 = 😀.
        let v = parse_value(r#""\uD83D\uDE00""#).unwrap();
        assert_eq!(v, Value::Str("\u{1F600}".into()));
        assert!(parse_value(r#""\uD83D""#).is_err(), "unpaired high surrogate");
        assert!(parse_value(r#""\uD83Dx""#).is_err(), "high surrogate + garbage");
        assert!(parse_value(r#""\uDE00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn round_trip_value() {
        let text = r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": null, "d": true}"#;
        let v = parse_value(text).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        let v = Value::Num(Number::Float(0.123456789012345));
        let text = to_string(&v).unwrap();
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        // 2⁶² + 1 is not representable in f64; it must survive untouched.
        let big = (1i64 << 62) + 1;
        let text = to_string(&big).unwrap();
        assert_eq!(text, "4611686018427387905");
        let back: i64 = from_str(&text).unwrap();
        assert_eq!(back, big);
        // Negative end of the range and u64 above i64::MAX.
        let back: i64 = from_str(&to_string(&i64::MIN).unwrap()).unwrap();
        assert_eq!(back, i64::MIN);
        let huge = u64::MAX - 1;
        let back: u64 = from_str(&to_string(&huge).unwrap()).unwrap();
        assert_eq!(back, huge);
    }

    #[test]
    fn integral_floats_stay_floats() {
        // A float that happens to be integral must not silently become an
        // integer on the wire (type fidelity across the round trip).
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(parse_value("2.0").unwrap(), Value::Num(Number::Float(2.0)));
        assert_eq!(parse_value("2").unwrap(), Value::Num(Number::Int(2)));
        assert_eq!(parse_value("1e3").unwrap(), Value::Num(Number::Float(1000.0)));
    }

    #[test]
    fn out_of_range_deserialization_errors() {
        let e = from_str::<u8>("300");
        assert!(e.is_err(), "{e:?}");
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<i64>("1.5").is_err());
        // Float-lane integers get the same range check as the int lanes:
        // no silent saturation for "3e2" where "300" would error.
        assert!(from_str::<u8>("3e2").is_err());
        assert!(from_str::<u64>("-1.0").is_err());
        assert_eq!(from_str::<u16>("3e2").unwrap(), 300);
        assert_eq!(from_str::<i64>("1e18").unwrap(), 1_000_000_000_000_000_000);
        // u128 above u64::MAX travels on the float lane (lossily, as f64)
        // but must still round-trip to the nearest representable value
        // rather than erroring.
        let huge = 1u128 << 127;
        let back: u128 = from_str(&to_string(&huge).unwrap()).unwrap();
        assert_eq!(back, huge);
        assert!(from_str::<u64>(&to_string(&huge).unwrap()).is_err());
    }

    #[test]
    fn errors_carry_position() {
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("[1] extra").is_err());
    }
}
