//! Offline stand-in for `serde`: a JSON-value data model with
//! `Serialize`/`Deserialize` traits and derive macros covering the subset of
//! attributes this workspace uses (`rename_all = "lowercase"`, `untagged`,
//! `default`, `skip`, `skip_serializing_if`). The companion `serde_json`
//! crate provides text encoding/decoding over [`Value`].

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number, preserving integer identity.
///
/// Routing every number through `f64` silently corrupts integers with
/// magnitude ≥ 2⁵³ (e.g. 64-bit basis-state indices in benchmark exports),
/// so the data model keeps three lanes like real `serde_json`: signed and
/// unsigned integers round-trip exactly; only genuine floats use `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer (anything that fits `i64`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (integers convert, possibly lossily ≥ 2⁵³).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `i64`, if integral and in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::UInt(u) => i64::try_from(u).ok(),
            // Exact bounds: ±2⁶³ are representable f64s, and any integral
            // f64 inside them converts exactly.
            Number::Float(f)
                if f.fract() == 0.0 && (-(2f64.powi(63))..2f64.powi(63)).contains(&f) =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `u64`, if integral, non-negative, and in range.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::Int(i) => u64::try_from(i).ok(),
            Number::UInt(u) => Some(u),
            Number::Float(f) if f.fract() == 0.0 && (0.0..2f64.powi(64)).contains(&f) => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }
}

/// The in-memory JSON data model all (de)serialization goes through.
/// Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Number),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as an exact `i64`, when it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as an exact `u64`, when it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Look up a key in an object's field list (helper for derived code).
pub fn find<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // Integer-preserving: prefer the exact integer lanes; only
                // magnitudes beyond u64 (possible for i128/u128) degrade to
                // the float lane.
                let v = *self;
                match i64::try_from(v) {
                    Ok(i) => Value::Num(Number::Int(i)),
                    Err(_) => match u64::try_from(v) {
                        Ok(u) => Value::Num(Number::UInt(u)),
                        Err(_) => Value::Num(Number::Float(v as f64)),
                    },
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let Value::Num(n) = v else {
                    return Err(format!("expected number, found {}", v.type_name()));
                };
                match *n {
                    Number::Int(i) => <$t>::try_from(i)
                        .map_err(|_| format!("integer {i} out of range")),
                    Number::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| format!("integer {u} out of range")),
                    Number::Float(f) => {
                        if f.fract() != 0.0 {
                            return Err(format!("expected integer, found {f}"));
                        }
                        // Range-check through u128/i128 (exact for any
                        // integral f64 in range) instead of a saturating
                        // cast, so "3e2" errors for u8 exactly like "300"
                        // does. Positive values route through u128 to keep
                        // the top half of u128's range reachable.
                        if (0.0..2f64.powi(128)).contains(&f) {
                            <$t>::try_from(f as u128)
                                .map_err(|_| format!("integer {f} out of range"))
                        } else if (-(2f64.powi(127))..0.0).contains(&f) {
                            <$t>::try_from(f as i128)
                                .map_err(|_| format!("integer {f} out of range"))
                        } else {
                            Err(format!("integer {f} out of range"))
                        }
                    }
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| format!("expected number, found {}", v.type_name()))
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected boolean, found {}", v.type_name()))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, found {}", v.type_name()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, found {}", v.type_name()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}
