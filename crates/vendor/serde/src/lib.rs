//! Offline stand-in for `serde`: a JSON-value data model with
//! `Serialize`/`Deserialize` traits and derive macros covering the subset of
//! attributes this workspace uses (`rename_all = "lowercase"`, `untagged`,
//! `default`, `skip`, `skip_serializing_if`). The companion `serde_json`
//! crate provides text encoding/decoding over [`Value`].

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory JSON data model all (de)serialization goes through.
/// Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Look up a key in an object's field list (helper for derived code).
pub fn find<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let n = v.as_f64().ok_or_else(|| {
                    format!("expected number, found {}", v.type_name())
                })?;
                if n.fract() != 0.0 {
                    return Err(format!("expected integer, found {n}"));
                }
                Ok(n as $t)
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| format!("expected number, found {}", v.type_name()))
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected boolean, found {}", v.type_name()))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, found {}", v.type_name()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, found {}", v.type_name()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}
