//! Query planning: AST → bound logical plan.
//!
//! The planner resolves names bottom-up, rewrites aggregate queries into an
//! explicit `Aggregate` node (replacing `GROUP BY`-matching subtrees and
//! aggregate calls in the projection/`HAVING` with column references), and
//! produces a tree of [`Plan`] nodes carrying [`BoundExpr`]s that the
//! executor can run directly.

use std::collections::HashMap;

use crate::ast::{
    self, Expr, JoinKind, OrderItem, Query, Select, SelectItem, SetExpr, TableRef,
};
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::expr::{bind, BoundExpr};
use crate::schema::{Field, RelSchema};

/// Aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Count,
    /// `COUNT(*)` — counts rows, not non-null values.
    CountStar,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    fn from_call(name: &str, args: &[Expr]) -> Result<(AggFunc, Option<Expr>)> {
        let upper = name.to_ascii_uppercase();
        match (upper.as_str(), args) {
            ("COUNT", [Expr::Star]) => Ok((AggFunc::CountStar, None)),
            ("COUNT", [a]) => Ok((AggFunc::Count, Some(a.clone()))),
            ("SUM", [a]) => Ok((AggFunc::Sum, Some(a.clone()))),
            ("MIN", [a]) => Ok((AggFunc::Min, Some(a.clone()))),
            ("MAX", [a]) => Ok((AggFunc::Max, Some(a.clone()))),
            ("AVG", [a]) => Ok((AggFunc::Avg, Some(a.clone()))),
            _ => Err(Error::Plan(format!(
                "wrong number of arguments to aggregate `{name}`"
            ))),
        }
    }
}

/// One aggregate computation inside an `Aggregate` node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    /// `None` only for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
    pub distinct: bool,
}

/// Sort key bound against the input schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: BoundExpr,
    pub desc: bool,
}

/// Bound logical plan. Every node knows its output schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Base table scan (snapshot taken at execution time).
    Scan { table: String, schema: RelSchema },
    /// Produces exactly one zero-column row (`SELECT` without `FROM`).
    One,
    Filter { input: Box<Plan>, predicate: BoundExpr },
    Project { input: Box<Plan>, exprs: Vec<BoundExpr>, schema: RelSchema },
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinKind,
        on: Option<BoundExpr>,
        schema: RelSchema,
    },
    Aggregate {
        input: Box<Plan>,
        group_by: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        schema: RelSchema,
    },
    Sort { input: Box<Plan>, keys: Vec<SortKey> },
    Limit { input: Box<Plan>, limit: Option<u64>, offset: u64 },
    UnionAll { inputs: Vec<Plan> },
    /// Renames the qualifier of the input's columns (subquery/CTE alias).
    Alias { input: Box<Plan>, schema: RelSchema },
}

impl Plan {
    /// Output schema of this node.
    pub fn schema(&self) -> RelSchema {
        match self {
            Plan::Scan { schema, .. }
            | Plan::Project { schema, .. }
            | Plan::Join { schema, .. }
            | Plan::Aggregate { schema, .. }
            | Plan::Alias { schema, .. } => schema.clone(),
            Plan::One => RelSchema::default(),
            Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.schema(),
            Plan::UnionAll { inputs } => inputs[0].schema(),
        }
    }

    /// Height of the plan tree. The translator emits one CTE per gate, so
    /// this is unbounded; the executor uses it to decide whether the pull
    /// pipeline needs a dedicated large execution stack.
    pub fn depth(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } | Plan::One => 0,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Alias { input, .. } => input.depth(),
            Plan::Join { left, right, .. } => left.depth().max(right.depth()),
            Plan::UnionAll { inputs } => {
                inputs.iter().map(Plan::depth).max().unwrap_or(0)
            }
        }
    }

    /// Render as an indented plan tree (for debugging / EXPLAIN-style output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = match self {
            Plan::Scan { table, .. } => format!("Scan {table}"),
            Plan::One => "One".to_string(),
            Plan::Filter { .. } => "Filter".to_string(),
            Plan::Project { exprs, .. } => format!("Project [{} exprs]", exprs.len()),
            Plan::Join { kind, on, .. } => {
                format!("Join {kind:?}{}", if on.is_some() { " on" } else { "" })
            }
            Plan::Aggregate { group_by, aggs, .. } => {
                format!("Aggregate [{} keys, {} aggs]", group_by.len(), aggs.len())
            }
            Plan::Sort { keys, .. } => format!("Sort [{} keys]", keys.len()),
            Plan::Limit { limit, offset, .. } => format!("Limit {limit:?} offset {offset}"),
            Plan::UnionAll { inputs } => format!("UnionAll [{}]", inputs.len()),
            Plan::Alias { .. } => "Alias".to_string(),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        match self {
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Alias { input, .. } => input.explain_into(depth + 1, out),
            Plan::Join { left, right, .. } => {
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            Plan::UnionAll { inputs } => {
                for i in inputs {
                    i.explain_into(depth + 1, out);
                }
            }
            _ => {}
        }
    }
}

/// CTE scope: name → already-planned subquery.
type CteScope = HashMap<String, Plan>;

/// Plan a full query against the catalog.
pub fn plan_query(query: &Query, catalog: &Catalog) -> Result<Plan> {
    let scope = CteScope::new();
    plan_query_scoped(query, catalog, &scope)
}

fn plan_query_scoped(query: &Query, catalog: &Catalog, outer: &CteScope) -> Result<Plan> {
    let mut scope = outer.clone();
    for (name, cte_query) in &query.ctes {
        let key = name.to_ascii_lowercase();
        if scope.contains_key(&key) && query.ctes.iter().any(|(n, _)| n.eq_ignore_ascii_case(name))
        {
            // Allow shadowing of outer CTEs but not duplicates in this WITH.
        }
        let plan = plan_query_scoped(cte_query, catalog, &scope)?;
        // Make the CTE addressable by its name.
        let schema = plan.schema().with_relation(name);
        let plan = Plan::Alias { input: Box::new(plan), schema };
        if scope.insert(key, plan).is_some()
            && query.ctes.iter().filter(|(n, _)| n.eq_ignore_ascii_case(name)).count() > 1
        {
            return Err(Error::Plan(format!("duplicate CTE name `{name}`")));
        }
    }

    let mut plan = plan_set_expr(&query.body, catalog, &scope)?;

    if !query.order_by.is_empty() {
        let schema = plan.schema();
        let keys = query
            .order_by
            .iter()
            .map(|item| bind_order_item(item, &schema))
            .collect::<Result<Vec<_>>>()?;
        plan = Plan::Sort { input: Box::new(plan), keys };
    }
    if query.limit.is_some() || query.offset.is_some() {
        plan = Plan::Limit {
            input: Box::new(plan),
            limit: query.limit,
            offset: query.offset.unwrap_or(0),
        };
    }
    Ok(plan)
}

/// ORDER BY items may be output-column references, arbitrary expressions over
/// the output schema, or 1-based ordinals (`ORDER BY 2`).
fn bind_order_item(item: &OrderItem, schema: &RelSchema) -> Result<SortKey> {
    if let Expr::Literal(ast::Literal::Int(n)) = &item.expr {
        let idx = *n;
        if idx < 1 || idx as usize > schema.len() {
            return Err(Error::Plan(format!("ORDER BY ordinal {idx} out of range")));
        }
        return Ok(SortKey { expr: BoundExpr::Column(idx as usize - 1), desc: item.desc });
    }
    match bind(&item.expr, schema) {
        Ok(expr) => Ok(SortKey { expr, desc: item.desc }),
        Err(first_err) => {
            // Projection output columns are unqualified; allow `t.col` to
            // fall back to the bare output name `col` (standard SQL permits
            // ordering by input columns that survive the projection).
            if let Expr::Column { table: Some(_), name } = &item.expr {
                if let Ok(idx) = schema.resolve(None, name) {
                    return Ok(SortKey { expr: BoundExpr::Column(idx), desc: item.desc });
                }
            }
            Err(first_err)
        }
    }
}

fn plan_set_expr(body: &SetExpr, catalog: &Catalog, scope: &CteScope) -> Result<Plan> {
    match body {
        SetExpr::Select(select) => plan_select(select, catalog, scope),
        SetExpr::UnionAll(left, right) => {
            let l = plan_set_expr(left, catalog, scope)?;
            let r = plan_set_expr(right, catalog, scope)?;
            if l.schema().len() != r.schema().len() {
                return Err(Error::Plan(format!(
                    "UNION ALL arity mismatch: {} vs {} columns",
                    l.schema().len(),
                    r.schema().len()
                )));
            }
            // Flatten nested unions for cheaper execution.
            let mut inputs = Vec::new();
            for side in [l, r] {
                match side {
                    Plan::UnionAll { inputs: nested } => inputs.extend(nested),
                    other => inputs.push(other),
                }
            }
            Ok(Plan::UnionAll { inputs })
        }
    }
}

fn plan_table_ref(tref: &TableRef, catalog: &Catalog, scope: &CteScope) -> Result<Plan> {
    match tref {
        TableRef::Named { name, alias } => {
            // CTEs shadow base tables.
            if let Some(cte) = scope.get(&name.to_ascii_lowercase()) {
                let plan = cte.clone();
                return Ok(match alias {
                    Some(a) => {
                        let schema = plan.schema().with_relation(a);
                        Plan::Alias { input: Box::new(plan), schema }
                    }
                    None => plan,
                });
            }
            let table = catalog.get(name)?;
            let mut schema = table.schema();
            if let Some(a) = alias {
                schema = schema.with_relation(a);
            }
            Ok(Plan::Scan { table: table.name().to_string(), schema })
        }
        TableRef::Subquery { query, alias } => {
            let plan = plan_query_scoped(query, catalog, scope)?;
            let schema = plan.schema().with_relation(alias);
            Ok(Plan::Alias { input: Box::new(plan), schema })
        }
    }
}

fn plan_select(select: &Select, catalog: &Catalog, scope: &CteScope) -> Result<Plan> {
    // FROM and JOINs.
    let mut plan = match &select.from {
        Some(tref) => plan_table_ref(tref, catalog, scope)?,
        None => Plan::One,
    };
    for join in &select.joins {
        let right = plan_table_ref(&join.table, catalog, scope)?;
        if join.kind == JoinKind::Right {
            // RIGHT JOIN ≡ LEFT JOIN with the inputs swapped, followed by a
            // projection that restores the written column order. Rewriting
            // here means neither executor needs a right-outer operator, and
            // the batch hash join's left-outer machinery covers both
            // directions.
            let left_schema = plan.schema();
            let right_schema = right.schema();
            let (llen, rlen) = (left_schema.len(), right_schema.len());
            // Bind the ON condition against the *swapped* input order; names
            // resolve by qualifier, so indices land in the swapped layout.
            let swapped_schema = right_schema.join(&left_schema);
            let on = match &join.on {
                Some(e) => Some(bind(e, &swapped_schema)?),
                None => None,
            };
            let swapped = Plan::Join {
                left: Box::new(right),
                right: Box::new(plan),
                kind: JoinKind::Left,
                on,
                schema: swapped_schema,
            };
            let exprs: Vec<BoundExpr> = (rlen..rlen + llen)
                .chain(0..rlen)
                .map(BoundExpr::Column)
                .collect();
            plan = Plan::Project {
                input: Box::new(swapped),
                exprs,
                schema: left_schema.join(&right_schema),
            };
            continue;
        }
        let schema = plan.schema().join(&right.schema());
        let on = match &join.on {
            Some(e) => Some(bind(e, &schema)?),
            None => None,
        };
        plan = Plan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            kind: join.kind,
            on,
            schema,
        };
    }

    // WHERE.
    if let Some(w) = &select.where_clause {
        if w.contains_aggregate() {
            return Err(Error::Plan("aggregates are not allowed in WHERE".into()));
        }
        let predicate = bind(w, &plan.schema())?;
        plan = Plan::Filter { input: Box::new(plan), predicate };
    }

    // Expand wildcards in the projection.
    let input_schema = plan.schema();
    let mut items: Vec<(Expr, Option<String>)> = Vec::new();
    for item in &select.projection {
        match item {
            SelectItem::Wildcard => {
                for f in &input_schema.fields {
                    items.push((
                        Expr::Column { table: f.relation.clone(), name: f.name.clone() },
                        Some(f.name.clone()),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(rel) => {
                let idxs = input_schema.relation_indices(rel);
                if idxs.is_empty() {
                    return Err(Error::Plan(format!("unknown relation `{rel}` in `{rel}.*`")));
                }
                for i in idxs {
                    let f = &input_schema.fields[i];
                    items.push((
                        Expr::Column { table: f.relation.clone(), name: f.name.clone() },
                        Some(f.name.clone()),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => items.push((expr.clone(), alias.clone())),
        }
    }

    let has_aggs = !select.group_by.is_empty()
        || items.iter().any(|(e, _)| e.contains_aggregate())
        || select.having.as_ref().is_some_and(Expr::contains_aggregate);

    let (mut plan, proj_exprs, proj_schema) = if has_aggs {
        plan_aggregate(plan, select, &items, &input_schema)?
    } else {
        if select.having.is_some() {
            return Err(Error::Plan("HAVING requires GROUP BY or aggregates".into()));
        }
        let mut exprs = Vec::with_capacity(items.len());
        let mut fields = Vec::with_capacity(items.len());
        for (e, alias) in &items {
            exprs.push(bind(e, &input_schema)?);
            fields.push(Field::new(None, &output_name(e, alias)));
        }
        (plan, exprs, RelSchema::new(fields))
    };

    plan = Plan::Project { input: Box::new(plan), exprs: proj_exprs, schema: proj_schema };

    if select.distinct {
        // DISTINCT ≡ GROUP BY all output columns with no aggregates; this
        // reuses the aggregation operator's spill machinery for free.
        let schema = plan.schema();
        let group_by = (0..schema.len()).map(BoundExpr::Column).collect();
        plan = Plan::Aggregate { input: Box::new(plan), group_by, aggs: vec![], schema };
    }

    Ok(plan)
}

/// Build the `Aggregate` node and rewrite projection/`HAVING` over its output.
///
/// Returns (plan including any HAVING filter, projection exprs, projection
/// schema).
fn plan_aggregate(
    input: Plan,
    select: &Select,
    items: &[(Expr, Option<String>)],
    input_schema: &RelSchema,
) -> Result<(Plan, Vec<BoundExpr>, RelSchema)> {
    // 1. Bind group-by expressions against the input.
    let mut group_bound = Vec::with_capacity(select.group_by.len());
    for g in &select.group_by {
        if g.contains_aggregate() {
            return Err(Error::Plan("aggregates are not allowed in GROUP BY".into()));
        }
        group_bound.push(bind(g, input_schema)?);
    }

    // 2. Collect aggregate calls from projection and HAVING (deduplicated
    //    structurally) and rewrite both over the aggregate output schema.
    let mut collected: Vec<(Expr, AggExpr)> = Vec::new();
    let mut rewritten_items = Vec::with_capacity(items.len());
    for (e, alias) in items {
        let r = rewrite_over_aggregate(e, &select.group_by, &mut collected, input_schema)?;
        rewritten_items.push((r, e, alias));
    }
    let rewritten_having = match &select.having {
        Some(h) => Some(rewrite_over_aggregate(h, &select.group_by, &mut collected, input_schema)?),
        None => None,
    };

    // 3. The aggregate node's output: group keys then agg results, with
    //    synthetic names the rewrite step referenced.
    let mut agg_fields = Vec::new();
    for i in 0..group_bound.len() {
        agg_fields.push(Field::new(None, &format!("__g{i}")));
    }
    for i in 0..collected.len() {
        agg_fields.push(Field::new(None, &format!("__a{i}")));
    }
    let agg_schema = RelSchema::new(agg_fields);
    let aggs = collected.into_iter().map(|(_, a)| a).collect();

    let mut plan = Plan::Aggregate {
        input: Box::new(input),
        group_by: group_bound,
        aggs,
        schema: agg_schema.clone(),
    };

    if let Some(h) = rewritten_having {
        let predicate = bind(&h, &agg_schema)?;
        plan = Plan::Filter { input: Box::new(plan), predicate };
    }

    let mut exprs = Vec::with_capacity(rewritten_items.len());
    let mut fields = Vec::with_capacity(rewritten_items.len());
    for (rewritten, original, alias) in rewritten_items {
        exprs.push(bind(&rewritten, &agg_schema)?);
        fields.push(Field::new(None, &output_name(original, alias)));
    }
    Ok((plan, exprs, RelSchema::new(fields)))
}

/// Rewrite `expr` so it refers to the aggregate output schema:
/// subtrees structurally equal to a GROUP BY expression become `__gN`,
/// aggregate calls become `__aN`, anything else recurses. A bare column that
/// survives to the leaves (i.e. is not part of any group expression) is a
/// semantic error, matching strict SQL GROUP BY rules.
fn rewrite_over_aggregate(
    expr: &Expr,
    group_by: &[Expr],
    collected: &mut Vec<(Expr, AggExpr)>,
    input_schema: &RelSchema,
) -> Result<Expr> {
    // Structural match against a grouping expression?
    for (i, g) in group_by.iter().enumerate() {
        if exprs_equivalent(expr, g) {
            return Ok(Expr::Column { table: None, name: format!("__g{i}") });
        }
    }
    match expr {
        Expr::Function { name, args, distinct } if ast::is_aggregate_name(name) => {
            if args.iter().any(Expr::contains_aggregate) {
                return Err(Error::Plan("nested aggregate calls are not allowed".into()));
            }
            let (func, arg_ast) = AggFunc::from_call(name, args)?;
            let arg = match &arg_ast {
                Some(a) => Some(bind(a, input_schema)?),
                None => None,
            };
            let agg = AggExpr { func, arg, distinct: *distinct };
            // Deduplicate structurally identical aggregate calls.
            let idx = match collected.iter().position(|(e, _)| exprs_equivalent(e, expr)) {
                Some(i) => i,
                None => {
                    collected.push((expr.clone(), agg));
                    collected.len() - 1
                }
            };
            Ok(Expr::Column { table: None, name: format!("__a{idx}") })
        }
        Expr::Column { table, name } => Err(Error::Plan(format!(
            "column `{}` must appear in GROUP BY or inside an aggregate",
            match table {
                Some(t) => format!("{t}.{name}"),
                None => name.clone(),
            }
        ))),
        Expr::Literal(_) | Expr::Star => Ok(expr.clone()),
        Expr::Unary { op, expr: inner } => Ok(Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_over_aggregate(inner, group_by, collected, input_schema)?),
        }),
        Expr::Binary { left, op, right } => Ok(Expr::Binary {
            left: Box::new(rewrite_over_aggregate(left, group_by, collected, input_schema)?),
            op: *op,
            right: Box::new(rewrite_over_aggregate(right, group_by, collected, input_schema)?),
        }),
        Expr::Function { name, args, distinct } => Ok(Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| rewrite_over_aggregate(a, group_by, collected, input_schema))
                .collect::<Result<_>>()?,
            distinct: *distinct,
        }),
        Expr::Cast { expr: inner, ty } => Ok(Expr::Cast {
            expr: Box::new(rewrite_over_aggregate(inner, group_by, collected, input_schema)?),
            ty: *ty,
        }),
        Expr::IsNull { expr: inner, negated } => Ok(Expr::IsNull {
            expr: Box::new(rewrite_over_aggregate(inner, group_by, collected, input_schema)?),
            negated: *negated,
        }),
        Expr::InList { expr: inner, list, negated } => Ok(Expr::InList {
            expr: Box::new(rewrite_over_aggregate(inner, group_by, collected, input_schema)?),
            list: list
                .iter()
                .map(|e| rewrite_over_aggregate(e, group_by, collected, input_schema))
                .collect::<Result<_>>()?,
            negated: *negated,
        }),
        Expr::Case { operand, branches, else_branch } => Ok(Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(rewrite_over_aggregate(
                    o,
                    group_by,
                    collected,
                    input_schema,
                )?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(c, r)| {
                    Ok((
                        rewrite_over_aggregate(c, group_by, collected, input_schema)?,
                        rewrite_over_aggregate(r, group_by, collected, input_schema)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_branch: match else_branch {
                Some(e) => Some(Box::new(rewrite_over_aggregate(
                    e,
                    group_by,
                    collected,
                    input_schema,
                )?)),
                None => None,
            },
        }),
        Expr::Paren(inner) => rewrite_over_aggregate(inner, group_by, collected, input_schema),
    }
}

/// Structural equivalence ignoring redundant parentheses.
fn exprs_equivalent(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Paren(x), y) => exprs_equivalent(x, y),
        (x, Expr::Paren(y)) => exprs_equivalent(x, y),
        (Expr::Unary { op: oa, expr: ea }, Expr::Unary { op: ob, expr: eb }) => {
            oa == ob && exprs_equivalent(ea, eb)
        }
        (
            Expr::Binary { left: la, op: oa, right: ra },
            Expr::Binary { left: lb, op: ob, right: rb },
        ) => oa == ob && exprs_equivalent(la, lb) && exprs_equivalent(ra, rb),
        (
            Expr::Function { name: na, args: aa, distinct: da },
            Expr::Function { name: nb, args: ab, distinct: db },
        ) => {
            na.eq_ignore_ascii_case(nb)
                && da == db
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| exprs_equivalent(x, y))
        }
        (Expr::Cast { expr: ea, ty: ta }, Expr::Cast { expr: eb, ty: tb }) => {
            ta == tb && exprs_equivalent(ea, eb)
        }
        (Expr::Column { table: ta, name: na }, Expr::Column { table: tb, name: nb }) => {
            na.eq_ignore_ascii_case(nb)
                && match (ta, tb) {
                    (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
                    (None, None) => true,
                    _ => false,
                }
        }
        _ => a == b,
    }
}

/// Output column name: alias, else column name, else printed expression.
fn output_name(expr: &Expr, alias: &Option<String>) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DataType;
    use crate::parser::parse_statement;
    use crate::storage::budget::MemoryBudget;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let b = MemoryBudget::unlimited();
        c.create_table(
            "T0",
            vec![
                ("s".into(), DataType::Integer),
                ("r".into(), DataType::Double),
                ("i".into(), DataType::Double),
            ],
            false,
            b.clone(),
        )
        .unwrap();
        c.create_table(
            "H",
            vec![
                ("in_s".into(), DataType::Integer),
                ("out_s".into(), DataType::Integer),
                ("r".into(), DataType::Double),
                ("i".into(), DataType::Double),
            ],
            false,
            b,
        )
        .unwrap();
        c
    }

    fn plan(sql: &str) -> Result<Plan> {
        let st = parse_statement(sql).unwrap();
        let ast::Statement::Query(q) = st else { panic!("not a query") };
        plan_query(&q, &catalog())
    }

    #[test]
    fn plans_fig2_gate_query() {
        let p = plan(
            "SELECT ((T0.s & ~1) | H.out_s) AS s, \
             SUM((T0.r * H.r) - (T0.i * H.i)) AS r, \
             SUM((T0.r * H.i) + (T0.i * H.r)) AS i \
             FROM T0 JOIN H ON H.in_s = (T0.s & 1) \
             GROUP BY ((T0.s & ~1) | H.out_s)",
        )
        .unwrap();
        let schema = p.schema();
        assert_eq!(schema.names(), vec!["s", "r", "i"]);
        // Project over Aggregate over Join
        let Plan::Project { input, .. } = &p else { panic!("expected project") };
        let Plan::Aggregate { group_by, aggs, .. } = input.as_ref() else {
            panic!("expected aggregate, got {}", p.explain())
        };
        assert_eq!(group_by.len(), 1);
        assert_eq!(aggs.len(), 2);
    }

    #[test]
    fn cte_chain_resolves() {
        let p = plan(
            "WITH T1 AS (SELECT s, r, i FROM T0), T2 AS (SELECT s FROM T1) \
             SELECT s FROM T2 ORDER BY s",
        )
        .unwrap();
        assert!(matches!(p, Plan::Sort { .. }));
    }

    #[test]
    fn wildcard_expansion() {
        let p = plan("SELECT * FROM T0").unwrap();
        assert_eq!(p.schema().names(), vec!["s", "r", "i"]);
        let p = plan("SELECT H.* FROM T0 JOIN H ON H.in_s = T0.s").unwrap();
        assert_eq!(p.schema().names(), vec!["in_s", "out_s", "r", "i"]);
    }

    #[test]
    fn group_by_column_not_in_group_is_error() {
        let e = plan("SELECT r FROM T0 GROUP BY s").unwrap_err();
        assert!(matches!(e, Error::Plan(m) if m.contains("GROUP BY")));
    }

    #[test]
    fn having_without_group_is_error_but_with_agg_ok() {
        assert!(plan("SELECT s FROM T0 HAVING s > 1").is_err());
        assert!(plan("SELECT s FROM T0 GROUP BY s HAVING COUNT(*) > 1").is_ok());
        assert!(plan("SELECT SUM(r) FROM T0 HAVING SUM(r) > 0").is_ok());
    }

    #[test]
    fn duplicate_aggregates_are_shared() {
        let p = plan("SELECT SUM(r) + SUM(r) AS x FROM T0").unwrap();
        let Plan::Project { input, .. } = &p else { panic!() };
        let Plan::Aggregate { aggs, .. } = input.as_ref() else { panic!() };
        assert_eq!(aggs.len(), 1, "structurally identical SUM(r) deduplicated");
    }

    #[test]
    fn order_by_ordinal_and_alias() {
        assert!(plan("SELECT s AS q FROM T0 ORDER BY q").is_ok());
        assert!(plan("SELECT s, r FROM T0 ORDER BY 2 DESC").is_ok());
        assert!(plan("SELECT s FROM T0 ORDER BY 5").is_err());
    }

    #[test]
    fn select_without_from() {
        let p = plan("SELECT 1 AS one, 2 AS two").unwrap();
        assert_eq!(p.schema().names(), vec!["one", "two"]);
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        assert!(plan("SELECT s FROM T0 UNION ALL SELECT s, r FROM T0").is_err());
        assert!(plan("SELECT s FROM T0 UNION ALL SELECT in_s FROM H").is_ok());
    }

    #[test]
    fn distinct_becomes_aggregate() {
        let p = plan("SELECT DISTINCT s FROM T0").unwrap();
        assert!(matches!(p, Plan::Aggregate { ref aggs, .. } if aggs.is_empty()));
    }

    #[test]
    fn where_with_aggregate_rejected() {
        assert!(plan("SELECT s FROM T0 WHERE SUM(r) > 1").is_err());
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(matches!(plan("SELECT * FROM nope"), Err(Error::Catalog(_))));
        assert!(matches!(plan("SELECT nope FROM T0"), Err(Error::Plan(_))));
    }

    #[test]
    fn subquery_alias_scopes_names() {
        let p = plan("SELECT u.s FROM (SELECT s FROM T0) AS u").unwrap();
        assert_eq!(p.schema().names(), vec!["s"]);
        assert!(plan("SELECT T0.s FROM (SELECT s FROM T0) AS u").is_err());
    }

    #[test]
    fn explain_renders_tree() {
        let p = plan("SELECT s FROM T0 WHERE s > 0 ORDER BY s LIMIT 1").unwrap();
        let text = p.explain();
        assert!(text.contains("Scan T0"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Sort"));
        assert!(text.contains("Limit"));
    }
}
