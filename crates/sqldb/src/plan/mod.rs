//! Query planning and optimization.

pub mod logical;
pub mod optimizer;
