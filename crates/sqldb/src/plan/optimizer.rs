//! Rule-based plan optimizer.
//!
//! The paper's pitch is that a relational engine brings "logical and physical
//! query planning" to simulation for free (§1). This module implements the
//! logical rules that matter for the generated workloads:
//!
//! * **constant folding** — gate-table literals and mask arithmetic collapse
//!   at plan time;
//! * **filter → join predicate migration** — `WHERE` equi-conjuncts spanning
//!   both join sides become join conditions eligible for hash joins;
//! * **filter pushdown** — side-local conjuncts move below the join;
//! * **filter fusion** — stacked filters merge into one conjunction.

use crate::ast::{BinaryOp, JoinKind};
use crate::expr::BoundExpr;
use crate::plan::logical::{Plan, SortKey};

/// Apply all rules bottom-up until a fixpoint (bounded by plan depth).
pub fn optimize(plan: Plan) -> Plan {
    let mut p = plan;
    // Two passes are enough for the rule set (each rule is monotone).
    for _ in 0..2 {
        p = rewrite(p);
    }
    p
}

fn rewrite(plan: Plan) -> Plan {
    // Recurse first so children are already optimized.
    
    match plan {
        Plan::Filter { input, predicate } => {
            let input = rewrite(*input);
            let predicate = fold_expr(predicate);
            apply_filter_rules(input, predicate)
        }
        Plan::Project { input, exprs, schema } => Plan::Project {
            input: Box::new(rewrite(*input)),
            exprs: exprs.into_iter().map(fold_expr).collect(),
            schema,
        },
        Plan::Join { left, right, kind, on, schema } => Plan::Join {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            kind,
            on: on.map(fold_expr),
            schema,
        },
        Plan::Aggregate { input, group_by, aggs, schema } => Plan::Aggregate {
            input: Box::new(rewrite(*input)),
            group_by: group_by.into_iter().map(fold_expr).collect(),
            aggs,
            schema,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(rewrite(*input)),
            keys: keys
                .into_iter()
                .map(|k| SortKey { expr: fold_expr(k.expr), desc: k.desc })
                .collect(),
        },
        Plan::Limit { input, limit, offset } => {
            Plan::Limit { input: Box::new(rewrite(*input)), limit, offset }
        }
        Plan::UnionAll { inputs } => {
            Plan::UnionAll { inputs: inputs.into_iter().map(rewrite).collect() }
        }
        Plan::Alias { input, schema } => Plan::Alias { input: Box::new(rewrite(*input)), schema },
        leaf @ (Plan::Scan { .. } | Plan::One) => leaf,
    }
}

/// Fold constant subexpressions. Evaluation errors (e.g. `1/0`) leave the
/// expression in place so they surface at execution time, per SQL semantics.
pub fn fold_expr(expr: BoundExpr) -> BoundExpr {
    // Fold children first.
    let expr = match expr {
        BoundExpr::Unary { op, expr } => {
            BoundExpr::Unary { op, expr: Box::new(fold_expr(*expr)) }
        }
        BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(fold_expr(*left)),
            op,
            right: Box::new(fold_expr(*right)),
        },
        BoundExpr::ScalarFn { func, args } => BoundExpr::ScalarFn {
            func,
            args: args.into_iter().map(fold_expr).collect(),
        },
        BoundExpr::Cast { expr, ty } => BoundExpr::Cast { expr: Box::new(fold_expr(*expr)), ty },
        BoundExpr::IsNull { expr, negated } => {
            BoundExpr::IsNull { expr: Box::new(fold_expr(*expr)), negated }
        }
        BoundExpr::InList { expr, list, negated } => BoundExpr::InList {
            expr: Box::new(fold_expr(*expr)),
            list: list.into_iter().map(fold_expr).collect(),
            negated,
        },
        BoundExpr::Case { operand, branches, else_branch } => BoundExpr::Case {
            operand: operand.map(|o| Box::new(fold_expr(*o))),
            branches: branches
                .into_iter()
                .map(|(c, r)| (fold_expr(c), fold_expr(r)))
                .collect(),
            else_branch: else_branch.map(|e| Box::new(fold_expr(*e))),
        },
        leaf => leaf,
    };
    if matches!(expr, BoundExpr::Literal(_)) {
        return expr;
    }
    if expr.is_constant() {
        if let Ok(v) = expr.eval(&vec![]) {
            return BoundExpr::Literal(v);
        }
    }
    expr
}

/// Split a predicate into its AND-conjuncts.
pub fn split_conjuncts(expr: BoundExpr, out: &mut Vec<BoundExpr>) {
    match expr {
        BoundExpr::Binary { left, op: BinaryOp::And, right } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

/// Rebuild a conjunction from parts (`None` for the empty conjunction).
pub fn conjoin(mut parts: Vec<BoundExpr>) -> Option<BoundExpr> {
    let mut acc = parts.pop()?;
    while let Some(p) = parts.pop() {
        acc = BoundExpr::Binary { left: Box::new(p), op: BinaryOp::And, right: Box::new(acc) };
    }
    Some(acc)
}

/// Which join sides a bound expression touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sides {
    Neither,
    LeftOnly,
    RightOnly,
    Both,
}

fn classify_sides(expr: &BoundExpr, left_cols: usize) -> Sides {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    let l = cols.iter().any(|&c| c < left_cols);
    let r = cols.iter().any(|&c| c >= left_cols);
    match (l, r) {
        (false, false) => Sides::Neither,
        (true, false) => Sides::LeftOnly,
        (false, true) => Sides::RightOnly,
        (true, true) => Sides::Both,
    }
}

/// Shift all column indices by `-delta` (for pushing below the right side).
fn shift_columns(expr: BoundExpr, delta: usize) -> BoundExpr {
    map_columns(expr, &|i| i - delta)
}

fn map_columns(expr: BoundExpr, f: &impl Fn(usize) -> usize) -> BoundExpr {
    match expr {
        BoundExpr::Column(i) => BoundExpr::Column(f(i)),
        BoundExpr::Literal(v) => BoundExpr::Literal(v),
        BoundExpr::Unary { op, expr } => {
            BoundExpr::Unary { op, expr: Box::new(map_columns(*expr, f)) }
        }
        BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(map_columns(*left, f)),
            op,
            right: Box::new(map_columns(*right, f)),
        },
        BoundExpr::ScalarFn { func, args } => BoundExpr::ScalarFn {
            func,
            args: args.into_iter().map(|a| map_columns(a, f)).collect(),
        },
        BoundExpr::Cast { expr, ty } => {
            BoundExpr::Cast { expr: Box::new(map_columns(*expr, f)), ty }
        }
        BoundExpr::IsNull { expr, negated } => {
            BoundExpr::IsNull { expr: Box::new(map_columns(*expr, f)), negated }
        }
        BoundExpr::InList { expr, list, negated } => BoundExpr::InList {
            expr: Box::new(map_columns(*expr, f)),
            list: list.into_iter().map(|e| map_columns(e, f)).collect(),
            negated,
        },
        BoundExpr::Case { operand, branches, else_branch } => BoundExpr::Case {
            operand: operand.map(|o| Box::new(map_columns(*o, f))),
            branches: branches
                .into_iter()
                .map(|(c, r)| (map_columns(c, f), map_columns(r, f)))
                .collect(),
            else_branch: else_branch.map(|e| Box::new(map_columns(*e, f))),
        },
    }
}

/// Filter-specific rules: fuse stacked filters, migrate predicates into
/// inner joins, drop always-true filters.
fn apply_filter_rules(input: Plan, predicate: BoundExpr) -> Plan {
    // Always-true predicate → drop the filter entirely.
    if let BoundExpr::Literal(v) = &predicate {
        if v.as_bool().ok().flatten() == Some(true) {
            return input;
        }
    }
    match input {
        // Filter fusion.
        Plan::Filter { input: inner, predicate: p2 } => {
            let combined = BoundExpr::Binary {
                left: Box::new(p2),
                op: BinaryOp::And,
                right: Box::new(predicate),
            };
            apply_filter_rules(*inner, combined)
        }
        // Predicate migration and pushdown around inner joins.
        Plan::Join { left, right, kind: JoinKind::Inner, on, schema } => {
            let left_cols = left.schema().len();
            let mut conjuncts = Vec::new();
            split_conjuncts(predicate, &mut conjuncts);
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut to_on = Vec::new();
            for c in conjuncts {
                match classify_sides(&c, left_cols) {
                    Sides::LeftOnly => to_left.push(c),
                    Sides::RightOnly => to_right.push(shift_columns(c, left_cols)),
                    // constants and both-sided predicates stay on the join
                    _ => to_on.push(c),
                }
            }
            let new_left = match conjoin(to_left) {
                Some(p) => Plan::Filter { input: left, predicate: p },
                None => *left,
            };
            let new_right = match conjoin(to_right) {
                Some(p) => Plan::Filter { input: right, predicate: p },
                None => *right,
            };
            let mut on_parts = Vec::new();
            if let Some(o) = on {
                split_conjuncts(o, &mut on_parts);
            }
            on_parts.extend(to_on);
            Plan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind: JoinKind::Inner,
                on: conjoin(on_parts),
                schema,
            }
        }
        other => Plan::Filter { input: Box::new(other), predicate },
    }
}

/// Extract hash-join key pairs from a join condition.
///
/// Returns `(left_keys, right_keys, residual)` where `left_keys[i]` evaluated
/// on a left row must equal `right_keys[i]` evaluated on a right row. The
/// residual (if any) is evaluated on the concatenated row after a key match.
/// Right-key expressions are shifted to the right child's own schema.
pub fn extract_equi_keys(
    on: BoundExpr,
    left_cols: usize,
) -> (Vec<BoundExpr>, Vec<BoundExpr>, Option<BoundExpr>) {
    let mut conjuncts = Vec::new();
    split_conjuncts(on, &mut conjuncts);
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        if let BoundExpr::Binary { left, op: BinaryOp::Eq, right } = &c {
            let ls = classify_sides(left, left_cols);
            let rs = classify_sides(right, left_cols);
            match (ls, rs) {
                (Sides::LeftOnly, Sides::RightOnly) => {
                    lk.push((**left).clone());
                    rk.push(shift_columns((**right).clone(), left_cols));
                    continue;
                }
                (Sides::RightOnly, Sides::LeftOnly) => {
                    lk.push((**right).clone());
                    rk.push(shift_columns((**left).clone(), left_cols));
                    continue;
                }
                _ => {}
            }
        }
        residual.push(c);
    }
    (lk, rk, conjoin(residual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::UnaryOp;
    use crate::value::Value;

    fn lit(v: i64) -> BoundExpr {
        BoundExpr::Literal(Value::Int(v))
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column(i)
    }

    fn eq(a: BoundExpr, b: BoundExpr) -> BoundExpr {
        BoundExpr::Binary { left: Box::new(a), op: BinaryOp::Eq, right: Box::new(b) }
    }

    fn and(a: BoundExpr, b: BoundExpr) -> BoundExpr {
        BoundExpr::Binary { left: Box::new(a), op: BinaryOp::And, right: Box::new(b) }
    }

    #[test]
    fn folds_constants() {
        // (1 + 2) * 3 → 9
        let e = BoundExpr::Binary {
            left: Box::new(BoundExpr::Binary {
                left: Box::new(lit(1)),
                op: BinaryOp::Add,
                right: Box::new(lit(2)),
            }),
            op: BinaryOp::Mul,
            right: Box::new(lit(3)),
        };
        assert_eq!(fold_expr(e), BoundExpr::Literal(Value::Int(9)));
    }

    #[test]
    fn folding_preserves_runtime_errors() {
        // 1/0 must not fold (and must not panic)
        let e = BoundExpr::Binary {
            left: Box::new(lit(1)),
            op: BinaryOp::Div,
            right: Box::new(lit(0)),
        };
        let folded = fold_expr(e.clone());
        assert_eq!(folded, e);
    }

    #[test]
    fn folds_bitnot_mask() {
        // ~1 → -2, the Fig. 2 mask idiom pre-computed at plan time
        let e = BoundExpr::Unary { op: UnaryOp::BitNot, expr: Box::new(lit(1)) };
        assert_eq!(fold_expr(e), BoundExpr::Literal(Value::Int(-2)));
    }

    #[test]
    fn split_and_conjoin_round_trip() {
        let e = and(and(eq(col(0), lit(1)), eq(col(1), lit(2))), eq(col(2), lit(3)));
        let mut parts = Vec::new();
        split_conjuncts(e, &mut parts);
        assert_eq!(parts.len(), 3);
        let rebuilt = conjoin(parts).unwrap();
        let mut parts2 = Vec::new();
        split_conjuncts(rebuilt, &mut parts2);
        assert_eq!(parts2.len(), 3);
    }

    #[test]
    fn extract_equi_keys_both_orientations() {
        // left has 2 columns; ON col0 = col2 AND col3 = col1 AND col0 > 0
        let on = and(
            and(eq(col(0), col(2)), eq(col(3), col(1))),
            BoundExpr::Binary {
                left: Box::new(col(0)),
                op: BinaryOp::Gt,
                right: Box::new(lit(0)),
            },
        );
        let (lk, rk, residual) = extract_equi_keys(on, 2);
        assert_eq!(lk.len(), 2);
        assert_eq!(rk, vec![col(0), col(1)], "right keys shifted into right schema");
        assert!(residual.is_some());
    }

    #[test]
    fn no_equi_keys_all_residual() {
        let on = BoundExpr::Binary {
            left: Box::new(col(0)),
            op: BinaryOp::Lt,
            right: Box::new(col(2)),
        };
        let (lk, rk, residual) = extract_equi_keys(on, 2);
        assert!(lk.is_empty() && rk.is_empty());
        assert!(residual.is_some());
    }

    #[test]
    fn filter_pushdown_through_inner_join() {
        use crate::schema::{Field, RelSchema};
        let mk_schema = |rel: &str, names: &[&str]| {
            RelSchema::new(names.iter().map(|n| Field::new(Some(rel), n)).collect())
        };
        let left = Plan::Scan { table: "a".into(), schema: mk_schema("a", &["x", "y"]) };
        let right = Plan::Scan { table: "b".into(), schema: mk_schema("b", &["z"]) };
        let joined_schema = left.schema().join(&right.schema());
        let join = Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            kind: JoinKind::Inner,
            on: None,
            schema: joined_schema,
        };
        // WHERE a.x = 1 AND b.z = 2 AND a.y = b.z
        let pred = and(and(eq(col(0), lit(1)), eq(col(2), lit(2))), eq(col(1), col(2)));
        let plan = Plan::Filter { input: Box::new(join), predicate: pred };
        let opt = optimize(plan);
        let Plan::Join { left, right, on, .. } = opt else { panic!("expected join on top") };
        assert!(matches!(*left, Plan::Filter { .. }), "left conjunct pushed down");
        assert!(matches!(*right, Plan::Filter { .. }), "right conjunct pushed down");
        assert!(on.is_some(), "cross-side conjunct became the join condition");
        // The pushed-down right-side predicate must reference column 0 of b.
        let Plan::Filter { predicate, .. } = *right else { unreachable!() };
        let mut cols = Vec::new();
        predicate.referenced_columns(&mut cols);
        assert_eq!(cols, vec![0]);
    }

    #[test]
    fn true_filter_dropped_and_filters_fused() {
        let scan = Plan::Scan {
            table: "t".into(),
            schema: crate::schema::RelSchema::new(vec![crate::schema::Field::new(None, "x")]),
        };
        let p = Plan::Filter { input: Box::new(scan.clone()), predicate: lit(1) };
        assert!(matches!(optimize(p), Plan::Scan { .. }));

        let stacked = Plan::Filter {
            input: Box::new(Plan::Filter {
                input: Box::new(scan),
                predicate: eq(col(0), lit(1)),
            }),
            predicate: eq(col(0), lit(2)),
        };
        let opt = optimize(stacked);
        let Plan::Filter { input, predicate } = opt else { panic!("expected single filter") };
        assert!(matches!(*input, Plan::Scan { .. }));
        let mut parts = Vec::new();
        split_conjuncts(predicate, &mut parts);
        assert_eq!(parts.len(), 2);
    }
}
