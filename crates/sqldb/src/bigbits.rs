//! Arbitrary-width unsigned bit vectors.
//!
//! Qymera encodes an `n`-qubit basis state as the integer whose binary digits
//! are the qubit values (§2.1 of the paper). A 64-bit `INTEGER` column caps
//! circuits at 63 qubits, which is far below the sparse-circuit experiment in
//! the paper's introduction (thousands of qubits under a 2 GB budget).
//! `BigBits` is the engine's `HUGEINT`-style escape hatch: a fixed-width,
//! unsigned, little-endian word vector supporting exactly the operator set of
//! Table 1 (`&`, `|`, `~`, `<<`, `>>`) plus comparison, grouping, and
//! hex/decimal literal I/O.
//!
//! Width semantics: every `BigBits` carries an explicit bit width. Bitwise
//! binary operators produce `max` of the operand widths; `NOT` flips bits
//! within the operand's width (there is no "infinite sign extension" — the
//! translator always works with widths equal to the circuit's qubit count).
//! Equality, ordering, and hashing are *numeric*: they ignore width and
//! compare the represented unsigned integers, so `GROUP BY` keys behave like
//! plain integers.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Fixed-width unsigned big integer (little-endian 64-bit words).
#[derive(Debug, Clone, Eq)]
pub struct BigBits {
    /// Little-endian words. Invariant: `words.len() == ceil(width / 64)` and
    /// all bits at positions `>= width` are zero.
    words: Vec<u64>,
    /// Exact bit width of this value's domain.
    width: usize,
}

fn words_for(width: usize) -> usize {
    width.div_ceil(64).max(1)
}

impl BigBits {
    /// The zero value of the given width (width 0 is normalized to 1).
    pub fn zero(width: usize) -> Self {
        let width = width.max(1);
        BigBits { words: vec![0; words_for(width)], width }
    }

    /// Build from a `u64`, widening to at least the value's own bit length.
    pub fn from_u64(v: u64, width: usize) -> Self {
        let need = 64 - v.leading_zeros() as usize;
        let width = width.max(need).max(1);
        let mut b = BigBits::zero(width);
        b.words[0] = v;
        b.mask_top();
        b
    }

    /// Construct from little-endian words with an explicit width.
    pub fn from_words(mut words: Vec<u64>, width: usize) -> Self {
        let width = width.max(1);
        words.resize(words_for(width), 0);
        let mut b = BigBits { words, width };
        b.mask_top();
        b
    }

    /// Bit width of this value's domain.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Little-endian word view.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Zero out any bits at positions `>= width` (restores the invariant).
    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        debug_assert_eq!(self.words.len(), words_for(self.width));
    }

    /// Widen (never narrow) to `width` bits, preserving the value.
    pub fn widened(&self, width: usize) -> Self {
        if width <= self.width {
            return self.clone();
        }
        let mut words = self.words.clone();
        words.resize(words_for(width), 0);
        BigBits { words, width }
    }

    /// The represented value if it fits in a `u64`.
    pub fn to_u64(&self) -> Option<u64> {
        if self.words.iter().skip(1).all(|&w| w == 0) {
            Some(self.words[0])
        } else {
            None
        }
    }

    /// The represented value if it fits in a nonnegative `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        self.to_u64().and_then(|v| i64::try_from(v).ok())
    }

    /// Get bit `i` (false for `i >= width`).
    pub fn bit(&self, i: usize) -> bool {
        if i >= self.width {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` (no-op above width).
    pub fn set_bit(&mut self, i: usize, v: bool) {
        if i >= self.width {
            return;
        }
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1u64 << (i % 64);
        } else {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// True if the value is numerically zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of significant bits (position of highest set bit + 1; 0 if zero).
    pub fn bit_len(&self) -> usize {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return i * 64 + (64 - w.leading_zeros() as usize);
            }
        }
        0
    }

    fn binop(&self, other: &BigBits, f: impl Fn(u64, u64) -> u64) -> BigBits {
        let width = self.width.max(other.width);
        let a = self.widened(width);
        let b = other.widened(width);
        let words = a.words.iter().zip(b.words.iter()).map(|(&x, &y)| f(x, y)).collect();
        BigBits::from_words(words, width)
    }

    /// Bitwise AND (result width = max of operand widths).
    pub fn and(&self, other: &BigBits) -> BigBits {
        self.binop(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &BigBits) -> BigBits {
        self.binop(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &BigBits) -> BigBits {
        self.binop(other, |a, b| a ^ b)
    }

    /// Bitwise NOT within this value's width.
    pub fn not(&self) -> BigBits {
        let words = self.words.iter().map(|&w| !w).collect();
        BigBits::from_words(words, self.width)
    }

    /// Left shift by `n`, *growing* the width by `n` so no bits are lost.
    pub fn shl(&self, n: usize) -> BigBits {
        let width = self.width + n;
        let mut out = BigBits::zero(width);
        let (wshift, bshift) = (n / 64, n % 64);
        for i in 0..self.words.len() {
            let lo = self.words[i] << bshift;
            out.words[i + wshift] |= lo;
            if bshift != 0 && i + wshift + 1 < out.words.len() {
                out.words[i + wshift + 1] |= self.words[i] >> (64 - bshift);
            }
        }
        out.mask_top();
        out
    }

    /// Logical right shift by `n` (width is preserved).
    pub fn shr(&self, n: usize) -> BigBits {
        if n >= self.width {
            return BigBits::zero(self.width);
        }
        let mut out = BigBits::zero(self.width);
        let (wshift, bshift) = (n / 64, n % 64);
        for i in wshift..self.words.len() {
            let v = self.words[i];
            out.words[i - wshift] |= v >> bshift;
            if bshift != 0 && i > wshift {
                out.words[i - wshift] |= 0; // covered below
            }
        }
        if bshift != 0 {
            // carry bits from the next word down
            for i in 0..out.words.len() {
                let src = i + wshift + 1;
                if src < self.words.len() {
                    out.words[i] |= self.words[src] << (64 - bshift);
                }
            }
        }
        out.mask_top();
        out
    }

    /// A mask of `count` ones starting at bit `lo`, in a domain of `width` bits.
    pub fn ones(lo: usize, count: usize, width: usize) -> BigBits {
        let mut b = BigBits::zero(width.max(lo + count));
        for i in lo..lo + count {
            b.set_bit(i, true);
        }
        b
    }

    /// Numeric comparison (unsigned), ignoring widths.
    pub fn cmp_value(&self, other: &BigBits) -> Ordering {
        let la = self.bit_len();
        let lb = other.bit_len();
        if la != lb {
            return la.cmp(&lb);
        }
        let n = self.words.len().max(other.words.len());
        for i in (0..n).rev() {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Parse a hexadecimal string (no `0x` prefix) into a value whose width is
    /// four bits per digit.
    pub fn from_hex(s: &str) -> Option<BigBits> {
        if s.is_empty() {
            return None;
        }
        let width = s.len() * 4;
        let mut b = BigBits::zero(width);
        for (i, c) in s.bytes().rev().enumerate() {
            let d = (c as char).to_digit(16)? as u64;
            b.words[i / 16] |= d << ((i % 16) * 4);
        }
        b.mask_top();
        Some(b)
    }

    /// Parse a decimal string. Width is the minimal width holding the value.
    pub fn from_decimal(s: &str) -> Option<BigBits> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut words: Vec<u64> = vec![0];
        for b in s.bytes() {
            let d = (b - b'0') as u64;
            // words = words * 10 + d
            let mut carry = d as u128;
            for w in words.iter_mut() {
                let v = (*w as u128) * 10 + carry;
                *w = v as u64;
                carry = v >> 64;
            }
            if carry != 0 {
                words.push(carry as u64);
            }
        }
        let tmp = BigBits { width: words.len() * 64, words };
        let width = tmp.bit_len().max(1);
        Some(BigBits::from_words(tmp.words, width))
    }

    /// Lowercase hex rendering without a prefix (at least one digit).
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        let digits = self.width.div_ceil(4);
        for i in (0..digits).rev() {
            let d = (self.words[i / 16] >> ((i % 16) * 4)) & 0xf;
            if s.is_empty() && d == 0 && i != 0 {
                continue;
            }
            s.push(char::from_digit(d as u32, 16).unwrap());
        }
        if s.is_empty() {
            s.push('0');
        }
        s
    }

    /// Decimal rendering (O(n²/64) — fine for result display).
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut words: Vec<u64> = self.words.clone();
        let mut digits = Vec::new();
        while words.iter().any(|&w| w != 0) {
            // divide words by 10, collecting remainder
            let mut rem: u128 = 0;
            for w in words.iter_mut().rev() {
                let cur = (rem << 64) | (*w as u128);
                *w = (cur / 10) as u64;
                rem = cur % 10;
            }
            digits.push(b'0' + rem as u8);
        }
        digits.reverse();
        String::from_utf8(digits).unwrap()
    }

    /// Approximate heap footprint in bytes (for the memory ledger).
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl PartialEq for BigBits {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_value(other) == Ordering::Equal
    }
}

impl Hash for BigBits {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash only significant words so equal values of different widths
        // collide, matching `PartialEq`.
        let sig = self.bit_len().div_ceil(64);
        for &w in &self.words[..sig] {
            w.hash(state);
        }
    }
}

impl PartialOrd for BigBits {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigBits {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_value(other)
    }
}

impl fmt::Display for BigBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width <= 128 {
            write!(f, "{}", self.to_decimal())
        } else {
            write!(f, "0x{}", self.to_hex())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_from_u64() {
        let z = BigBits::zero(100);
        assert!(z.is_zero());
        assert_eq!(z.width(), 100);
        let v = BigBits::from_u64(0b1011, 100);
        assert_eq!(v.to_u64(), Some(11));
        assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3));
    }

    #[test]
    fn and_or_not_within_width() {
        let a = BigBits::from_u64(0b1100, 4);
        let b = BigBits::from_u64(0b1010, 4);
        assert_eq!(a.and(&b).to_u64(), Some(0b1000));
        assert_eq!(a.or(&b).to_u64(), Some(0b1110));
        assert_eq!(a.not().to_u64(), Some(0b0011));
    }

    #[test]
    fn not_respects_width() {
        let a = BigBits::zero(130);
        let n = a.not();
        assert_eq!(n.bit_len(), 130);
        assert!(n.bit(129));
        assert!(!n.bit(130));
    }

    #[test]
    fn shifts_across_word_boundaries() {
        let a = BigBits::from_u64(1, 1);
        let shifted = a.shl(200);
        assert!(shifted.bit(200));
        assert_eq!(shifted.bit_len(), 201);
        let back = shifted.shr(200);
        assert_eq!(back.to_u64(), Some(1));
        // shift by a non-multiple of 64
        let b = BigBits::from_u64(0b101, 3).shl(70);
        assert!(b.bit(70) && !b.bit(71) && b.bit(72));
        assert_eq!(b.shr(70).to_u64(), Some(0b101));
    }

    #[test]
    fn shr_carries_bits_down() {
        let mut a = BigBits::zero(192);
        a.set_bit(100, true);
        a.set_bit(5, true);
        let s = a.shr(3);
        assert!(s.bit(97));
        assert!(s.bit(2));
        assert_eq!(s.bit_len(), 98);
    }

    #[test]
    fn hex_round_trip() {
        let h = "deadbeefcafebabe1234567890abcdef00ff";
        let b = BigBits::from_hex(h).unwrap();
        assert_eq!(b.to_hex(), h);
        assert_eq!(b.width(), h.len() * 4);
    }

    #[test]
    fn decimal_round_trip_small_and_large() {
        for s in ["0", "1", "42", "18446744073709551616", "340282366920938463463374607431768211456"] {
            let b = BigBits::from_decimal(s).unwrap();
            assert_eq!(b.to_decimal(), s, "round trip failed for {s}");
        }
    }

    #[test]
    fn equality_ignores_width() {
        let a = BigBits::from_u64(42, 8);
        let b = BigBits::from_u64(42, 1000);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let h = |x: &BigBits| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn ordering_is_numeric() {
        let a = BigBits::from_decimal("99999999999999999999").unwrap();
        let b = BigBits::from_u64(7, 2000);
        assert_eq!(a.cmp_value(&b), Ordering::Greater);
        assert_eq!(b.cmp_value(&a), Ordering::Less);
    }

    #[test]
    fn ones_mask() {
        let m = BigBits::ones(2, 3, 8);
        assert_eq!(m.to_u64(), Some(0b11100));
        let big = BigBits::ones(100, 2, 200);
        assert!(big.bit(100) && big.bit(101) && !big.bit(102) && !big.bit(99));
    }

    #[test]
    fn xor_and_set_bit() {
        let a = BigBits::from_u64(0b1111, 4);
        let b = BigBits::from_u64(0b0101, 4);
        assert_eq!(a.xor(&b).to_u64(), Some(0b1010));
        let mut c = BigBits::zero(4);
        c.set_bit(10, true); // above width: no-op
        assert!(c.is_zero());
    }
}
