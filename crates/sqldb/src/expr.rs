//! Bound (column-resolved) expressions and their evaluation.
//!
//! The planner rewrites AST expressions into [`BoundExpr`] where every column
//! reference is an index into the input row. Aggregates never reach this
//! layer — the planner replaces them with column references into the
//! aggregation operator's output before binding.

use crate::ast::{self, BinaryOp, DataType, Expr, Literal, UnaryOp};
use crate::error::{Error, Result};
use crate::schema::RelSchema;
use crate::storage::spill::Row;
use crate::value::Value;

/// Scalar (non-aggregate) built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Abs,
    Sqrt,
    Pow,
    Floor,
    Ceil,
    Round,
    Cos,
    Sin,
    Exp,
    Ln,
    Sign,
    Coalesce,
    Length,
    Upper,
    Lower,
    /// `SUBSTR(text, start, len)` — 1-based, like SQLite.
    Substr,
    /// `CONCAT(a, b, …)` — string concatenation.
    Concat,
}

impl ScalarFunc {
    fn by_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "ABS" => ScalarFunc::Abs,
            "SQRT" => ScalarFunc::Sqrt,
            "POW" | "POWER" => ScalarFunc::Pow,
            "FLOOR" => ScalarFunc::Floor,
            "CEIL" | "CEILING" => ScalarFunc::Ceil,
            "ROUND" => ScalarFunc::Round,
            "COS" => ScalarFunc::Cos,
            "SIN" => ScalarFunc::Sin,
            "EXP" => ScalarFunc::Exp,
            "LN" | "LOG" => ScalarFunc::Ln,
            "SIGN" => ScalarFunc::Sign,
            "COALESCE" => ScalarFunc::Coalesce,
            "LENGTH" => ScalarFunc::Length,
            "UPPER" => ScalarFunc::Upper,
            "LOWER" => ScalarFunc::Lower,
            "SUBSTR" | "SUBSTRING" => ScalarFunc::Substr,
            "CONCAT" => ScalarFunc::Concat,
            _ => return None,
        })
    }

    fn arity_ok(&self, n: usize) -> bool {
        match self {
            ScalarFunc::Pow => n == 2,
            ScalarFunc::Round => n == 1 || n == 2,
            ScalarFunc::Coalesce => n >= 1,
            ScalarFunc::Substr => n == 2 || n == 3,
            ScalarFunc::Concat => n >= 1,
            _ => n == 1,
        }
    }
}

/// Column-resolved expression ready for evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    Literal(Value),
    Column(usize),
    Unary { op: UnaryOp, expr: Box<BoundExpr> },
    Binary { left: Box<BoundExpr>, op: BinaryOp, right: Box<BoundExpr> },
    ScalarFn { func: ScalarFunc, args: Vec<BoundExpr> },
    Cast { expr: Box<BoundExpr>, ty: DataType },
    IsNull { expr: Box<BoundExpr>, negated: bool },
    InList { expr: Box<BoundExpr>, list: Vec<BoundExpr>, negated: bool },
    Case {
        operand: Option<Box<BoundExpr>>,
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_branch: Option<Box<BoundExpr>>,
    },
}

/// Convert an AST literal to a runtime value.
pub fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Int(i) => Value::Int(*i),
        Literal::Big(b) => Value::Big(b.clone()),
        Literal::Float(f) => Value::Float(*f),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Int(*b as i64),
    }
}

/// Bind `expr` against `schema`, resolving column references to indices.
pub fn bind(expr: &Expr, schema: &RelSchema) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Literal(l) => BoundExpr::Literal(literal_value(l)),
        Expr::Column { table, name } => {
            BoundExpr::Column(schema.resolve(table.as_deref(), name)?)
        }
        Expr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr, schema)?),
        },
        Expr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(bind(left, schema)?),
            op: *op,
            right: Box::new(bind(right, schema)?),
        },
        Expr::Function { name, args, distinct } => {
            if ast::is_aggregate_name(name) {
                return Err(Error::Plan(format!(
                    "aggregate `{name}` is not allowed in this context"
                )));
            }
            if *distinct {
                return Err(Error::Plan("DISTINCT on a scalar function".into()));
            }
            let func = ScalarFunc::by_name(name)
                .ok_or_else(|| Error::Plan(format!("unknown function `{name}`")))?;
            if !func.arity_ok(args.len()) {
                return Err(Error::Plan(format!(
                    "wrong number of arguments to `{name}`: {}",
                    args.len()
                )));
            }
            BoundExpr::ScalarFn {
                func,
                args: args.iter().map(|a| bind(a, schema)).collect::<Result<_>>()?,
            }
        }
        Expr::Star => return Err(Error::Plan("`*` is not a scalar expression".into())),
        Expr::Cast { expr, ty } => BoundExpr::Cast {
            expr: Box::new(bind(expr, schema)?),
            ty: *ty,
        },
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(bind(expr, schema)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => BoundExpr::InList {
            expr: Box::new(bind(expr, schema)?),
            list: list.iter().map(|e| bind(e, schema)).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Case { operand, branches, else_branch } => BoundExpr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(bind(o, schema)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(c, r)| Ok((bind(c, schema)?, bind(r, schema)?)))
                .collect::<Result<_>>()?,
            else_branch: match else_branch {
                Some(e) => Some(Box::new(bind(e, schema)?)),
                None => None,
            },
        },
        Expr::Paren(inner) => bind(inner, schema)?,
    })
}

impl BoundExpr {
    /// Evaluate against one input row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Column(i) => Ok(row[*i].clone()),
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match op {
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::BitNot => v.bit_not(),
                    UnaryOp::Not => match v.as_bool()? {
                        None => Ok(Value::Null),
                        Some(b) => Ok(Value::Int(!b as i64)),
                    },
                }
            }
            BoundExpr::Binary { left, op, right } => eval_binary(left, *op, right, row),
            BoundExpr::ScalarFn { func, args } => eval_scalar_fn(*func, args, row),
            BoundExpr::Cast { expr, ty } => cast_value(expr.eval(row)?, *ty),
            BoundExpr::IsNull { expr, negated } => {
                let isnull = expr.eval(row)?.is_null();
                Ok(Value::Int((isnull != *negated) as i64))
            }
            BoundExpr::InList { expr, list, negated } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row)?;
                    if iv.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v == iv {
                        return Ok(Value::Int(!*negated as i64));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(*negated as i64))
                }
            }
            BoundExpr::Case { operand, branches, else_branch } => {
                for (cond, result) in branches {
                    let fire = match operand {
                        Some(op) => {
                            let lhs = op.eval(row)?;
                            let rhs = cond.eval(row)?;
                            !lhs.is_null() && !rhs.is_null() && lhs == rhs
                        }
                        None => cond.eval(row)?.as_bool()? == Some(true),
                    };
                    if fire {
                        return result.eval(row);
                    }
                }
                match else_branch {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// True if the expression references no columns (safe to pre-evaluate).
    pub fn is_constant(&self) -> bool {
        match self {
            BoundExpr::Literal(_) => true,
            BoundExpr::Column(_) => false,
            BoundExpr::Unary { expr, .. } | BoundExpr::Cast { expr, .. } => expr.is_constant(),
            BoundExpr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            BoundExpr::ScalarFn { args, .. } => args.iter().all(BoundExpr::is_constant),
            BoundExpr::IsNull { expr, .. } => expr.is_constant(),
            BoundExpr::InList { expr, list, .. } => {
                expr.is_constant() && list.iter().all(BoundExpr::is_constant)
            }
            BoundExpr::Case { operand, branches, else_branch } => {
                operand.as_deref().is_none_or(BoundExpr::is_constant)
                    && branches.iter().all(|(c, r)| c.is_constant() && r.is_constant())
                    && else_branch.as_deref().is_none_or(BoundExpr::is_constant)
            }
        }
    }

    /// Collect all referenced column indices.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Literal(_) => {}
            BoundExpr::Column(i) => out.push(*i),
            BoundExpr::Unary { expr, .. } | BoundExpr::Cast { expr, .. } => {
                expr.referenced_columns(out)
            }
            BoundExpr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            BoundExpr::ScalarFn { args, .. } => {
                args.iter().for_each(|a| a.referenced_columns(out))
            }
            BoundExpr::IsNull { expr, .. } => expr.referenced_columns(out),
            BoundExpr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                list.iter().for_each(|e| e.referenced_columns(out));
            }
            BoundExpr::Case { operand, branches, else_branch } => {
                if let Some(o) = operand {
                    o.referenced_columns(out);
                }
                for (c, r) in branches {
                    c.referenced_columns(out);
                    r.referenced_columns(out);
                }
                if let Some(e) = else_branch {
                    e.referenced_columns(out);
                }
            }
        }
    }
}

fn eval_binary(left: &BoundExpr, op: BinaryOp, right: &BoundExpr, row: &Row) -> Result<Value> {
    // Short-circuit three-valued AND/OR.
    match op {
        BinaryOp::And => {
            let l = left.eval(row)?.as_bool()?;
            if l == Some(false) {
                return Ok(Value::Int(0));
            }
            let r = right.eval(row)?.as_bool()?;
            return Ok(match (l, r) {
                (_, Some(false)) => Value::Int(0),
                (Some(true), Some(true)) => Value::Int(1),
                _ => Value::Null,
            });
        }
        BinaryOp::Or => {
            let l = left.eval(row)?.as_bool()?;
            if l == Some(true) {
                return Ok(Value::Int(1));
            }
            let r = right.eval(row)?.as_bool()?;
            return Ok(match (l, r) {
                (_, Some(true)) => Value::Int(1),
                (Some(false), Some(false)) => Value::Int(0),
                _ => Value::Null,
            });
        }
        _ => {}
    }
    let l = left.eval(row)?;
    let r = right.eval(row)?;
    match op {
        BinaryOp::Add => l.add(&r),
        BinaryOp::Sub => l.sub(&r),
        BinaryOp::Mul => l.mul(&r),
        BinaryOp::Div => l.div(&r),
        BinaryOp::Mod => l.rem(&r),
        BinaryOp::BitAnd => l.bit_and(&r),
        BinaryOp::BitOr => l.bit_or(&r),
        BinaryOp::BitXor => l.bit_xor(&r),
        BinaryOp::Shl => l.shl(&r),
        BinaryOp::Shr => l.shr(&r),
        BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt
        | BinaryOp::GtEq => {
            let cmp = l.sql_cmp(&r)?;
            Ok(match cmp {
                None => Value::Null,
                Some(ord) => {
                    let b = match op {
                        BinaryOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinaryOp::NotEq => ord != std::cmp::Ordering::Equal,
                        BinaryOp::Lt => ord == std::cmp::Ordering::Less,
                        BinaryOp::LtEq => ord != std::cmp::Ordering::Greater,
                        BinaryOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinaryOp::GtEq => ord != std::cmp::Ordering::Less,
                        _ => unreachable!(),
                    };
                    Value::Int(b as i64)
                }
            })
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

fn eval_scalar_fn(func: ScalarFunc, args: &[BoundExpr], row: &Row) -> Result<Value> {
    // COALESCE must not eagerly error on later args.
    if func == ScalarFunc::Coalesce {
        for a in args {
            let v = a.eval(row)?;
            if !v.is_null() {
                return Ok(v);
            }
        }
        return Ok(Value::Null);
    }
    let vals: Vec<Value> = args.iter().map(|a| a.eval(row)).collect::<Result<_>>()?;
    if vals.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    Ok(match func {
        ScalarFunc::Abs => match &vals[0] {
            Value::Int(i) => Value::Int(i.checked_abs().ok_or_else(|| {
                Error::Eval("integer overflow in ABS".into())
            })?),
            v => Value::Float(v.as_f64()?.abs()),
        },
        ScalarFunc::Sqrt => Value::Float(vals[0].as_f64()?.sqrt()),
        ScalarFunc::Pow => Value::Float(vals[0].as_f64()?.powf(vals[1].as_f64()?)),
        ScalarFunc::Floor => Value::Float(vals[0].as_f64()?.floor()),
        ScalarFunc::Ceil => Value::Float(vals[0].as_f64()?.ceil()),
        ScalarFunc::Round => {
            let x = vals[0].as_f64()?;
            let d = if vals.len() == 2 { vals[1].as_i64()? } else { 0 };
            let m = 10f64.powi(d as i32);
            Value::Float((x * m).round() / m)
        }
        ScalarFunc::Cos => Value::Float(vals[0].as_f64()?.cos()),
        ScalarFunc::Sin => Value::Float(vals[0].as_f64()?.sin()),
        ScalarFunc::Exp => Value::Float(vals[0].as_f64()?.exp()),
        ScalarFunc::Ln => Value::Float(vals[0].as_f64()?.ln()),
        ScalarFunc::Sign => Value::Int(match vals[0].as_f64()? {
            x if x > 0.0 => 1,
            x if x < 0.0 => -1,
            _ => 0,
        }),
        ScalarFunc::Length => match &vals[0] {
            Value::Str(s) => Value::Int(s.chars().count() as i64),
            v => return Err(Error::Type(format!("LENGTH expects TEXT, got {}", v.type_name()))),
        },
        ScalarFunc::Upper => match &vals[0] {
            Value::Str(s) => Value::Str(s.to_uppercase()),
            v => return Err(Error::Type(format!("UPPER expects TEXT, got {}", v.type_name()))),
        },
        ScalarFunc::Lower => match &vals[0] {
            Value::Str(s) => Value::Str(s.to_lowercase()),
            v => return Err(Error::Type(format!("LOWER expects TEXT, got {}", v.type_name()))),
        },
        ScalarFunc::Substr => {
            let Value::Str(s) = &vals[0] else {
                return Err(Error::Type(format!(
                    "SUBSTR expects TEXT, got {}",
                    vals[0].type_name()
                )));
            };
            let chars: Vec<char> = s.chars().collect();
            let start = vals[1].as_i64()?.max(1) as usize - 1;
            let len = if vals.len() == 3 {
                vals[2].as_i64()?.max(0) as usize
            } else {
                chars.len().saturating_sub(start)
            };
            let end = (start + len).min(chars.len());
            let out: String = chars.get(start.min(chars.len())..end).unwrap_or(&[]).iter().collect();
            Value::Str(out)
        }
        ScalarFunc::Concat => {
            let mut out = String::new();
            for v in &vals {
                match v {
                    Value::Str(s) => out.push_str(s),
                    other => out.push_str(&other.to_string()),
                }
            }
            Value::Str(out)
        }
        ScalarFunc::Coalesce => unreachable!("handled above"),
    })
}

/// Runtime CAST semantics (more permissive than column coercion: parses
/// strings, truncates floats).
pub fn cast_value(v: Value, ty: DataType) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    Ok(match (ty, &v) {
        (DataType::Integer, Value::Int(_)) => v,
        (DataType::Integer, Value::Float(f)) => Value::Int(*f as i64),
        (DataType::Integer, Value::Str(s)) => Value::Int(
            s.trim()
                .parse::<i64>()
                .map_err(|_| Error::Eval(format!("cannot cast '{s}' to INTEGER")))?,
        ),
        (DataType::Integer, Value::Big(b)) => Value::Int(
            b.to_i64()
                .ok_or_else(|| Error::Eval("HUGEINT out of INTEGER range".into()))?,
        ),
        (DataType::HugeInt, Value::Int(i)) if *i >= 0 => {
            Value::Big(crate::bigbits::BigBits::from_u64(*i as u64, 64))
        }
        (DataType::HugeInt, Value::Big(_)) => v,
        (DataType::Double, Value::Float(_)) => v,
        (DataType::Double, _) => Value::Float(v.as_f64()?),
        (DataType::Text, Value::Str(_)) => v,
        (DataType::Text, other) => Value::Str(other.to_string()),
        (ty, v) => {
            return Err(Error::Eval(format!("cannot cast {} to {}", v.type_name(), ty)))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::schema::{Field, RelSchema};

    fn schema() -> RelSchema {
        RelSchema::new(vec![
            Field::new(Some("t"), "s"),
            Field::new(Some("t"), "r"),
            Field::new(Some("t"), "i"),
        ])
    }

    fn eval_with(sql: &str, row: Vec<Value>) -> Result<Value> {
        let e = parse_expr(sql).unwrap();
        let b = bind(&e, &schema())?;
        b.eval(&row)
    }

    fn row() -> Vec<Value> {
        vec![Value::Int(5), Value::Float(0.5), Value::Float(-0.25)]
    }

    #[test]
    fn fig2_projection_expression() {
        // ((T0.s & ~1) | out) with s=5, out=0 → 4
        let v = eval_with("(s & ~1) | 0", row()).unwrap();
        assert_eq!(v, Value::Int(4));
    }

    #[test]
    fn complex_multiplication_expressions() {
        // the complex product terms from Fig. 2c
        let re = eval_with("(r * 2.0) - (i * 0.0)", row()).unwrap();
        assert_eq!(re, Value::Float(1.0));
        let im = eval_with("(r * 0.0) + (i * 2.0)", row()).unwrap();
        assert_eq!(im, Value::Float(-0.5));
    }

    #[test]
    fn three_valued_logic() {
        let null_row = vec![Value::Null, Value::Float(0.5), Value::Null];
        assert_eq!(eval_with("s = 1 OR 1 = 1", null_row.clone()).unwrap(), Value::Int(1));
        assert!(eval_with("s = 1", null_row.clone()).unwrap().is_null());
        assert_eq!(eval_with("s = 1 AND 1 = 0", null_row).unwrap(), Value::Int(0));
    }

    #[test]
    fn is_null_and_in_list() {
        assert_eq!(eval_with("s IS NULL", row()).unwrap(), Value::Int(0));
        assert_eq!(eval_with("s IS NOT NULL", row()).unwrap(), Value::Int(1));
        assert_eq!(eval_with("s IN (1, 5, 9)", row()).unwrap(), Value::Int(1));
        assert_eq!(eval_with("s NOT IN (1, 9)", row()).unwrap(), Value::Int(1));
        assert!(eval_with("s IN (1, NULL)", row()).unwrap().is_null());
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            eval_with("CASE WHEN s > 3 THEN 'big' ELSE 'small' END", row()).unwrap(),
            Value::Str("big".into())
        );
        assert_eq!(
            eval_with("CASE s WHEN 5 THEN 10 WHEN 6 THEN 20 END", row()).unwrap(),
            Value::Int(10)
        );
        assert!(eval_with("CASE s WHEN 7 THEN 10 END", row()).unwrap().is_null());
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval_with("ABS(-3)", row()).unwrap(), Value::Int(3));
        assert_eq!(eval_with("SQRT(4.0)", row()).unwrap(), Value::Float(2.0));
        assert_eq!(eval_with("POW(2, 10)", row()).unwrap(), Value::Float(1024.0));
        assert_eq!(eval_with("ROUND(1.2345, 2)", row()).unwrap(), Value::Float(1.23));
        assert_eq!(eval_with("COALESCE(NULL, NULL, 7)", row()).unwrap(), Value::Int(7));
        assert_eq!(eval_with("LENGTH('abc')", row()).unwrap(), Value::Int(3));
        assert_eq!(eval_with("SIGN(-2.5)", row()).unwrap(), Value::Int(-1));
        assert_eq!(eval_with("UPPER('ab')", row()).unwrap(), Value::Str("AB".into()));
    }

    #[test]
    fn casts() {
        assert_eq!(eval_with("CAST('42' AS INTEGER)", row()).unwrap(), Value::Int(42));
        assert_eq!(eval_with("CAST(1.9 AS INTEGER)", row()).unwrap(), Value::Int(1));
        assert_eq!(eval_with("CAST(5 AS TEXT)", row()).unwrap(), Value::Str("5".into()));
        assert!(eval_with("CAST('nope' AS INTEGER)", row()).is_err());
        assert!(matches!(eval_with("CAST(5 AS HUGEINT)", row()).unwrap(), Value::Big(_)));
    }

    #[test]
    fn binder_rejects_aggregates_and_unknowns() {
        let e = parse_expr("SUM(r)").unwrap();
        assert!(bind(&e, &schema()).is_err());
        let e = parse_expr("NOSUCHFN(r)").unwrap();
        assert!(bind(&e, &schema()).is_err());
        let e = parse_expr("nocolumn").unwrap();
        assert!(bind(&e, &schema()).is_err());
    }

    #[test]
    fn constant_detection_and_column_collection() {
        let b = bind(&parse_expr("1 + 2 * 3").unwrap(), &schema()).unwrap();
        assert!(b.is_constant());
        assert_eq!(b.eval(&vec![]).unwrap(), Value::Int(7));
        let b = bind(&parse_expr("s + r").unwrap(), &schema()).unwrap();
        assert!(!b.is_constant());
        let mut cols = Vec::new();
        b.referenced_columns(&mut cols);
        assert_eq!(cols, vec![0, 1]);
    }

    #[test]
    fn shift_precedence_evaluates_like_c() {
        // 1 << 2 + 3 = 1 << 5 = 32
        assert_eq!(eval_with("1 << 2 + 3", row()).unwrap(), Value::Int(32));
        // a & 1 << 2 with s=5: 5 & 4 = 4
        assert_eq!(eval_with("s & 1 << 2", row()).unwrap(), Value::Int(4));
    }
}

#[cfg(test)]
mod string_fn_tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::schema::RelSchema;

    fn eval(sql: &str) -> Result<Value> {
        bind(&parse_expr(sql).unwrap(), &RelSchema::default())?.eval(&vec![])
    }

    #[test]
    fn substr_semantics() {
        assert_eq!(eval("SUBSTR('010110', 2, 3)").unwrap(), Value::Str("101".into()));
        assert_eq!(eval("SUBSTR('abc', 2)").unwrap(), Value::Str("bc".into()));
        assert_eq!(eval("SUBSTR('abc', 1, 0)").unwrap(), Value::Str("".into()));
        assert_eq!(eval("SUBSTR('abc', 9, 2)").unwrap(), Value::Str("".into()));
        assert!(eval("SUBSTR(5, 1, 1)").is_err());
    }

    #[test]
    fn concat_semantics() {
        assert_eq!(eval("CONCAT('0', '1', '1')").unwrap(), Value::Str("011".into()));
        assert_eq!(eval("CONCAT('p=', 1)").unwrap(), Value::Str("p=1".into()));
        assert!(eval("CONCAT(NULL, 'x')").unwrap().is_null());
    }
}
