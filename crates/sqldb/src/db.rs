//! The embedded database façade.
//!
//! ```
//! use qymera_sqldb::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE T0 (s INTEGER, r DOUBLE, i DOUBLE)").unwrap();
//! db.execute("INSERT INTO T0 VALUES (0, 1.0, 0.0)").unwrap();
//! let rs = db.execute("SELECT s, r FROM T0 ORDER BY s").unwrap();
//! assert_eq!(rs.rows().len(), 1);
//! ```

use std::sync::Arc;

use crate::ast::{DataType, Statement};
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::exec::vector::{build_batch_stream, BatchToRow};
use crate::exec::{build_stream, ExecContext, RowStream};
use crate::expr::bind;
use crate::parser::{parse_script, parse_statement};
use crate::plan::logical::{plan_query, Plan};
use crate::plan::optimizer::optimize;
use crate::schema::RelSchema;
use crate::storage::budget::MemoryBudget;
use crate::storage::spill::{Row, SpillDir};
use crate::value::Value;

/// Plans deeper than this run their pull pipeline on a dedicated thread with
/// a large stack. The translator emits one CTE (join + aggregate + project)
/// per gate, so plan depth grows linearly with circuit length, and both
/// executors keep one live frame set per pipeline stage while the top
/// aggregate's consume phase is in flight.
const DEEP_PLAN_DEPTH: usize = 64;

/// Stack size for the dedicated execution thread (fits thousands of gates).
const EXEC_STACK_BYTES: usize = 512 * 1024 * 1024;

/// Run `f` on the caller's stack for shallow plans, or on a dedicated
/// big-stack thread for deep ones (a CTE chain of hundreds of gates would
/// otherwise overflow the default thread stack mid-pipeline).
fn with_exec_stack<T: Send>(depth: usize, f: impl FnOnce() -> T + Send) -> T {
    if depth <= DEEP_PLAN_DEPTH {
        return f();
    }
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .name("qymera-exec".into())
            .stack_size(EXEC_STACK_BYTES)
            .spawn_scoped(s, f)
            .expect("cannot spawn execution thread")
            .join()
            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
    })
}

/// Which physical execution path queries run on.
///
/// The vectorized [`ExecPath::Batch`] path is the default and covers every
/// plan shape — sorts, outer/cross/non-equi joins, and DISTINCT aggregates
/// included; the row path is kept purely as the independent reference
/// implementation (row/batch equivalence is enforced by tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPath {
    /// Vectorized batch-at-a-time execution over columnar [`RowBatch`]
    /// chunks (see [`crate::exec::vector`]).
    ///
    /// [`RowBatch`]: crate::exec::batch::RowBatch
    #[default]
    Batch,
    /// Row-at-a-time pull execution (`RowStream`), one virtual call per row.
    Row,
}

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Row>,
    /// Rows inserted/deleted for DML; 0 for queries and DDL.
    affected: usize,
}

impl ResultSet {
    fn dml(affected: usize) -> Self {
        ResultSet { columns: Vec::new(), rows: Vec::new(), affected }
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    pub fn affected(&self) -> usize {
        self.affected
    }

    /// Single scalar convenience accessor (first column of first row).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as an aligned text table (for examples and the CLI).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() && cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths.get(i).copied().unwrap_or(0)));
            }
            out.push('\n');
        }
        out
    }
}

/// Execution statistics, cumulative over the database lifetime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DbStats {
    pub statements_executed: u64,
    pub rows_returned: u64,
    pub spill_files: u64,
    pub spill_bytes: u64,
    /// High-water mark of the memory ledger in bytes.
    pub peak_memory_bytes: usize,
}

/// An embedded database instance. Statement execution is driven from the
/// caller's thread; with [`Database::set_parallelism`] above 1 (the default
/// follows the host's core count) the batch executor fans eligible pipeline
/// stages out over a morsel-parallel worker pool.
pub struct Database {
    catalog: Catalog,
    budget: MemoryBudget,
    spill: Arc<SpillDir>,
    path: ExecPath,
    parallelism: usize,
    statements: u64,
    rows_returned: u64,
}

/// Worker threads a fresh [`Database`] allows the batch executor: the
/// `QYMERA_PARALLELISM` environment variable when set (a positive integer;
/// `1` forces fully sequential execution), otherwise the host's available
/// core count. An unparsable value panics rather than silently falling
/// back to full parallelism — the variable exists precisely so CI can pin
/// sequential semantics, and ignoring a typo would invert that guarantee.
fn default_parallelism() -> usize {
    if let Ok(raw) = std::env::var("QYMERA_PARALLELISM") {
        match raw.trim().parse::<usize>() {
            Ok(n) => return n.max(1),
            Err(_) => panic!(
                "QYMERA_PARALLELISM must be a non-negative integer, got `{raw}`"
            ),
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl Database {
    /// Unlimited memory budget (usage is still tracked).
    pub fn new() -> Self {
        Self::with_budget(MemoryBudget::unlimited())
    }

    /// Database whose operators and tables share `budget`; exceeding it makes
    /// operators spill to disk (or fail where spilling is impossible).
    pub fn with_memory_limit(bytes: usize) -> Self {
        Self::with_budget(MemoryBudget::with_limit(bytes))
    }

    /// Database over an externally shared [`MemoryBudget`].
    pub fn with_budget(budget: MemoryBudget) -> Self {
        Database {
            catalog: Catalog::new(),
            budget,
            spill: SpillDir::new().expect("cannot create spill directory"),
            path: ExecPath::default(),
            parallelism: default_parallelism(),
            statements: 0,
            rows_returned: 0,
        }
    }

    /// Select the physical execution path for subsequent queries
    /// ([`ExecPath::Batch`] is the default).
    pub fn set_exec_path(&mut self, path: ExecPath) {
        self.path = path;
    }

    /// The currently selected execution path.
    pub fn exec_path(&self) -> ExecPath {
        self.path
    }

    /// Cap the batch executor's morsel-parallel worker pool at `n` threads
    /// (clamped to at least 1). `1` reproduces single-threaded execution
    /// exactly; the default is the host core count (or `QYMERA_PARALLELISM`
    /// when that environment variable is set).
    pub fn set_parallelism(&mut self, n: usize) {
        self.parallelism = n.max(1);
    }

    /// The configured worker-pool size for parallel batch execution.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The shared memory ledger charged by tables and operators.
    pub fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    pub fn stats(&self) -> DbStats {
        DbStats {
            statements_executed: self.statements,
            rows_returned: self.rows_returned,
            spill_files: self.spill.files_created(),
            spill_bytes: self.spill.bytes_written(),
            peak_memory_bytes: self.budget.peak(),
        }
    }

    fn ctx(&self) -> ExecContext {
        ExecContext {
            budget: self.budget.clone(),
            spill: Arc::clone(&self.spill),
            parallelism: self.parallelism,
            instrument: None,
        }
    }

    /// Build a row source for an already-optimized plan on the selected
    /// execution path. The batch path is adapted to rows at the very top —
    /// every operator below still runs vectorized.
    fn build_row_source(&self, plan: &Plan, ctx: &ExecContext) -> Result<Box<dyn RowStream>> {
        Ok(match self.path {
            ExecPath::Batch => {
                Box::new(BatchToRow::new(build_batch_stream(plan, &self.catalog, ctx)?))
            }
            ExecPath::Row => build_stream(plan, &self.catalog, ctx)?,
        })
    }

    /// `EXPLAIN ANALYZE`: execute the query with per-operator instrumentation
    /// and render the plan annotated with row counts and inclusive times.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String> {
        use std::cell::RefCell;
        use std::rc::Rc;
        let st = parse_statement(sql)?;
        let Statement::Query(q) = st else {
            return Err(Error::Plan("EXPLAIN ANALYZE requires a query".into()));
        };
        let plan = optimize(plan_query(&q, &self.catalog)?);
        let (nodes, total_rows) = with_exec_stack(plan.depth(), || {
            let stats = Rc::new(RefCell::new(Vec::new()));
            let mut ctx = self.ctx();
            ctx.instrument = Some(Rc::clone(&stats));
            let mut stream = self.build_row_source(&plan, &ctx)?;
            let mut total_rows = 0u64;
            while stream.next_row()?.is_some() {
                total_rows += 1;
            }
            drop(stream);
            let nodes: Vec<_> = stats.borrow().clone();
            Ok::<_, Error>((nodes, total_rows))
        })?;
        let mut out = String::new();
        for node in nodes.iter() {
            let batches = if node.batches_out > 0 {
                format!("batches={:<6} ", node.batches_out)
            } else {
                String::new()
            };
            let parallel = if node.workers > 0 {
                format!("workers={:<3} morsels={:<6} ", node.workers, node.morsels)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{}{:<28} rows={:<9} {}{}time={:.3} ms
",
                "  ".repeat(node.depth),
                node.label,
                node.rows_out,
                batches,
                parallel,
                node.nanos as f64 / 1e6
            ));
        }
        out.push_str(&format!("total output rows: {total_rows}
"));
        Ok(out)
    }

    /// Execute a single SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet> {
        let st = parse_statement(sql)?;
        self.execute_statement(st)
    }

    /// Execute a `;`-separated script; returns the last statement's result.
    pub fn execute_script(&mut self, sql: &str) -> Result<ResultSet> {
        let statements = parse_script(sql)?;
        let mut last = ResultSet::dml(0);
        for st in statements {
            last = self.execute_statement(st)?;
        }
        Ok(last)
    }

    /// Execute an already-parsed statement.
    pub fn execute_statement(&mut self, st: Statement) -> Result<ResultSet> {
        self.statements += 1;
        match st {
            Statement::CreateTable { name, columns, if_not_exists } => {
                self.catalog.create_table(&name, columns, if_not_exists, self.budget.clone())?;
                Ok(ResultSet::dml(0))
            }
            Statement::DropTable { name, if_exists } => {
                self.catalog.drop_table(&name, if_exists)?;
                Ok(ResultSet::dml(0))
            }
            Statement::Insert { table, columns, rows } => {
                let n = self.run_insert(&table, columns.as_deref(), rows)?;
                Ok(ResultSet::dml(n))
            }
            Statement::Delete { table, where_clause } => {
                let schema = self.catalog.get(&table)?.schema();
                let predicate = match &where_clause {
                    Some(w) => Some(bind(w, &schema)?),
                    None => None,
                };
                let t = self.catalog.get_mut(&table)?;
                let n = t.delete_where(|row| match &predicate {
                    Some(p) => Ok(p.eval(row)?.as_bool()? == Some(true)),
                    None => Ok(true),
                })?;
                Ok(ResultSet::dml(n))
            }
            Statement::Explain(q) => {
                let plan = optimize(plan_query(&q, &self.catalog)?);
                let rows: Vec<Row> = plan
                    .explain()
                    .lines()
                    .map(|l| vec![Value::Str(l.to_string())])
                    .collect();
                Ok(ResultSet { columns: vec!["plan".to_string()], rows, affected: 0 })
            }
            Statement::Query(q) => {
                let plan = optimize(plan_query(&q, &self.catalog)?);
                let schema = plan.schema();
                let rows = with_exec_stack(plan.depth(), || {
                    let ctx = self.ctx();
                    let mut stream = self.build_row_source(&plan, &ctx)?;
                    let mut rows = Vec::new();
                    while let Some(row) = stream.next_row()? {
                        rows.push(row);
                    }
                    Ok::<_, Error>(rows)
                })?;
                self.rows_returned += rows.len() as u64;
                Ok(ResultSet { columns: schema.names(), rows, affected: 0 })
            }
        }
    }

    /// `CREATE TABLE <name> AS <query>`: streams the query result into a new
    /// table, charging the budget incrementally (the out-of-core CTAS path
    /// used by the Qymera runner to materialize intermediate states).
    pub fn create_table_as(&mut self, name: &str, sql: &str) -> Result<usize> {
        let st = parse_statement(sql)?;
        let Statement::Query(q) = st else {
            return Err(Error::Plan("CREATE TABLE AS requires a query".into()));
        };
        let plan = optimize(plan_query(&q, &self.catalog)?);
        let depth = plan.depth();
        with_exec_stack(depth, move || self.create_table_as_exec(name, plan))
    }

    /// Execution half of [`Self::create_table_as`] (runs on the execution
    /// stack for deep plans).
    fn create_table_as_exec(&mut self, name: &str, plan: Plan) -> Result<usize> {
        let schema = plan.schema();
        let ctx = self.ctx();
        let mut stream = self.build_row_source(&plan, &ctx)?;

        // Column types are inferred from the first row; later rows must
        // coerce losslessly (the Qymera translator guarantees this by casting
        // `s` explicitly when states are wider than 63 bits).
        let mut first_rows = Vec::new();
        let first = stream.next_row()?;
        let types: Vec<DataType> = match &first {
            Some(row) => row.iter().map(infer_type).collect(),
            None => vec![DataType::Double; schema.len()],
        };
        if let Some(r) = first {
            first_rows.push(r);
        }
        let columns: Vec<(String, DataType)> = schema
            .names()
            .into_iter()
            .zip(types)
            .collect();
        self.catalog.create_table(name, columns, false, self.budget.clone())?;

        let mut inserted = 0usize;
        const CHUNK: usize = 4096;
        let mut buf = first_rows;
        loop {
            while buf.len() < CHUNK {
                match stream.next_row()? {
                    Some(r) => buf.push(r),
                    None => break,
                }
            }
            if buf.is_empty() {
                break;
            }
            // `load_rows` coerces and appends straight into the table's
            // typed column builders (chunked columnar storage).
            inserted += self.catalog.get_mut(name)?.load_rows(std::mem::take(&mut buf))?;
        }
        Ok(inserted)
    }

    /// Bulk-load pre-built rows (bypasses SQL parsing; used by the Qymera
    /// translator for gate/state tables, mirroring a native loader API).
    /// Rows stream into the table's typed column builders; a coercion error
    /// or budget overrun inserts nothing.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<usize> {
        self.catalog.get_mut(table)?.load_rows(rows)
    }

    /// Output schema a query would produce, without executing it.
    pub fn query_schema(&self, sql: &str) -> Result<RelSchema> {
        let st = parse_statement(sql)?;
        let Statement::Query(q) = st else {
            return Err(Error::Plan("not a query".into()));
        };
        Ok(plan_query(&q, &self.catalog)?.schema())
    }

    /// EXPLAIN-style plan rendering.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let st = parse_statement(sql)?;
        let Statement::Query(q) = st else {
            return Err(Error::Plan("EXPLAIN requires a query".into()));
        };
        Ok(optimize(plan_query(&q, &self.catalog)?).explain())
    }

    pub fn table_names(&self) -> Vec<String> {
        self.catalog.table_names()
    }

    pub fn table_row_count(&self, name: &str) -> Result<usize> {
        Ok(self.catalog.get(name)?.row_count())
    }

    pub fn drop_table_if_exists(&mut self, name: &str) -> Result<()> {
        self.catalog.drop_table(name, true)
    }

    fn run_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: Vec<Vec<crate::ast::Expr>>,
    ) -> Result<usize> {
        let empty_schema = RelSchema::default();
        let t = self.catalog.get(table)?;
        let ncols = t.columns().len();
        // Map provided column order to table order.
        let mapping: Vec<usize> = match columns {
            Some(cols) => {
                let mut m = Vec::with_capacity(cols.len());
                for c in cols {
                    let idx = t
                        .columns()
                        .iter()
                        .position(|(n, _)| n.eq_ignore_ascii_case(c))
                        .ok_or_else(|| {
                            Error::Plan(format!("unknown column `{c}` in INSERT"))
                        })?;
                    m.push(idx);
                }
                m
            }
            None => (0..ncols).collect(),
        };
        let mut evaluated = Vec::with_capacity(rows.len());
        for exprs in rows {
            if exprs.len() != mapping.len() {
                return Err(Error::Plan(format!(
                    "INSERT expects {} values, got {}",
                    mapping.len(),
                    exprs.len()
                )));
            }
            let mut full = vec![Value::Null; ncols];
            for (expr, &target) in exprs.iter().zip(&mapping) {
                let bexpr = bind(expr, &empty_schema)?;
                full[target] = bexpr.eval(&vec![])?;
            }
            evaluated.push(full);
        }
        self.catalog.get_mut(table)?.load_rows(evaluated)
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

/// Infer a column type from a sample value (CTAS).
fn infer_type(v: &Value) -> DataType {
    match v {
        Value::Int(_) => DataType::Integer,
        Value::Float(_) => DataType::Double,
        Value::Str(_) => DataType::Text,
        Value::Big(_) => DataType::HugeInt,
        Value::Null => DataType::Double,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz_db() -> Database {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE T0 (s INTEGER, r DOUBLE, i DOUBLE); \
             INSERT INTO T0 VALUES (0, 1.0, 0.0); \
             CREATE TABLE H (in_s INTEGER, out_s INTEGER, r DOUBLE, i DOUBLE); \
             INSERT INTO H VALUES (0, 0, 0.7071067811865476, 0.0), \
                                  (0, 1, 0.7071067811865476, 0.0), \
                                  (1, 0, 0.7071067811865476, 0.0), \
                                  (1, 1, -0.7071067811865476, 0.0); \
             CREATE TABLE CX (in_s INTEGER, out_s INTEGER, r DOUBLE, i DOUBLE); \
             INSERT INTO CX VALUES (0, 0, 1.0, 0.0), (1, 3, 1.0, 0.0), \
                                   (2, 2, 1.0, 0.0), (3, 1, 1.0, 0.0);",
        )
        .unwrap();
        db
    }

    #[test]
    fn fig2_full_cte_chain_produces_ghz() {
        // The exact query of Fig. 2c, three gates on |000⟩.
        let mut db = ghz_db();
        let sql = "WITH T1 AS (
              SELECT ((T0.s & ~1) | H.out_s) AS s,
                     SUM((T0.r * H.r) - (T0.i * H.i)) AS r,
                     SUM((T0.r * H.i) + (T0.i * H.r)) AS i
              FROM T0 JOIN H ON H.in_s = (T0.s & 1)
              GROUP BY ((T0.s & ~1) | H.out_s)),
            T2 AS (
              SELECT ((T1.s & ~3) | CX.out_s) AS s,
                     SUM((T1.r * CX.r) - (T1.i * CX.i)) AS r,
                     SUM((T1.r * CX.i) + (T1.i * CX.r)) AS i
              FROM T1 JOIN CX ON CX.in_s = (T1.s & 3)
              GROUP BY ((T1.s & ~3) | CX.out_s)),
            T3 AS (
              SELECT ((T2.s & ~6) | (CX.out_s << 1)) AS s,
                     SUM((T2.r * CX.r) - (T2.i * CX.i)) AS r,
                     SUM((T2.r * CX.i) + (T2.i * CX.r)) AS i
              FROM T2 JOIN CX ON CX.in_s = ((T2.s >> 1) & 3)
              GROUP BY ((T2.s & ~6) | (CX.out_s << 1)))
            SELECT s, r, i FROM T3 ORDER BY s";
        let rs = db.execute(sql).unwrap();
        assert_eq!(rs.columns(), &["s", "r", "i"]);
        assert_eq!(rs.rows().len(), 2, "GHZ state has two basis states");
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert_eq!(rs.rows()[0][0], Value::Int(0));
        assert!((rs.rows()[0][1].as_f64().unwrap() - inv_sqrt2).abs() < 1e-12);
        assert_eq!(rs.rows()[1][0], Value::Int(7));
        assert!((rs.rows()[1][1].as_f64().unwrap() - inv_sqrt2).abs() < 1e-12);
    }

    #[test]
    fn insert_with_column_list_and_delete() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        let rs = db.execute("INSERT INTO t (b, a) VALUES ('x', 1), ('y', 2)").unwrap();
        assert_eq!(rs.affected(), 2);
        let rs = db.execute("SELECT a FROM t WHERE b = 'x'").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1)));
        let rs = db.execute("DELETE FROM t WHERE a = 1").unwrap();
        assert_eq!(rs.affected(), 1);
        assert_eq!(db.table_row_count("t").unwrap(), 1);
    }

    #[test]
    fn create_table_as_streams_rows() {
        let mut db = ghz_db();
        let n = db
            .create_table_as("T1", "SELECT ((T0.s & ~1) | H.out_s) AS s, \
                 SUM((T0.r * H.r) - (T0.i * H.i)) AS r, \
                 SUM((T0.r * H.i) + (T0.i * H.r)) AS i \
                 FROM T0 JOIN H ON H.in_s = (T0.s & 1) \
                 GROUP BY ((T0.s & ~1) | H.out_s)")
            .unwrap();
        assert_eq!(n, 2);
        let rs = db.execute("SELECT COUNT(*) FROM T1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn stats_track_execution() {
        let mut db = ghz_db();
        let before = db.stats();
        db.execute("SELECT * FROM H").unwrap();
        let after = db.stats();
        assert_eq!(after.statements_executed, before.statements_executed + 1);
        assert_eq!(after.rows_returned, before.rows_returned + 4);
        assert!(after.peak_memory_bytes > 0);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut db = Database::new();
        assert!(db.execute("SELECT * FROM missing").is_err());
        assert!(db.execute("SELEC 1").is_err());
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        assert!(db.execute("INSERT INTO t VALUES (1, 2)").is_err());
        assert!(db.execute("INSERT INTO t VALUES ('text')").is_err());
    }

    #[test]
    fn memory_limited_db_spills_on_aggregate() {
        // Budget fits the 50k-row base table (~1.2 MB in columnar chunks)
        // but not the 20k-group aggregation state on top of it, forcing the
        // operator to spill.
        let mut db = Database::with_memory_limit(2 * 1024 * 1024);
        db.execute("CREATE TABLE big (k INTEGER, v DOUBLE)").unwrap();
        let rows: Vec<Row> = (0..50_000)
            .map(|i| vec![Value::Int(i % 20_000), Value::Float(0.5)])
            .collect();
        db.insert_rows("big", rows).unwrap();
        let rs = db
            .execute("SELECT k, SUM(v) AS total FROM big GROUP BY k ORDER BY k LIMIT 3")
            .unwrap();
        assert_eq!(rs.rows().len(), 3);
        assert!(db.stats().spill_files > 0, "expected the aggregate to spill");
    }

    #[test]
    fn to_table_string_renders() {
        let mut db = ghz_db();
        let rs = db.execute("SELECT in_s, out_s FROM CX ORDER BY in_s").unwrap();
        let s = rs.to_table_string();
        assert!(s.contains("in_s"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    fn explain_returns_plan() {
        let db = ghz_db();
        let text = db.explain("SELECT s FROM T0 WHERE s = 0").unwrap();
        assert!(text.contains("Scan T0"));
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;

    #[test]
    fn explain_statement_returns_plan_rows() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
        let rs = db.execute("EXPLAIN SELECT a FROM t WHERE a > 1 ORDER BY a").unwrap();
        assert_eq!(rs.columns(), &["plan"]);
        let text: Vec<String> = rs.rows().iter().map(|r| r[0].to_string()).collect();
        assert!(text.iter().any(|l| l.contains("Scan t")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("Sort")), "{text:?}");
    }

    #[test]
    fn explain_shows_pushdown() {
        let mut db = Database::new();
        db.execute("CREATE TABLE a (x INTEGER)").unwrap();
        db.execute("CREATE TABLE b (y INTEGER)").unwrap();
        let rs = db
            .execute("EXPLAIN SELECT x FROM a JOIN b ON a.x = b.y WHERE a.x > 3")
            .unwrap();
        let text = rs
            .rows()
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join("\n");
        // the filter on a.x must sit below the join after optimization
        let join_pos = text.find("Join").unwrap();
        let filter_pos = text.find("Filter").unwrap();
        assert!(filter_pos > join_pos, "filter should be pushed under the join:\n{text}");
    }
}

#[cfg(test)]
mod explain_analyze_tests {
    use super::*;

    #[test]
    fn explain_analyze_reports_rows_per_operator() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        let rows: Vec<Row> = (0..100).map(|i| vec![Value::Int(i)]).collect();
        db.insert_rows("t", rows).unwrap();
        let text = db
            .explain_analyze("SELECT a FROM t WHERE a < 10 ORDER BY a DESC")
            .unwrap();
        assert!(text.contains("Scan t"), "{text}");
        assert!(text.contains("rows=100"), "scan emits all rows:\n{text}");
        assert!(text.contains("rows=10"), "filter passes 10 rows:\n{text}");
        assert!(text.contains("total output rows: 10"), "{text}");
    }

    #[test]
    fn explain_analyze_join_aggregate_shape() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE s (k INTEGER, v DOUBLE); \
             INSERT INTO s VALUES (0, 1.0), (1, 2.0), (0, 3.0); \
             CREATE TABLE g (k INTEGER, w DOUBLE); \
             INSERT INTO g VALUES (0, 10.0), (1, 20.0);",
        )
        .unwrap();
        let text = db
            .explain_analyze(
                "SELECT s.k, SUM(s.v * g.w) FROM s JOIN g ON s.k = g.k GROUP BY s.k",
            )
            .unwrap();
        assert!(text.contains("Join"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
        assert!(text.contains("total output rows: 2"), "{text}");
    }
}
