//! The embedded database façade.
//!
//! ```
//! use qymera_sqldb::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE T0 (s INTEGER, r DOUBLE, i DOUBLE)").unwrap();
//! db.execute("INSERT INTO T0 VALUES (0, 1.0, 0.0)").unwrap();
//! let rs = db.execute("SELECT s, r FROM T0 ORDER BY s").unwrap();
//! assert_eq!(rs.rows().len(), 1);
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use crate::ast::{DataType, Expr, Statement};
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::exec::govern::{self, AdmissionController, CancelHandle, QueryContext};
use crate::exec::vector::{build_batch_stream, BatchToRow};
use crate::exec::{build_stream, ExecContext, RowStream};
use crate::expr::bind;
use crate::parser::{parse_script, parse_statement};
use crate::plan::logical::{plan_query, Plan};
use crate::plan::optimizer::optimize;
use crate::schema::RelSchema;
use crate::storage::budget::MemoryBudget;
use crate::storage::fault::FaultInjector;
use crate::storage::spill::{Row, SpillDir};
use crate::storage::wal::{
    CkptSource, DurableStore, FsyncPolicy, Recovered, WalOp, DEFAULT_CHECKPOINT_BYTES,
};
use crate::txn::lock::{LockGuard, LockTable};
use crate::txn::{SavepointMark, TxnState, UndoEntry};
use crate::value::Value;

/// Plans deeper than this run their pull pipeline on a dedicated thread with
/// a large stack. The translator emits one CTE (join + aggregate + project)
/// per gate, so plan depth grows linearly with circuit length, and both
/// executors keep one live frame set per pipeline stage while the top
/// aggregate's consume phase is in flight.
const DEEP_PLAN_DEPTH: usize = 64;

/// Stack size for the dedicated execution thread (fits thousands of gates).
const EXEC_STACK_BYTES: usize = 512 * 1024 * 1024;

/// Run `f` on the caller's stack for shallow plans, or on a dedicated
/// big-stack thread for deep ones (a CTE chain of hundreds of gates would
/// otherwise overflow the default thread stack mid-pipeline).
fn with_exec_stack<T: Send>(depth: usize, f: impl FnOnce() -> T + Send) -> T {
    if depth <= DEEP_PLAN_DEPTH {
        return f();
    }
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .name("qymera-exec".into())
            .stack_size(EXEC_STACK_BYTES)
            // SAFETY of expect: spawn only fails when the OS refuses a new
            // thread (resource exhaustion); with no thread to run on there is
            // no way to make progress, so aborting loudly beats limping on
            // the shallow stack and overflowing mid-pipeline.
            .spawn_scoped(s, f)
            .expect("cannot spawn execution thread")
            .join()
            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
    })
}

/// Which physical execution path queries run on.
///
/// The vectorized [`ExecPath::Batch`] path is the default and covers every
/// plan shape — sorts, outer/cross/non-equi joins, and DISTINCT aggregates
/// included; the row path is kept purely as the independent reference
/// implementation (row/batch equivalence is enforced by tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPath {
    /// Vectorized batch-at-a-time execution over columnar [`RowBatch`]
    /// chunks (see [`crate::exec::vector`]).
    ///
    /// [`RowBatch`]: crate::exec::batch::RowBatch
    #[default]
    Batch,
    /// Row-at-a-time pull execution (`RowStream`), one virtual call per row.
    Row,
}

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Row>,
    /// Rows inserted/deleted for DML; 0 for queries and DDL.
    affected: usize,
}

impl ResultSet {
    pub(crate) fn dml(affected: usize) -> Self {
        ResultSet { columns: Vec::new(), rows: Vec::new(), affected }
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    pub fn affected(&self) -> usize {
        self.affected
    }

    /// Single scalar convenience accessor (first column of first row).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as an aligned text table (for examples and the CLI).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() && cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths.get(i).copied().unwrap_or(0)));
            }
            out.push('\n');
        }
        out
    }
}

/// Execution statistics, cumulative over the database lifetime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DbStats {
    pub statements_executed: u64,
    pub rows_returned: u64,
    pub spill_files: u64,
    pub spill_bytes: u64,
    /// High-water mark of the memory ledger in bytes.
    pub peak_memory_bytes: usize,
}

/// An embedded database instance. Statement execution is driven from the
/// caller's thread; with [`Database::set_parallelism`] above 1 (the default
/// follows the host's core count) the batch executor fans eligible pipeline
/// stages out over a morsel-parallel worker pool.
pub struct Database {
    catalog: Catalog,
    budget: MemoryBudget,
    spill: Arc<SpillDir>,
    path: ExecPath,
    parallelism: usize,
    statements: u64,
    rows_returned: u64,
    /// WAL + checkpoint store when opened with [`Database::open`];
    /// `None` for in-memory databases (the default and fast path).
    durable: Option<DurableStore>,
    /// Fault-injection gate shared by every disk path (WAL, checkpoint,
    /// spill). A zero-cost passthrough in release builds.
    injector: Arc<FaultInjector>,
    /// Session interrupt flag, exposed via [`Database::cancel_handle`] and
    /// observed by every statement started while it is set.
    interrupt: CancelHandle,
    /// Per-statement deadline in milliseconds (`None` = no deadline).
    timeout_ms: Option<u64>,
    /// Per-query memory grant in bytes (`None` = the full global budget).
    query_grant: Option<usize>,
    /// Deterministic cancel injection: latch a cancel at the n-th
    /// governance poll of each subsequent statement (tests/fuzzer knob).
    cancel_after_polls: Option<u64>,
    /// Bounded concurrent-statement admission (shareable across handles).
    admission: AdmissionController,
    /// Governance token of the statement in flight (or most recently run);
    /// [`Database::ctx`] embeds a clone so operators can observe it.
    query: QueryContext,
    /// Process slot on the durable directory (`QYMERA_DB_SLOTS`); held for
    /// the lifetime of the open, released (file removed) on drop.
    _slot: Option<govern::SlotGuard>,
    /// Open transactions, keyed by session id. Session `0` is the plain
    /// [`Database::execute`] caller; [`crate::txn::Session`]s get ids ≥ 1.
    txns: HashMap<u64, TxnState>,
    /// Table lock manager shared with [`crate::txn::SharedDb`] sessions
    /// (the plain session never contends, so it skips lock acquisition).
    locks: Arc<LockTable>,
}

/// Configuration for [`Database::open_with`].
pub struct DurabilityOptions {
    /// When WAL bytes are forced to stable storage (default: the
    /// `QYMERA_FSYNC` environment knob, falling back to per-commit).
    pub fsync: FsyncPolicy,
    /// Auto-checkpoint once the WAL exceeds this many bytes (0 = never).
    pub checkpoint_every_bytes: u64,
    /// Memory ledger shared by tables and operators.
    pub budget: MemoryBudget,
    /// Fault-injection gate for every disk path (tests arm schedules on
    /// it; production passes the default quiescent injector).
    pub injector: Arc<FaultInjector>,
    /// Cap on processes concurrently opening this directory (lock files
    /// under `<dir>/slots/`). `None` reads `QYMERA_DB_SLOTS`; 0 disables.
    pub process_slots: Option<usize>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::from_env(),
            checkpoint_every_bytes: DEFAULT_CHECKPOINT_BYTES,
            budget: MemoryBudget::unlimited(),
            injector: FaultInjector::none(),
            process_slots: None,
        }
    }
}

/// Worker threads a fresh [`Database`] allows the batch executor: the
/// `QYMERA_PARALLELISM` environment variable when set (a positive integer;
/// `1` forces fully sequential execution), otherwise the host's available
/// core count. An unparsable value panics rather than silently falling
/// back to full parallelism — the variable exists precisely so CI can pin
/// sequential semantics, and ignoring a typo would invert that guarantee.
fn default_parallelism() -> usize {
    if let Ok(raw) = std::env::var("QYMERA_PARALLELISM") {
        match raw.trim().parse::<usize>() {
            Ok(n) => return n.max(1),
            Err(_) => panic!(
                "QYMERA_PARALLELISM must be a non-negative integer, got `{raw}`"
            ),
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl Database {
    /// Unlimited memory budget (usage is still tracked).
    pub fn new() -> Self {
        Self::with_budget(MemoryBudget::unlimited())
    }

    /// Database whose operators and tables share `budget`; exceeding it makes
    /// operators spill to disk (or fail where spilling is impossible).
    pub fn with_memory_limit(bytes: usize) -> Self {
        Self::with_budget(MemoryBudget::with_limit(bytes))
    }

    /// Database over an externally shared [`MemoryBudget`].
    pub fn with_budget(budget: MemoryBudget) -> Self {
        let injector = FaultInjector::none();
        Database {
            catalog: Catalog::new(),
            budget,
            spill: SpillDir::new_with(Arc::clone(&injector))
                .expect("cannot create spill directory"),
            path: ExecPath::default(),
            parallelism: default_parallelism(),
            statements: 0,
            rows_returned: 0,
            durable: None,
            injector,
            interrupt: CancelHandle::new(),
            timeout_ms: None,
            query_grant: None,
            cancel_after_polls: None,
            admission: AdmissionController::default(),
            query: QueryContext::unbounded(),
            _slot: None,
            txns: HashMap::new(),
            locks: Arc::new(LockTable::new()),
        }
    }

    /// Open (or create) a **durable** database rooted at `dir`: every
    /// mutation is written ahead to a checksummed log and survives a
    /// crash; reopening recovers the last checkpoint plus the committed
    /// WAL prefix, tolerating a torn tail. Query execution is identical to
    /// an in-memory database.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// [`Database::open`] with explicit [`DurabilityOptions`].
    pub fn open_with(dir: impl AsRef<Path>, opts: DurabilityOptions) -> Result<Self> {
        let injector = opts.injector;
        // Admission before any WAL touch: a process turned away at the slot
        // gate must leave the directory exactly as it found it.
        let slots = opts.process_slots.unwrap_or_else(govern::env_db_slots);
        let slot = govern::acquire_process_slot(dir.as_ref(), slots)?;
        let (mut store, recovered) =
            DurableStore::open(dir.as_ref(), opts.fsync, Arc::clone(&injector))?;
        store.checkpoint_every_bytes = opts.checkpoint_every_bytes;
        let mut db = Database {
            catalog: Catalog::new(),
            budget: opts.budget,
            spill: SpillDir::new_with(Arc::clone(&injector))?,
            path: ExecPath::default(),
            parallelism: default_parallelism(),
            statements: 0,
            rows_returned: 0,
            durable: None,
            injector,
            interrupt: CancelHandle::new(),
            timeout_ms: None,
            query_grant: None,
            cancel_after_polls: None,
            admission: AdmissionController::default(),
            query: QueryContext::unbounded(),
            _slot: slot,
            txns: HashMap::new(),
            locks: Arc::new(LockTable::new()),
        };
        db.apply_recovered(recovered)?;
        db.durable = Some(store);
        Ok(db)
    }

    /// Rebuild in-memory state from a recovered checkpoint and committed
    /// WAL frames. Runs before the store is attached, so replay applies to
    /// memory only and is never re-logged.
    fn apply_recovered(&mut self, recovered: Recovered) -> Result<()> {
        if let Some((_, tables)) = recovered.checkpoint {
            for t in tables {
                self.catalog.create_table(&t.name, t.columns, false, self.budget.clone())?;
                self.catalog.get_mut(&t.name)?.load_rows(t.rows)?;
            }
        }
        for frame in recovered.frames {
            for op in frame.ops {
                self.apply_wal_op(op)?;
            }
        }
        Ok(())
    }

    /// Apply one recovered WAL operation to the in-memory catalog.
    fn apply_wal_op(&mut self, op: WalOp) -> Result<()> {
        match op {
            WalOp::CreateTable { name, columns } => {
                self.catalog.create_table(&name, columns, false, self.budget.clone())?;
            }
            WalOp::DropTable { name } => {
                self.catalog.drop_table(&name, false)?;
            }
            WalOp::Insert { table, rows } => {
                self.catalog.get_mut(&table)?.load_rows(rows)?;
            }
            WalOp::Delete { table, predicate } => {
                // Predicates are logged as SQL text; expressions are pure,
                // so re-parsing and re-evaluating replays deterministically.
                let where_clause = match predicate {
                    None => None,
                    Some(text) => {
                        let sql = format!("DELETE FROM {table} WHERE {text}");
                        match parse_statement(&sql)? {
                            Statement::Delete { where_clause, .. } => where_clause,
                            _ => {
                                return Err(Error::Internal(
                                    "logged DELETE predicate did not re-parse".into(),
                                ))
                            }
                        }
                    }
                };
                self.run_delete(&table, where_clause.as_ref())?;
            }
        }
        Ok(())
    }

    /// The database directory when opened with [`Database::open`].
    pub fn storage_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(DurableStore::dir)
    }

    /// The fault-injection gate shared by this database's disk paths
    /// (spill, and WAL/checkpoint when durable). Quiescent unless a test
    /// arms it; all methods are no-ops in release builds.
    pub fn fault_injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// External interrupt handle for this session. Clone it into any thread
    /// (e.g. a Ctrl-C handler) and call [`CancelHandle::cancel`] to stop the
    /// statement in flight with [`Error::Cancelled`] — cooperatively, so the
    /// ledger, spill directory, and WAL are left exactly as after any other
    /// statement error. The flag is sticky: clear it with
    /// [`CancelHandle::reset`] before executing further statements.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.interrupt.clone()
    }

    /// Replace the session interrupt handle (e.g. to share one Ctrl-C flag
    /// across several databases). Affects statements started afterwards.
    pub fn set_cancel_handle(&mut self, handle: CancelHandle) {
        self.interrupt = handle;
    }

    /// Deadline applied to every subsequent statement; exceeding it fails
    /// the statement with [`Error::Timeout`] at the next operator
    /// checkpoint (one batch / morsel / spill run). `None` disables.
    pub fn set_statement_timeout_ms(&mut self, ms: Option<u64>) {
        self.timeout_ms = ms.filter(|&ms| ms > 0);
    }

    /// The configured per-statement timeout.
    pub fn statement_timeout_ms(&self) -> Option<u64> {
        self.timeout_ms
    }

    /// Per-query memory grant in bytes for subsequent statements: operators
    /// whose in-memory holding could never fit the grant fail admission with
    /// [`Error::OutOfMemory`] *before* allocating (spillable operators only
    /// need one batch at a time and are unaffected until even that exceeds
    /// the grant). `None` restores the full global budget.
    pub fn set_query_grant(&mut self, bytes: Option<usize>) {
        self.query_grant = bytes;
    }

    /// Deterministic cancel injection for tests and the cancellation
    /// fuzzer: every subsequent statement latches a cooperative cancel at
    /// its `n`-th governance poll (entry, per-batch, per-morsel, per-spill
    /// run, pre-commit — wherever [`QueryContext::check`] runs). `None`
    /// disarms.
    pub fn arm_cancel_after_polls(&mut self, n: Option<u64>) {
        self.cancel_after_polls = n;
    }

    /// Replace the admission controller (clone one controller into several
    /// `Database` handles to bound their *combined* concurrency).
    pub fn set_admission_controller(&mut self, ctl: AdmissionController) {
        self.admission = ctl;
    }

    /// The admission controller bounding concurrent statements.
    pub fn admission_controller(&self) -> &AdmissionController {
        &self.admission
    }

    /// Governance token of the statement currently in flight (or the most
    /// recently finished one). Tests use it to read the cancellation-latency
    /// meter ([`QueryContext::units_after_cancel`]).
    pub fn last_query_context(&self) -> QueryContext {
        self.query.clone()
    }

    /// Mint the governance token for one statement and make it current.
    fn begin_query(&mut self) -> QueryContext {
        let q = QueryContext::begin(
            self.timeout_ms,
            self.query_grant,
            self.interrupt.flag(),
            self.cancel_after_polls,
        );
        self.query = q.clone();
        q
    }

    /// Serialize the **committed** state of all tables into a new
    /// checkpoint image. Between transactions that is the live catalog and
    /// the WAL is truncated behind the image; while a transaction is open
    /// the image is built from the transactions' undo stacks (each table's
    /// pre-transaction state) and the WAL is kept so the in-flight frames
    /// stay replayable. Errors with [`Error::Unsupported`] on an in-memory
    /// database.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.durable.is_none() {
            return Err(Error::Unsupported(
                "checkpoint requires a database opened with a path".into(),
            ));
        }
        let keep_wal = self.txns.values().any(|t| t.wal_txn.is_some());
        let sources = self.committed_sources();
        let store = self.durable.as_mut().expect("checked above");
        store.checkpoint(&sources, keep_wal)
    }

    /// Whether the write-ahead log is poisoned (a failed truncate-repair
    /// left it refusing appends). A poisoned log self-heals via a forced
    /// checkpoint at the next statement boundary with no open transaction.
    /// Always `false` for in-memory databases.
    pub fn wal_poisoned(&self) -> bool {
        self.durable.as_ref().is_some_and(DurableStore::is_poisoned)
    }

    /// The committed view of every table, sorted by name: the live catalog,
    /// overridden per table by the *first* undo entry any open transaction
    /// holds for it (strict 2PL guarantees at most one transaction has
    /// touched a given table).
    fn committed_sources(&self) -> Vec<CkptSource> {
        enum View<'a> {
            /// Mutated in-txn: the pre-transaction chunk snapshot.
            Snapshot(&'a crate::table::TableUndo),
            /// Created in-txn: absent from committed state.
            Absent,
            /// Dropped in-txn: the stashed table is the committed state.
            Stashed(&'a crate::table::Table),
        }
        let mut views: HashMap<String, View> = HashMap::new();
        for txn in self.txns.values() {
            for entry in &txn.undo {
                let (key, view) = match entry {
                    UndoEntry::Mutated { table, undo } => {
                        (table.to_ascii_lowercase(), View::Snapshot(undo))
                    }
                    UndoEntry::Created { name } => {
                        (name.to_ascii_lowercase(), View::Absent)
                    }
                    UndoEntry::Dropped { table } => {
                        (table.name().to_ascii_lowercase(), View::Stashed(table))
                    }
                };
                // First touch wins: the oldest entry holds the state from
                // before the transaction.
                views.entry(key).or_insert(view);
            }
        }
        let mut sources = Vec::new();
        for t in self.catalog.tables_sorted() {
            match views.get(&t.name().to_ascii_lowercase()) {
                None => sources.push(CkptSource {
                    name: t.name().to_string(),
                    columns: t.columns().to_vec(),
                    rows: t.row_count(),
                    snapshot: t.snapshot(),
                }),
                Some(View::Snapshot(undo)) => sources.push(CkptSource {
                    name: t.name().to_string(),
                    columns: t.columns().to_vec(),
                    rows: undo.rows(),
                    snapshot: undo.snapshot(),
                }),
                // Created (or dropped-then-recreated) inside an open
                // transaction: the live table is uncommitted.
                Some(View::Absent) | Some(View::Stashed(_)) => {}
            }
        }
        for view in views.values() {
            if let View::Stashed(table) = view {
                sources.push(CkptSource {
                    name: table.name().to_string(),
                    columns: table.columns().to_vec(),
                    rows: table.row_count(),
                    snapshot: table.snapshot(),
                });
            }
        }
        sources.sort_by(|a, b| a.name.cmp(&b.name));
        sources
    }

    /// Auto-checkpoint after a committed mutation once the WAL is large.
    /// Deferred while any transaction is open (a keep-tail checkpoint
    /// cannot shrink the log, so re-triggering every statement would just
    /// burn I/O). Failures are swallowed: the statement already committed,
    /// the WAL still covers everything, and the next trigger will retry.
    fn maybe_auto_checkpoint(&mut self) {
        if !self.txns.is_empty() {
            return;
        }
        if self.durable.as_ref().is_some_and(DurableStore::wants_checkpoint) {
            let _ = self.checkpoint();
        }
    }

    /// Self-heal a poisoned WAL (a failed truncate-repair left the log
    /// refusing appends): once no transaction is open, force a full
    /// checkpoint at the next statement boundary — the image captures the
    /// current committed state and the log is reset behind it. Swallows
    /// failures; the statement then surfaces the poisoned-log error and
    /// the next statement retries the heal.
    fn maybe_heal_poisoned(&mut self) {
        if !self.txns.is_empty() {
            return;
        }
        if self.durable.as_ref().is_some_and(DurableStore::is_poisoned) {
            let _ = self.checkpoint();
        }
    }

    /// Debug builds: after any failed statement, the memory ledger must
    /// hold exactly the live base tables plus the tables stashed in open
    /// transactions' undo stacks (a dropped table keeps its charge until
    /// the transaction resolves) and the spill directory must be empty.
    /// Assumes the budget is not shared with reservations outside this
    /// database (true for every constructor here).
    #[cfg(debug_assertions)]
    fn assert_ledger_clean(&self) {
        let used = self.budget.used();
        let tables = self.catalog.total_bytes();
        let stashed: usize = self
            .txns
            .values()
            .flat_map(|t| t.undo.iter())
            .map(|e| match e {
                UndoEntry::Dropped { table } => table.bytes(),
                _ => 0,
            })
            .sum();
        debug_assert!(
            used == tables + stashed,
            "memory ledger leak after error: used {used} != base tables {tables} \
             + stashed {stashed}"
        );
        debug_assert_eq!(
            self.spill.live_files(),
            0,
            "orphan spill files after error"
        );
    }

    /// Select the physical execution path for subsequent queries
    /// ([`ExecPath::Batch`] is the default).
    pub fn set_exec_path(&mut self, path: ExecPath) {
        self.path = path;
    }

    /// The currently selected execution path.
    pub fn exec_path(&self) -> ExecPath {
        self.path
    }

    /// Cap the batch executor's morsel-parallel worker pool at `n` threads
    /// (clamped to at least 1). `1` reproduces single-threaded execution
    /// exactly; the default is the host core count (or `QYMERA_PARALLELISM`
    /// when that environment variable is set).
    pub fn set_parallelism(&mut self, n: usize) {
        self.parallelism = n.max(1);
    }

    /// The configured worker-pool size for parallel batch execution.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The shared memory ledger charged by tables and operators.
    pub fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// Bytes currently charged for base-table storage. Whenever no statement
    /// is executing this must equal [`Database::budget`]`.used()` — any gap
    /// is operator residue leaked into the ledger.
    pub fn table_bytes(&self) -> usize {
        self.catalog.total_bytes()
    }

    /// Spill files currently live on disk. Zero between statements; anything
    /// else after a statement returns (even with an error) is a leak.
    pub fn live_spill_files(&self) -> usize {
        self.spill.live_files()
    }

    pub fn stats(&self) -> DbStats {
        DbStats {
            statements_executed: self.statements,
            rows_returned: self.rows_returned,
            spill_files: self.spill.files_created(),
            spill_bytes: self.spill.bytes_written(),
            peak_memory_bytes: self.budget.peak(),
        }
    }

    fn ctx(&self) -> ExecContext {
        ExecContext {
            budget: self.budget.clone(),
            spill: Arc::clone(&self.spill),
            parallelism: self.parallelism,
            instrument: None,
            query: self.query.clone(),
        }
    }

    /// Build a row source for an already-optimized plan on the selected
    /// execution path. The batch path is adapted to rows at the very top —
    /// every operator below still runs vectorized.
    fn build_row_source(&self, plan: &Plan, ctx: &ExecContext) -> Result<Box<dyn RowStream>> {
        Ok(match self.path {
            ExecPath::Batch => {
                Box::new(BatchToRow::new(build_batch_stream(plan, &self.catalog, ctx)?))
            }
            ExecPath::Row => build_stream(plan, &self.catalog, ctx)?,
        })
    }

    /// `EXPLAIN ANALYZE`: execute the query with per-operator instrumentation
    /// and render the plan annotated with row counts and inclusive times.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String> {
        use std::cell::RefCell;
        use std::rc::Rc;
        let st = parse_statement(sql)?;
        let Statement::Query(q) = st else {
            return Err(Error::Plan("EXPLAIN ANALYZE requires a query".into()));
        };
        let plan = optimize(plan_query(&q, &self.catalog)?);
        let _grant = self.admission.admit()?;
        let query = self.begin_query();
        query.check()?;
        let (nodes, total_rows) = with_exec_stack(plan.depth(), || {
            let stats = Rc::new(RefCell::new(Vec::new()));
            let mut ctx = self.ctx();
            ctx.instrument = Some(Rc::clone(&stats));
            let mut stream = self.build_row_source(&plan, &ctx)?;
            let mut total_rows = 0u64;
            while stream.next_row()?.is_some() {
                total_rows += 1;
            }
            drop(stream);
            let nodes: Vec<_> = stats.borrow().clone();
            Ok::<_, Error>((nodes, total_rows))
        })?;
        let mut out = String::new();
        for node in nodes.iter() {
            let batches = if node.batches_out > 0 {
                format!("batches={:<6} ", node.batches_out)
            } else {
                String::new()
            };
            let parallel = if node.workers > 0 {
                format!("workers={:<3} morsels={:<6} ", node.workers, node.morsels)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{}{:<28} rows={:<9} {}{}time={:.3} ms
",
                "  ".repeat(node.depth),
                node.label,
                node.rows_out,
                batches,
                parallel,
                node.nanos as f64 / 1e6
            ));
        }
        out.push_str(&format!("total output rows: {total_rows}
"));
        Ok(out)
    }

    /// Execute a single SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet> {
        let st = parse_statement(sql)?;
        self.execute_statement(st)
    }

    /// Execute a `;`-separated script; returns the last statement's result.
    pub fn execute_script(&mut self, sql: &str) -> Result<ResultSet> {
        let statements = parse_script(sql)?;
        let mut last = ResultSet::dml(0);
        for st in statements {
            last = self.execute_statement(st)?;
        }
        Ok(last)
    }

    /// Execute an already-parsed statement. In a durable database every
    /// mutation is framed in the write-ahead log: `Ok` means the statement
    /// is both applied and crash-durable (per the fsync policy); `Err`
    /// means it is fully absent — in memory *and* on disk — even when the
    /// failure happened after the in-memory apply (the apply is rolled
    /// back via the table's O(1) copy-on-write snapshot).
    ///
    /// Runs under full lifecycle governance: the statement first takes an
    /// admission grant (rejected with [`Error::Overloaded`] when the
    /// controller is saturated past its backoff budget), then executes under
    /// a fresh [`QueryContext`] carrying the session's timeout, memory
    /// grant, and interrupt flag. A cancel or deadline expiry surfaces as
    /// [`Error::Cancelled`] / [`Error::Timeout`] with the same guarantees as
    /// any other statement error — ledger restored, no spill residue, no
    /// partial WAL frame — so an immediate retry is always valid.
    /// `BEGIN` opens a multi-statement transaction for this handle
    /// (session 0); every later statement joins its WAL frame and undo
    /// scope until `COMMIT` / `ROLLBACK`. Inside an open transaction **any
    /// statement error aborts the whole transaction** — Postgres-style
    /// uniform abort — except transaction-control bookkeeping mistakes
    /// (`BEGIN` twice, `COMMIT` with nothing open, `ROLLBACK TO` an
    /// unknown savepoint), which leave the transaction as it was.
    pub fn execute_statement(&mut self, st: Statement) -> Result<ResultSet> {
        self.execute_for_session(0, st, Vec::new())
    }

    /// Whether this handle (session 0) has an open transaction.
    pub fn in_transaction(&self) -> bool {
        self.txns.contains_key(&0)
    }

    /// The lock table sessions coordinate through (see
    /// [`crate::txn::SharedDb`]).
    pub fn lock_table(&self) -> Arc<LockTable> {
        Arc::clone(&self.locks)
    }

    /// Whether `sess` has an open transaction.
    pub(crate) fn session_in_txn(&self, sess: u64) -> bool {
        self.txns.contains_key(&sess)
    }

    /// Execute one statement for session `sess`, holding `guards` (the
    /// statement's pre-acquired table locks — empty for session 0, which
    /// owns the handle exclusively and never contends).
    pub(crate) fn execute_for_session(
        &mut self,
        sess: u64,
        st: Statement,
        guards: Vec<LockGuard>,
    ) -> Result<ResultSet> {
        self.statements += 1;
        let _grant = self.admission.admit()?;
        self.maybe_heal_poisoned();
        let query = self.begin_query();

        // Transaction control is bookkeeping: handled before the uniform
        // abort-on-error rule below, so its errors never abort anything.
        match st {
            Statement::Begin => return self.txn_begin(sess, guards),
            Statement::Commit => return self.txn_commit(sess),
            Statement::Rollback { to_savepoint } => {
                return match to_savepoint {
                    None => self.txn_rollback(sess),
                    Some(name) => self.txn_rollback_to(sess, &name),
                }
            }
            Statement::Savepoint { name } => return self.txn_savepoint(sess, name),
            _ => {}
        }

        if self.txns.contains_key(&sess) {
            // Inside an open transaction: the statement's locks join the
            // transaction (strict 2PL — held until it resolves), and any
            // error aborts the whole transaction with the full cleanup
            // contract: ledger restored, no orphan spill files, the WAL
            // frame rolled off or marked aborted. An immediate retry of
            // the transaction is always valid.
            self.txns
                .get_mut(&sess)
                .expect("checked above")
                .locks
                .extend(guards);
            let result = query.check().and_then(|()| self.execute_in_txn(sess, st));
            if result.is_err() {
                self.abort_session_txn(sess);
                #[cfg(debug_assertions)]
                self.assert_ledger_clean();
            }
            result
        } else {
            // Auto-commit: one statement, one WAL frame; `guards` release
            // when this call returns. The store is taken out for the
            // duration so mutation arms can borrow it alongside the
            // catalog.
            let mut store = self.durable.take();
            let result = query
                .check()
                .and_then(|()| self.execute_with_store(st, store.as_mut()));
            self.durable = store;
            #[cfg(debug_assertions)]
            if result.is_err() {
                self.assert_ledger_clean();
            }
            if result.is_ok() {
                self.maybe_auto_checkpoint();
            }
            drop(guards);
            result
        }
    }

    /// Open a transaction for `sess`.
    fn txn_begin(&mut self, sess: u64, guards: Vec<LockGuard>) -> Result<ResultSet> {
        if self.txns.contains_key(&sess) {
            return Err(Error::Plan("BEGIN: a transaction is already open".into()));
        }
        let epoch = self.durable.as_ref().map_or(0, DurableStore::repair_epoch);
        let state = TxnState { epoch, locks: guards, ..TxnState::default() };
        self.txns.insert(sess, state);
        Ok(ResultSet::dml(0))
    }

    /// Commit `sess`'s transaction: make its WAL frame durable, then drop
    /// the undo stack (releasing stashed tables) and every lock. A
    /// read-only transaction never opened a frame and commits without
    /// touching the log. A failed commit aborts the transaction — memory
    /// is rolled back to match what recovery would replay.
    fn txn_commit(&mut self, sess: u64) -> Result<ResultSet> {
        let Some(state) = self.txns.get(&sess) else {
            return Err(Error::Plan("COMMIT: no open transaction".into()));
        };
        if let (Some(store), Some(txn)) = (self.durable.as_mut(), state.wal_txn) {
            if store.repair_epoch() != state.epoch {
                // A crash-repair truncation while this transaction was
                // open may have cut its records; the frame cannot be
                // trusted, so refuse to commit it.
                self.abort_session_txn(sess);
                return Err(Error::Io(
                    "transaction aborted: the write-ahead log was repaired while \
                     it was open; retry the transaction"
                        .into(),
                ));
            }
            if let Err(e) = store.commit(txn) {
                self.abort_session_txn(sess);
                return Err(e);
            }
        }
        self.txns.remove(&sess);
        self.maybe_auto_checkpoint();
        Ok(ResultSet::dml(0))
    }

    /// `ROLLBACK`: abort `sess`'s transaction.
    fn txn_rollback(&mut self, sess: u64) -> Result<ResultSet> {
        if !self.txns.contains_key(&sess) {
            return Err(Error::Plan("ROLLBACK: no open transaction".into()));
        }
        self.abort_session_txn(sess);
        Ok(ResultSet::dml(0))
    }

    /// `SAVEPOINT name`: mark the current undo/WAL position.
    fn txn_savepoint(&mut self, sess: u64, name: String) -> Result<ResultSet> {
        let wal_len = self.durable.as_ref().map_or(0, DurableStore::wal_len);
        let Some(state) = self.txns.get_mut(&sess) else {
            return Err(Error::Plan("SAVEPOINT: no open transaction".into()));
        };
        state.savepoints.push(SavepointMark {
            name,
            undo_len: state.undo.len(),
            ops_logged: state.ops_logged,
            wal_len,
            wal_begun: state.wal_txn.is_some(),
        });
        Ok(ResultSet::dml(0))
    }

    /// `ROLLBACK TO SAVEPOINT name`: rewind the transaction — WAL frame
    /// and in-memory state — to the most recent savepoint with that name.
    /// The savepoint survives (it can be rolled back to again); savepoints
    /// set after it are discarded. An unknown name is a bookkeeping error
    /// and leaves the transaction untouched.
    fn txn_rollback_to(&mut self, sess: u64, name: &str) -> Result<ResultSet> {
        let Some(state) = self.txns.get_mut(&sess) else {
            return Err(Error::Plan(
                "ROLLBACK TO SAVEPOINT: no open transaction".into(),
            ));
        };
        let Some(idx) = state
            .savepoints
            .iter()
            .rposition(|m| m.name.eq_ignore_ascii_case(name))
        else {
            return Err(Error::Plan(format!("no such savepoint: {name}")));
        };
        let drop_ops = state.ops_logged - state.savepoints[idx].ops_logged;
        let to_len = state.savepoints[idx].wal_len;
        // A savepoint set before the frame's lazy `Begin` record cannot be
        // truncated to (it would cut into the record); abandon the frame
        // instead — a later op opens a fresh one.
        let cross_begin = !state.savepoints[idx].wal_begun && state.wal_txn.is_some();
        let wal_txn = state.wal_txn;
        let epoch = state.epoch;
        if let (Some(store), Some(txn)) = (self.durable.as_mut(), wal_txn) {
            if store.repair_epoch() != epoch {
                // A crash-repair truncation cut (some of) this frame's
                // bytes while it was open: every savepoint's recorded WAL
                // offset is stale geometry, and the frame can never commit
                // (`txn_commit` refuses on the same mismatch). Leave the
                // commit-less remainder for recovery to drop — truncating
                // through a stale offset could land mid-record or past the
                // end of the repaired log and destroy committed frames
                // behind the damage.
            } else if cross_begin {
                store.abort(txn);
            } else if drop_ops > 0 {
                if let Err(e) = store.rollback_ops(txn, drop_ops, to_len) {
                    // The log cannot represent the partial rollback
                    // (poisoned mid-truncate): the whole transaction
                    // aborts so memory and recovery agree.
                    self.abort_session_txn(sess);
                    return Err(e);
                }
            }
        }
        let state = self.txns.get_mut(&sess).expect("still open");
        if cross_begin {
            state.wal_txn = None;
        }
        let mark_undo = state.savepoints[idx].undo_len;
        let mark_ops = state.savepoints[idx].ops_logged;
        state.savepoints.truncate(idx + 1);
        state.ops_logged = mark_ops;
        let tail = state.undo.split_off(mark_undo);
        self.apply_undo(tail);
        Ok(ResultSet::dml(0))
    }

    /// Abort `sess`'s transaction (no-op when none is open): roll the WAL
    /// frame off the log, undo every in-memory effect in reverse, release
    /// stashed tables back into the catalog, and drop all locks. Never
    /// fails — recovery ignores a commit-less frame even when the log
    /// cannot be written to.
    pub(crate) fn abort_session_txn(&mut self, sess: u64) {
        let Some(state) = self.txns.remove(&sess) else { return };
        if let (Some(store), Some(txn)) = (self.durable.as_mut(), state.wal_txn) {
            if store.repair_epoch() == state.epoch {
                store.abort(txn);
            }
            // else: a repair already rolled the log back past (some of)
            // this frame's bytes; the commit-less remainder is dropped at
            // recovery, so appending an Abort record is pointless.
        }
        self.apply_undo(state.undo);
        // `state.locks` drop here, releasing the transaction's tables.
    }

    /// Apply undo entries (a full stack or a savepoint tail), newest
    /// first.
    fn apply_undo(&mut self, entries: Vec<UndoEntry>) {
        for entry in entries.into_iter().rev() {
            match entry {
                UndoEntry::Mutated { table, undo } => {
                    if let Ok(t) = self.catalog.get_mut(&table) {
                        t.restore(undo);
                    }
                }
                UndoEntry::Created { name } => {
                    let _ = self.catalog.drop_table(&name, true);
                }
                UndoEntry::Dropped { table } => self.catalog.put_table(table),
            }
        }
    }

    /// Log one op into `sess`'s WAL frame, opening the frame lazily at the
    /// first op (so read-only transactions never touch the log), and count
    /// it for savepoint arithmetic. No-op on an in-memory database.
    fn log_in_txn(
        &mut self,
        sess: u64,
        log: impl FnOnce(&mut DurableStore, u64) -> Result<()>,
    ) -> Result<()> {
        let Some(store) = self.durable.as_mut() else { return Ok(()) };
        let state = self.txns.get_mut(&sess).expect("open transaction");
        let txn = match state.wal_txn {
            Some(t) => t,
            None => {
                let t = store.begin()?;
                state.wal_txn = Some(t);
                // The frame's bytes start here: only repairs from now on
                // can cut them.
                state.epoch = store.repair_epoch();
                t
            }
        };
        log(store, txn)?;
        state.ops_logged += 1;
        Ok(())
    }

    /// One statement inside `sess`'s open transaction. Mutations follow
    /// log → apply → push-undo: any error leaves the frame commit-less and
    /// the caller aborts the whole transaction, which unwinds every undo
    /// entry — so no per-statement rollback is needed here.
    fn execute_in_txn(&mut self, sess: u64, st: Statement) -> Result<ResultSet> {
        match st {
            Statement::CreateTable { name, columns, if_not_exists } => {
                if self.catalog.contains(&name) {
                    // Duplicate: an IF NOT EXISTS no-op or an error —
                    // nothing is logged either way (the error aborts the
                    // transaction, same as any other statement failure).
                    self.catalog.create_table(
                        &name,
                        columns,
                        if_not_exists,
                        self.budget.clone(),
                    )?;
                    return Ok(ResultSet::dml(0));
                }
                self.log_in_txn(sess, |s, txn| s.log_create(txn, &name, &columns))?;
                self.catalog.create_table(&name, columns, false, self.budget.clone())?;
                self.txns
                    .get_mut(&sess)
                    .expect("open transaction")
                    .undo
                    .push(UndoEntry::Created { name });
                self.query.check()?;
                Ok(ResultSet::dml(0))
            }
            Statement::DropTable { name, if_exists } => {
                if !self.catalog.contains(&name) {
                    self.catalog.drop_table(&name, if_exists)?;
                    return Ok(ResultSet::dml(0));
                }
                self.log_in_txn(sess, |s, txn| s.log_drop(txn, &name))?;
                let stash = self.catalog.drop_table(&name, if_exists)?;
                if let Some(table) = stash {
                    // The stash keeps charging the budget until the
                    // transaction resolves: rollback puts it back intact.
                    self.txns
                        .get_mut(&sess)
                        .expect("open transaction")
                        .undo
                        .push(UndoEntry::Dropped { table });
                }
                self.query.check()?;
                Ok(ResultSet::dml(0))
            }
            Statement::Insert { table, columns, rows } => {
                let evaluated = self.eval_insert_rows(&table, columns.as_deref(), rows)?;
                self.insert_rows_in_txn(sess, &table, evaluated)
            }
            Statement::Delete { table, where_clause } => {
                let schema = self.catalog.get(&table)?.schema();
                if let Some(w) = &where_clause {
                    bind(w, &schema)?;
                }
                let text = where_clause.as_ref().map(Expr::to_string);
                self.log_in_txn(sess, |s, txn| {
                    s.log_delete(txn, &table, text.as_deref())
                })?;
                let undo = self.catalog.get(&table)?.undo_state();
                let n = self.run_delete(&table, where_clause.as_ref())?;
                self.txns
                    .get_mut(&sess)
                    .expect("open transaction")
                    .undo
                    .push(UndoEntry::Mutated { table, undo });
                self.query.check()?;
                Ok(ResultSet::dml(n))
            }
            st @ (Statement::Query(_) | Statement::Explain(_)) => {
                // Reads don't touch the frame.
                self.execute_with_store(st, None)
            }
            Statement::Begin
            | Statement::Commit
            | Statement::Rollback { .. }
            | Statement::Savepoint { .. } => Err(Error::Internal(
                "transaction control must go through execute_for_session".into(),
            )),
        }
    }

    /// Shared body of `INSERT` and [`Database::insert_rows`] inside an
    /// open transaction: rows are already evaluated and in table order.
    fn insert_rows_in_txn(
        &mut self,
        sess: u64,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<ResultSet> {
        if rows.is_empty() {
            return Ok(ResultSet::dml(0));
        }
        self.catalog.get(table)?; // validate before logging
        self.log_in_txn(sess, |s, txn| s.log_insert(txn, table, &rows))?;
        let t = self.catalog.get_mut(table)?;
        let undo = t.undo_state();
        let n = t.load_rows(rows)?; // atomic: an error inserts nothing
        self.txns
            .get_mut(&sess)
            .expect("open transaction")
            .undo
            .push(UndoEntry::Mutated { table: table.to_string(), undo });
        self.query.check()?;
        Ok(ResultSet::dml(n))
    }

    fn execute_with_store(
        &mut self,
        st: Statement,
        mut store: Option<&mut DurableStore>,
    ) -> Result<ResultSet> {
        match st {
            Statement::CreateTable { name, columns, if_not_exists } => {
                if self.catalog.contains(&name) {
                    // Duplicate: an error or an IF NOT EXISTS no-op —
                    // either way nothing changes, so nothing is logged.
                    self.catalog.create_table(
                        &name,
                        columns,
                        if_not_exists,
                        self.budget.clone(),
                    )?;
                    return Ok(ResultSet::dml(0));
                }
                let txn = match store.as_deref_mut() {
                    Some(s) => {
                        let txn = s.begin()?;
                        s.log_create(txn, &name, &columns)?;
                        Some(txn)
                    }
                    None => None,
                };
                let created = self.catalog.create_table(
                    &name,
                    columns,
                    if_not_exists,
                    self.budget.clone(),
                );
                match created {
                    Ok(_) => {}
                    Err(e) => {
                        // Validation rejected it (dup/empty columns): the
                        // frame stays uncommitted and is truncated away.
                        if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                            s.abort(txn);
                        }
                        return Err(e);
                    }
                }
                if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                    // Last cancel point before the frame becomes durable: a
                    // cancelled statement must never commit, so abort the
                    // frame (truncate-repair) and undo the in-memory apply.
                    if let Err(e) = self.query.check() {
                        s.abort(txn);
                        self.catalog.drop_table(&name, true)?;
                        return Err(e);
                    }
                    if let Err(e) = s.commit(txn) {
                        self.catalog.drop_table(&name, true)?;
                        return Err(e);
                    }
                }
                Ok(ResultSet::dml(0))
            }
            Statement::DropTable { name, if_exists } => {
                if !self.catalog.contains(&name) {
                    self.catalog.drop_table(&name, if_exists)?;
                    return Ok(ResultSet::dml(0));
                }
                let txn = match store.as_deref_mut() {
                    Some(s) => {
                        let txn = s.begin()?;
                        s.log_drop(txn, &name)?;
                        Some(txn)
                    }
                    None => None,
                };
                // Keep the removed table alive until the frame commits so
                // a failed commit can restore it — budget charge included.
                let stash = self.catalog.drop_table(&name, if_exists)?;
                if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                    if let Err(e) = self.query.check() {
                        s.abort(txn);
                        if let Some(t) = stash {
                            self.catalog.put_table(t);
                        }
                        return Err(e);
                    }
                    if let Err(e) = s.commit(txn) {
                        if let Some(t) = stash {
                            self.catalog.put_table(t);
                        }
                        return Err(e);
                    }
                }
                Ok(ResultSet::dml(0))
            }
            Statement::Insert { table, columns, rows } => {
                // Evaluate first: INSERT expressions are pure, so this
                // cannot observe or modify state, and the WAL records
                // concrete values rather than expressions.
                let evaluated = self.eval_insert_rows(&table, columns.as_deref(), rows)?;
                let txn = match store.as_deref_mut() {
                    Some(s) if !evaluated.is_empty() => {
                        let txn = s.begin()?;
                        s.log_insert(txn, &table, &evaluated)?;
                        Some(txn)
                    }
                    _ => None,
                };
                let t = self.catalog.get_mut(&table)?;
                let undo = t.undo_state();
                let n = match t.load_rows(evaluated) {
                    Ok(n) => n,
                    Err(e) => {
                        // load_rows is atomic — the table is untouched.
                        if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                            s.abort(txn);
                        }
                        return Err(e);
                    }
                };
                if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                    if let Err(e) = self.query.check() {
                        s.abort(txn);
                        self.catalog.get_mut(&table)?.restore(undo);
                        return Err(e);
                    }
                    if let Err(e) = s.commit(txn) {
                        self.catalog.get_mut(&table)?.restore(undo);
                        return Err(e);
                    }
                }
                Ok(ResultSet::dml(n))
            }
            Statement::Delete { table, where_clause } => {
                // Validate the table and predicate before logging anything.
                let schema = self.catalog.get(&table)?.schema();
                if let Some(w) = &where_clause {
                    bind(w, &schema)?;
                }
                let txn = match store.as_deref_mut() {
                    Some(s) => {
                        let txn = s.begin()?;
                        let text = where_clause.as_ref().map(Expr::to_string);
                        s.log_delete(txn, &table, text.as_deref())?;
                        Some(txn)
                    }
                    None => None,
                };
                let undo = self.catalog.get(&table)?.undo_state();
                let n = match self.run_delete(&table, where_clause.as_ref()) {
                    Ok(n) => n,
                    Err(e) => {
                        // delete_where is atomic on predicate errors.
                        if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                            s.abort(txn);
                        }
                        return Err(e);
                    }
                };
                if let (Some(s), Some(txn)) = (store, txn) {
                    if let Err(e) = self.query.check() {
                        s.abort(txn);
                        self.catalog.get_mut(&table)?.restore(undo);
                        return Err(e);
                    }
                    if let Err(e) = s.commit(txn) {
                        self.catalog.get_mut(&table)?.restore(undo);
                        return Err(e);
                    }
                }
                Ok(ResultSet::dml(n))
            }
            Statement::Explain(q) => {
                let plan = optimize(plan_query(&q, &self.catalog)?);
                let rows: Vec<Row> = plan
                    .explain()
                    .lines()
                    .map(|l| vec![Value::Str(l.to_string())])
                    .collect();
                Ok(ResultSet { columns: vec!["plan".to_string()], rows, affected: 0 })
            }
            Statement::Query(q) => {
                let plan = optimize(plan_query(&q, &self.catalog)?);
                let schema = plan.schema();
                let rows = with_exec_stack(plan.depth(), || {
                    let ctx = self.ctx();
                    let mut stream = self.build_row_source(&plan, &ctx)?;
                    let mut rows = Vec::new();
                    while let Some(row) = stream.next_row()? {
                        rows.push(row);
                    }
                    Ok::<_, Error>(rows)
                })?;
                self.rows_returned += rows.len() as u64;
                Ok(ResultSet { columns: schema.names(), rows, affected: 0 })
            }
            Statement::Begin
            | Statement::Commit
            | Statement::Rollback { .. }
            | Statement::Savepoint { .. } => Err(Error::Internal(
                "transaction control must go through execute_for_session".into(),
            )),
        }
    }

    /// `CREATE TABLE <name> AS <query>`: streams the query result into a new
    /// table, charging the budget incrementally (the out-of-core CTAS path
    /// used by the Qymera runner to materialize intermediate states).
    pub fn create_table_as(&mut self, name: &str, sql: &str) -> Result<usize> {
        let st = parse_statement(sql)?;
        let Statement::Query(q) = st else {
            return Err(Error::Plan("CREATE TABLE AS requires a query".into()));
        };
        let plan = optimize(plan_query(&q, &self.catalog)?);
        let depth = plan.depth();
        with_exec_stack(depth, move || self.create_table_as_exec(name, plan))
    }

    /// Execution half of [`Self::create_table_as`] (runs on the execution
    /// stack for deep plans).
    fn create_table_as_exec(&mut self, name: &str, plan: Plan) -> Result<usize> {
        if self.in_transaction() {
            // CTAS frames span many streamed chunks; splicing that into an
            // open transaction's frame is not supported.
            return Err(Error::Unsupported(
                "CREATE TABLE AS inside an open transaction".into(),
            ));
        }
        let _grant = self.admission.admit()?;
        self.maybe_heal_poisoned();
        let query = self.begin_query();
        let mut store = self.durable.take();
        let result = query
            .check()
            .and_then(|()| self.create_table_as_with_store(name, plan, store.as_mut()));
        self.durable = store;
        #[cfg(debug_assertions)]
        if result.is_err() {
            self.assert_ledger_clean();
        }
        if result.is_ok() {
            self.maybe_auto_checkpoint();
        }
        result
    }

    /// CTAS body: one WAL frame wraps the `CREATE TABLE` and every
    /// streamed insert chunk, so recovery replays either the whole table
    /// or none of it. Any failure — query error mid-stream, budget
    /// overrun, WAL fault — drops the partially built table again.
    fn create_table_as_with_store(
        &mut self,
        name: &str,
        plan: Plan,
        mut store: Option<&mut DurableStore>,
    ) -> Result<usize> {
        let schema = plan.schema();
        let ctx = self.ctx();
        let mut stream = self.build_row_source(&plan, &ctx)?;

        // Column types are inferred from the first row; later rows must
        // coerce losslessly (the Qymera translator guarantees this by casting
        // `s` explicitly when states are wider than 63 bits).
        let mut first_rows = Vec::new();
        let first = stream.next_row()?;
        let types: Vec<DataType> = match &first {
            Some(row) => row.iter().map(infer_type).collect(),
            None => vec![DataType::Double; schema.len()],
        };
        if let Some(r) = first {
            first_rows.push(r);
        }
        let columns: Vec<(String, DataType)> = schema
            .names()
            .into_iter()
            .zip(types)
            .collect();
        let txn = match store.as_deref_mut() {
            Some(s) => {
                let txn = s.begin()?;
                s.log_create(txn, name, &columns)?;
                Some(txn)
            }
            None => None,
        };
        self.catalog
            .create_table(name, columns, false, self.budget.clone())
            .inspect_err(|_| {
                if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                    s.abort(txn);
                }
            })?;

        // From here on every exit path must either commit or tear the
        // partial table back down (in-memory CTAS previously leaked it).
        let fill = |db: &mut Self, store: &mut Option<&mut DurableStore>| -> Result<usize> {
            let mut inserted = 0usize;
            const CHUNK: usize = 4096;
            let mut buf = first_rows;
            loop {
                // Cancel point per chunk: nothing from a doomed chunk is
                // logged or applied, and the error path below tears the
                // partial table down and truncates the open frame.
                db.query.check()?;
                while buf.len() < CHUNK {
                    match stream.next_row()? {
                        Some(r) => buf.push(r),
                        None => break,
                    }
                }
                if buf.is_empty() {
                    break;
                }
                if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                    s.log_insert(txn, name, &buf)?;
                }
                // `load_rows` coerces and appends straight into the table's
                // typed column builders (chunked columnar storage).
                inserted += db.catalog.get_mut(name)?.load_rows(std::mem::take(&mut buf))?;
            }
            if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                // Last cancel point before the whole CTAS frame commits.
                db.query.check()?;
                s.commit(txn)?;
            }
            Ok(inserted)
        };
        match fill(self, &mut store) {
            Ok(n) => Ok(n),
            Err(e) => {
                if let (Some(s), Some(txn)) = (store, txn) {
                    s.abort(txn);
                }
                self.catalog.drop_table(name, true)?;
                Err(e)
            }
        }
    }

    /// Bulk-load pre-built rows (bypasses SQL parsing; used by the Qymera
    /// translator for gate/state tables, mirroring a native loader API).
    /// Rows stream into the table's typed column builders; a coercion error
    /// or budget overrun inserts nothing. WAL-framed like `INSERT` when the
    /// database is durable.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<usize> {
        let _grant = self.admission.admit()?;
        self.maybe_heal_poisoned();
        let query = self.begin_query();
        if self.in_transaction() {
            // Joins the open transaction's frame and undo scope, exactly
            // like an `INSERT` statement (errors abort the transaction).
            let result = query
                .check()
                .and_then(|()| self.insert_rows_in_txn(0, table, rows))
                .map(|rs| rs.affected());
            if result.is_err() {
                self.abort_session_txn(0);
                #[cfg(debug_assertions)]
                self.assert_ledger_clean();
            }
            return result;
        }
        let mut store = self.durable.take();
        let result = query
            .check()
            .and_then(|()| self.insert_rows_with_store(table, rows, store.as_mut()));
        self.durable = store;
        #[cfg(debug_assertions)]
        if result.is_err() {
            self.assert_ledger_clean();
        }
        if result.is_ok() {
            self.maybe_auto_checkpoint();
        }
        result
    }

    fn insert_rows_with_store(
        &mut self,
        table: &str,
        rows: Vec<Row>,
        mut store: Option<&mut DurableStore>,
    ) -> Result<usize> {
        let txn = match store.as_deref_mut() {
            Some(s) if !rows.is_empty() => {
                let txn = s.begin()?;
                s.log_insert(txn, table, &rows)?;
                Some(txn)
            }
            _ => None,
        };
        let t = self.catalog.get_mut(table).inspect_err(|_| {
            if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                s.abort(txn);
            }
        })?;
        let undo = t.undo_state();
        let n = match t.load_rows(rows) {
            Ok(n) => n,
            Err(e) => {
                if let (Some(s), Some(txn)) = (store.as_deref_mut(), txn) {
                    s.abort(txn);
                }
                return Err(e);
            }
        };
        if let (Some(s), Some(txn)) = (store, txn) {
            if let Err(e) = self.query.check() {
                s.abort(txn);
                self.catalog.get_mut(table)?.restore(undo);
                return Err(e);
            }
            if let Err(e) = s.commit(txn) {
                self.catalog.get_mut(table)?.restore(undo);
                return Err(e);
            }
        }
        Ok(n)
    }

    /// Output schema a query would produce, without executing it.
    pub fn query_schema(&self, sql: &str) -> Result<RelSchema> {
        let st = parse_statement(sql)?;
        let Statement::Query(q) = st else {
            return Err(Error::Plan("not a query".into()));
        };
        Ok(plan_query(&q, &self.catalog)?.schema())
    }

    /// EXPLAIN-style plan rendering.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let st = parse_statement(sql)?;
        let Statement::Query(q) = st else {
            return Err(Error::Plan("EXPLAIN requires a query".into()));
        };
        Ok(optimize(plan_query(&q, &self.catalog)?).explain())
    }

    pub fn table_names(&self) -> Vec<String> {
        self.catalog.table_names()
    }

    pub fn table_row_count(&self, name: &str) -> Result<usize> {
        Ok(self.catalog.get(name)?.row_count())
    }

    /// Drop `name` if present (WAL-framed like `DROP TABLE IF EXISTS`).
    pub fn drop_table_if_exists(&mut self, name: &str) -> Result<()> {
        self.execute_statement(Statement::DropTable {
            name: name.to_string(),
            if_exists: true,
        })
        .map(|_| ())
    }

    /// Apply a delete to the in-memory table (shared by `DELETE` execution
    /// and WAL replay; the caller owns logging and rollback).
    fn run_delete(&mut self, table: &str, where_clause: Option<&Expr>) -> Result<usize> {
        let schema = self.catalog.get(table)?.schema();
        let predicate = match where_clause {
            Some(w) => Some(bind(w, &schema)?),
            None => None,
        };
        let t = self.catalog.get_mut(table)?;
        t.delete_where(|row| match &predicate {
            Some(p) => Ok(p.eval(row)?.as_bool()? == Some(true)),
            None => Ok(true),
        })
    }

    /// Evaluate `INSERT` value expressions into concrete rows in table
    /// column order (expressions are pure; nothing is applied yet).
    fn eval_insert_rows(
        &self,
        table: &str,
        columns: Option<&[String]>,
        rows: Vec<Vec<crate::ast::Expr>>,
    ) -> Result<Vec<Row>> {
        let empty_schema = RelSchema::default();
        let t = self.catalog.get(table)?;
        let ncols = t.columns().len();
        // Map provided column order to table order.
        let mapping: Vec<usize> = match columns {
            Some(cols) => {
                let mut m = Vec::with_capacity(cols.len());
                for c in cols {
                    let idx = t
                        .columns()
                        .iter()
                        .position(|(n, _)| n.eq_ignore_ascii_case(c))
                        .ok_or_else(|| {
                            Error::Plan(format!("unknown column `{c}` in INSERT"))
                        })?;
                    m.push(idx);
                }
                m
            }
            None => (0..ncols).collect(),
        };
        let mut evaluated = Vec::with_capacity(rows.len());
        for exprs in rows {
            if exprs.len() != mapping.len() {
                return Err(Error::Plan(format!(
                    "INSERT expects {} values, got {}",
                    mapping.len(),
                    exprs.len()
                )));
            }
            let mut full = vec![Value::Null; ncols];
            for (expr, &target) in exprs.iter().zip(&mapping) {
                let bexpr = bind(expr, &empty_schema)?;
                full[target] = bexpr.eval(&vec![])?;
            }
            evaluated.push(full);
        }
        Ok(evaluated)
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

/// Infer a column type from a sample value (CTAS).
fn infer_type(v: &Value) -> DataType {
    match v {
        Value::Int(_) => DataType::Integer,
        Value::Float(_) => DataType::Double,
        Value::Str(_) => DataType::Text,
        Value::Big(_) => DataType::HugeInt,
        Value::Null => DataType::Double,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz_db() -> Database {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE T0 (s INTEGER, r DOUBLE, i DOUBLE); \
             INSERT INTO T0 VALUES (0, 1.0, 0.0); \
             CREATE TABLE H (in_s INTEGER, out_s INTEGER, r DOUBLE, i DOUBLE); \
             INSERT INTO H VALUES (0, 0, 0.7071067811865476, 0.0), \
                                  (0, 1, 0.7071067811865476, 0.0), \
                                  (1, 0, 0.7071067811865476, 0.0), \
                                  (1, 1, -0.7071067811865476, 0.0); \
             CREATE TABLE CX (in_s INTEGER, out_s INTEGER, r DOUBLE, i DOUBLE); \
             INSERT INTO CX VALUES (0, 0, 1.0, 0.0), (1, 3, 1.0, 0.0), \
                                   (2, 2, 1.0, 0.0), (3, 1, 1.0, 0.0);",
        )
        .unwrap();
        db
    }

    #[test]
    fn fig2_full_cte_chain_produces_ghz() {
        // The exact query of Fig. 2c, three gates on |000⟩.
        let mut db = ghz_db();
        let sql = "WITH T1 AS (
              SELECT ((T0.s & ~1) | H.out_s) AS s,
                     SUM((T0.r * H.r) - (T0.i * H.i)) AS r,
                     SUM((T0.r * H.i) + (T0.i * H.r)) AS i
              FROM T0 JOIN H ON H.in_s = (T0.s & 1)
              GROUP BY ((T0.s & ~1) | H.out_s)),
            T2 AS (
              SELECT ((T1.s & ~3) | CX.out_s) AS s,
                     SUM((T1.r * CX.r) - (T1.i * CX.i)) AS r,
                     SUM((T1.r * CX.i) + (T1.i * CX.r)) AS i
              FROM T1 JOIN CX ON CX.in_s = (T1.s & 3)
              GROUP BY ((T1.s & ~3) | CX.out_s)),
            T3 AS (
              SELECT ((T2.s & ~6) | (CX.out_s << 1)) AS s,
                     SUM((T2.r * CX.r) - (T2.i * CX.i)) AS r,
                     SUM((T2.r * CX.i) + (T2.i * CX.r)) AS i
              FROM T2 JOIN CX ON CX.in_s = ((T2.s >> 1) & 3)
              GROUP BY ((T2.s & ~6) | (CX.out_s << 1)))
            SELECT s, r, i FROM T3 ORDER BY s";
        let rs = db.execute(sql).unwrap();
        assert_eq!(rs.columns(), &["s", "r", "i"]);
        assert_eq!(rs.rows().len(), 2, "GHZ state has two basis states");
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert_eq!(rs.rows()[0][0], Value::Int(0));
        assert!((rs.rows()[0][1].as_f64().unwrap() - inv_sqrt2).abs() < 1e-12);
        assert_eq!(rs.rows()[1][0], Value::Int(7));
        assert!((rs.rows()[1][1].as_f64().unwrap() - inv_sqrt2).abs() < 1e-12);
    }

    #[test]
    fn insert_with_column_list_and_delete() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        let rs = db.execute("INSERT INTO t (b, a) VALUES ('x', 1), ('y', 2)").unwrap();
        assert_eq!(rs.affected(), 2);
        let rs = db.execute("SELECT a FROM t WHERE b = 'x'").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1)));
        let rs = db.execute("DELETE FROM t WHERE a = 1").unwrap();
        assert_eq!(rs.affected(), 1);
        assert_eq!(db.table_row_count("t").unwrap(), 1);
    }

    #[test]
    fn create_table_as_streams_rows() {
        let mut db = ghz_db();
        let n = db
            .create_table_as("T1", "SELECT ((T0.s & ~1) | H.out_s) AS s, \
                 SUM((T0.r * H.r) - (T0.i * H.i)) AS r, \
                 SUM((T0.r * H.i) + (T0.i * H.r)) AS i \
                 FROM T0 JOIN H ON H.in_s = (T0.s & 1) \
                 GROUP BY ((T0.s & ~1) | H.out_s)")
            .unwrap();
        assert_eq!(n, 2);
        let rs = db.execute("SELECT COUNT(*) FROM T1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn stats_track_execution() {
        let mut db = ghz_db();
        let before = db.stats();
        db.execute("SELECT * FROM H").unwrap();
        let after = db.stats();
        assert_eq!(after.statements_executed, before.statements_executed + 1);
        assert_eq!(after.rows_returned, before.rows_returned + 4);
        assert!(after.peak_memory_bytes > 0);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut db = Database::new();
        assert!(db.execute("SELECT * FROM missing").is_err());
        assert!(db.execute("SELEC 1").is_err());
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        assert!(db.execute("INSERT INTO t VALUES (1, 2)").is_err());
        assert!(db.execute("INSERT INTO t VALUES ('text')").is_err());
    }

    #[test]
    fn memory_limited_db_spills_on_aggregate() {
        // Budget fits the 50k-row base table (~1.2 MB in columnar chunks)
        // but not the 20k-group aggregation state on top of it, forcing the
        // operator to spill.
        let mut db = Database::with_memory_limit(2 * 1024 * 1024);
        db.execute("CREATE TABLE big (k INTEGER, v DOUBLE)").unwrap();
        let rows: Vec<Row> = (0..50_000)
            .map(|i| vec![Value::Int(i % 20_000), Value::Float(0.5)])
            .collect();
        db.insert_rows("big", rows).unwrap();
        let rs = db
            .execute("SELECT k, SUM(v) AS total FROM big GROUP BY k ORDER BY k LIMIT 3")
            .unwrap();
        assert_eq!(rs.rows().len(), 3);
        assert!(db.stats().spill_files > 0, "expected the aggregate to spill");
    }

    #[test]
    fn to_table_string_renders() {
        let mut db = ghz_db();
        let rs = db.execute("SELECT in_s, out_s FROM CX ORDER BY in_s").unwrap();
        let s = rs.to_table_string();
        assert!(s.contains("in_s"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    fn explain_returns_plan() {
        let db = ghz_db();
        let text = db.explain("SELECT s FROM T0 WHERE s = 0").unwrap();
        assert!(text.contains("Scan T0"));
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;

    #[test]
    fn explain_statement_returns_plan_rows() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
        let rs = db.execute("EXPLAIN SELECT a FROM t WHERE a > 1 ORDER BY a").unwrap();
        assert_eq!(rs.columns(), &["plan"]);
        let text: Vec<String> = rs.rows().iter().map(|r| r[0].to_string()).collect();
        assert!(text.iter().any(|l| l.contains("Scan t")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("Sort")), "{text:?}");
    }

    #[test]
    fn explain_shows_pushdown() {
        let mut db = Database::new();
        db.execute("CREATE TABLE a (x INTEGER)").unwrap();
        db.execute("CREATE TABLE b (y INTEGER)").unwrap();
        let rs = db
            .execute("EXPLAIN SELECT x FROM a JOIN b ON a.x = b.y WHERE a.x > 3")
            .unwrap();
        let text = rs
            .rows()
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join("\n");
        // the filter on a.x must sit below the join after optimization
        let join_pos = text.find("Join").unwrap();
        let filter_pos = text.find("Filter").unwrap();
        assert!(filter_pos > join_pos, "filter should be pushed under the join:\n{text}");
    }
}

#[cfg(test)]
mod explain_analyze_tests {
    use super::*;

    #[test]
    fn explain_analyze_reports_rows_per_operator() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        let rows: Vec<Row> = (0..100).map(|i| vec![Value::Int(i)]).collect();
        db.insert_rows("t", rows).unwrap();
        let text = db
            .explain_analyze("SELECT a FROM t WHERE a < 10 ORDER BY a DESC")
            .unwrap();
        assert!(text.contains("Scan t"), "{text}");
        assert!(text.contains("rows=100"), "scan emits all rows:\n{text}");
        assert!(text.contains("rows=10"), "filter passes 10 rows:\n{text}");
        assert!(text.contains("total output rows: 10"), "{text}");
    }

    #[test]
    fn explain_analyze_join_aggregate_shape() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE s (k INTEGER, v DOUBLE); \
             INSERT INTO s VALUES (0, 1.0), (1, 2.0), (0, 3.0); \
             CREATE TABLE g (k INTEGER, w DOUBLE); \
             INSERT INTO g VALUES (0, 10.0), (1, 20.0);",
        )
        .unwrap();
        let text = db
            .explain_analyze(
                "SELECT s.k, SUM(s.v * g.w) FROM s JOIN g ON s.k = g.k GROUP BY s.k",
            )
            .unwrap();
        assert!(text.contains("Join"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
        assert!(text.contains("total output rows: 2"), "{text}");
    }
}
