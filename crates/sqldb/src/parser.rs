//! Recursive-descent SQL parser.
//!
//! Operator precedence follows the C-like convention used by DuckDB/SQLite
//! for the bitwise family, which is what Qymera's generated queries rely on:
//! comparisons bind *looser* than `|`, `^`, `&`, shifts, and arithmetic, so
//! `H.in_s = (T0.s & 1)` parses as expected even without the parentheses.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let st = p.statement()?;
    p.eat_kind(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(st)
}

/// Parse a `;`-separated script into statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat_kind(&TokenKind::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.eat_kind(&TokenKind::Semicolon) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

/// Parse a standalone scalar expression (used by tests and the translator).
pub fn parse_expr(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self> {
        Ok(Parser { tokens: tokenize(sql)?, pos: 0 })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(Error::parse(
                self.peek_pos(),
                format!("unexpected {}", self.peek().describe()),
            ))
        }
    }

    /// True (and consumes) if the next token is the given keyword.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.advance();
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(
                self.peek_pos(),
                format!("expected `{kw}`, found {}", self.peek().describe()),
            ))
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            Err(Error::parse(
                self.peek_pos(),
                format!("expected {what}, found {}", self.peek().describe()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(Error::parse(
                self.peek_pos(),
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    // ---- statements -------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("CREATE") {
            return self.create_table();
        }
        if self.peek_kw("DROP") {
            return self.drop_table();
        }
        if self.peek_kw("INSERT") {
            return self.insert();
        }
        if self.peek_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("EXPLAIN") {
            return Ok(Statement::Explain(self.query()?));
        }
        if self.eat_kw("BEGIN") || self.eat_kw("START") {
            // BEGIN [TRANSACTION | WORK] / START TRANSACTION
            if !self.eat_kw("TRANSACTION") {
                self.eat_kw("WORK");
            }
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") || self.eat_kw("END") {
            if !self.eat_kw("TRANSACTION") {
                self.eat_kw("WORK");
            }
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            if !self.eat_kw("TRANSACTION") {
                self.eat_kw("WORK");
            }
            let to_savepoint = if self.eat_kw("TO") {
                self.eat_kw("SAVEPOINT");
                Some(self.ident("savepoint name")?)
            } else {
                None
            };
            return Ok(Statement::Rollback { to_savepoint });
        }
        if self.eat_kw("SAVEPOINT") {
            let name = self.ident("savepoint name")?;
            return Ok(Statement::Savepoint { name });
        }
        if self.peek_kw("SELECT") || self.peek_kw("WITH") || matches!(self.peek(), TokenKind::LParen)
        {
            return Ok(Statement::Query(self.query()?));
        }
        Err(Error::parse(
            self.peek_pos(),
            format!("expected a statement, found {}", self.peek().describe()),
        ))
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident("table name")?;
        self.expect_kind(&TokenKind::LParen, "`(`")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident("column name")?;
            let ty = self.data_type()?;
            columns.push((col, ty));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen, "`)`")?;
        Ok(Statement::CreateTable { name, columns, if_not_exists })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident("type name")?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "INTEGER" | "INT" | "BIGINT" | "SMALLINT" | "TINYINT" => DataType::Integer,
            "HUGEINT" => DataType::HugeInt,
            "DOUBLE" | "REAL" | "FLOAT" | "NUMERIC" | "DECIMAL" => {
                // allow DOUBLE PRECISION
                self.eat_kw("PRECISION");
                DataType::Double
            }
            "TEXT" | "VARCHAR" | "STRING" | "CHAR" => {
                // allow VARCHAR(255)
                if self.eat_kind(&TokenKind::LParen) {
                    match self.advance() {
                        TokenKind::Int(_) => {}
                        other => {
                            return Err(Error::parse(
                                self.peek_pos(),
                                format!("expected length, found {}", other.describe()),
                            ))
                        }
                    }
                    self.expect_kind(&TokenKind::RParen, "`)`")?;
                }
                DataType::Text
            }
            other => return Err(Error::Plan(format!("unknown type `{other}`"))),
        };
        Ok(ty)
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident("table name")?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident("table name")?;
        let columns = if self.eat_kind(&TokenKind::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident("column name")?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, "`)`")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(&TokenKind::LParen, "`(`")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, "`)`")?;
            rows.push(row);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident("table name")?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, where_clause })
    }

    // ---- queries ----------------------------------------------------------

    pub(crate) fn query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("WITH") {
            // RECURSIVE is accepted but recursion is not supported (detected
            // at plan time when a CTE references itself).
            self.eat_kw("RECURSIVE");
            loop {
                let name = self.ident("CTE name")?;
                self.expect_kw("AS")?;
                self.expect_kind(&TokenKind::LParen, "`(`")?;
                let q = self.query()?;
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                ctes.push((name, q));
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.unsigned()?);
        }
        if self.eat_kw("OFFSET") {
            offset = Some(self.unsigned()?);
        }
        Ok(Query { ctes, body, order_by, limit, offset })
    }

    fn unsigned(&mut self) -> Result<u64> {
        match self.advance() {
            TokenKind::Int(v) if v >= 0 => Ok(v as u64),
            other => Err(Error::parse(
                self.peek_pos(),
                format!("expected nonnegative integer, found {}", other.describe()),
            )),
        }
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.set_atom()?;
        while self.peek_kw("UNION") {
            self.advance();
            self.expect_kw("ALL")?;
            let right = self.set_atom()?;
            left = SetExpr::UnionAll(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn set_atom(&mut self) -> Result<SetExpr> {
        if self.eat_kind(&TokenKind::LParen) {
            let inner = self.set_expr()?;
            self.expect_kind(&TokenKind::RParen, "`)`")?;
            return Ok(inner);
        }
        Ok(SetExpr::Select(Box::new(self.select()?)))
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        self.eat_kw("ALL");
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let mut from = None;
        let mut joins = Vec::new();
        if self.eat_kw("FROM") {
            from = Some(self.table_ref()?);
            loop {
                let kind = if self.peek_kw("JOIN") || self.peek_kw("INNER") {
                    self.eat_kw("INNER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Inner
                } else if self.peek_kw("LEFT") {
                    self.advance();
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Left
                } else if self.peek_kw("RIGHT") {
                    self.advance();
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Right
                } else if self.peek_kw("CROSS") {
                    self.advance();
                    self.expect_kw("JOIN")?;
                    JoinKind::Cross
                } else if self.eat_kind(&TokenKind::Comma) {
                    // implicit cross join: FROM a, b
                    JoinKind::Cross
                } else {
                    break;
                };
                let table = self.table_ref()?;
                let on = if kind != JoinKind::Cross {
                    self.expect_kw("ON")?;
                    Some(self.expr()?)
                } else {
                    None
                };
                joins.push(Join { kind, table, on });
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        Ok(Select { distinct, projection, from, joins, where_clause, group_by, having })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_kind(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // table.* needs two tokens of lookahead
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Dot)
                && self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Star)
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident("alias")?)
        } else if let TokenKind::Ident(s) = self.peek() {
            // bare alias, but don't swallow clause keywords
            if is_clause_keyword(s) {
                None
            } else {
                let a = s.clone();
                self.advance();
                Some(a)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat_kind(&TokenKind::LParen) {
            let query = self.query()?;
            self.expect_kind(&TokenKind::RParen, "`)`")?;
            self.eat_kw("AS");
            let alias = self.ident("subquery alias")?;
            return Ok(TableRef::Subquery { query: Box::new(query), alias });
        }
        let name = self.ident("table name")?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident("alias")?)
        } else if let TokenKind::Ident(s) = self.peek() {
            if is_clause_keyword(s) {
                None
            } else {
                let a = s.clone();
                self.advance();
                Some(a)
            }
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    // ---- expressions ------------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.bitor_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.bitor_expr()?;
            return Ok(Expr::binary(left, op, right));
        }
        if self.peek_kw("IS") {
            self.advance();
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        if self.peek_kw("IN") || self.peek_kw("NOT") {
            let negated = self.eat_kw("NOT");
            if negated && !self.peek_kw("IN") {
                return Err(Error::parse(self.peek_pos(), "expected IN after NOT".to_string()));
            }
            if self.eat_kw("IN") {
                self.expect_kind(&TokenKind::LParen, "`(`")?;
                let mut list = Vec::new();
                loop {
                    list.push(self.expr()?);
                    if !self.eat_kind(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                return Ok(Expr::InList { expr: Box::new(left), list, negated });
            }
        }
        if self.peek_kw("BETWEEN") {
            self.advance();
            let lo = self.bitor_expr()?;
            self.expect_kw("AND")?;
            let hi = self.bitor_expr()?;
            // desugar: left >= lo AND left <= hi
            return Ok(Expr::binary(
                Expr::binary(left.clone(), BinaryOp::GtEq, lo),
                BinaryOp::And,
                Expr::binary(left, BinaryOp::LtEq, hi),
            ));
        }
        Ok(left)
    }

    fn bitor_expr(&mut self) -> Result<Expr> {
        let mut left = self.bitxor_expr()?;
        while self.eat_kind(&TokenKind::Pipe) {
            let right = self.bitxor_expr()?;
            left = Expr::binary(left, BinaryOp::BitOr, right);
        }
        Ok(left)
    }

    fn bitxor_expr(&mut self) -> Result<Expr> {
        let mut left = self.bitand_expr()?;
        while self.eat_kind(&TokenKind::Caret) {
            let right = self.bitand_expr()?;
            left = Expr::binary(left, BinaryOp::BitXor, right);
        }
        Ok(left)
    }

    fn bitand_expr(&mut self) -> Result<Expr> {
        let mut left = self.shift_expr()?;
        while self.eat_kind(&TokenKind::Amp) {
            let right = self.shift_expr()?;
            left = Expr::binary(left, BinaryOp::BitAnd, right);
        }
        Ok(left)
    }

    fn shift_expr(&mut self) -> Result<Expr> {
        let mut left = self.add_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinaryOp::Shl,
                TokenKind::Shr => BinaryOp::Shr,
                _ => break,
            };
            self.advance();
            let right = self.add_expr()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.mul_expr()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary_expr()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.advance();
                let inner = self.unary_expr()?;
                // fold negative literals for nicer plans
                if let Expr::Literal(Literal::Int(v)) = inner {
                    return Ok(Expr::Literal(Literal::Int(-v)));
                }
                if let Expr::Literal(Literal::Float(v)) = inner {
                    return Ok(Expr::Literal(Literal::Float(-v)));
                }
                Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) })
            }
            TokenKind::Plus => {
                self.advance();
                self.unary_expr()
            }
            TokenKind::Tilde => {
                self.advance();
                let inner = self.unary_expr()?;
                Ok(Expr::Unary { op: UnaryOp::BitNot, expr: Box::new(inner) })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(v)))
            }
            TokenKind::BigInt(b) => {
                self.advance();
                Ok(Expr::Literal(Literal::Big(b)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Star => {
                self.advance();
                Ok(Expr::Star)
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Literal(Literal::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(Expr::Literal(Literal::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(Expr::Literal(Literal::Bool(false)));
                }
                if name.eq_ignore_ascii_case("CAST") {
                    self.advance();
                    self.expect_kind(&TokenKind::LParen, "`(`")?;
                    let e = self.expr()?;
                    self.expect_kw("AS")?;
                    let ty = self.data_type()?;
                    self.expect_kind(&TokenKind::RParen, "`)`")?;
                    return Ok(Expr::Cast { expr: Box::new(e), ty });
                }
                if name.eq_ignore_ascii_case("CASE") {
                    self.advance();
                    return self.case_expr();
                }
                // Clause keywords cannot start an expression; catching them
                // here turns `SELECT FROM t` into a clear error instead of a
                // column named `FROM`.
                if is_clause_keyword(&name) {
                    return Err(Error::parse(
                        self.peek_pos(),
                        format!("expected expression, found keyword `{name}`"),
                    ));
                }
                self.advance();
                // function call?
                if self.eat_kind(&TokenKind::LParen) {
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    if !self.eat_kind(&TokenKind::RParen) {
                        loop {
                            if self.eat_kind(&TokenKind::Star) {
                                args.push(Expr::Star);
                            } else {
                                args.push(self.expr()?);
                            }
                            if !self.eat_kind(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect_kind(&TokenKind::RParen, "`)`")?;
                    }
                    return Ok(Expr::Function { name, args, distinct });
                }
                // qualified column?
                if self.eat_kind(&TokenKind::Dot) {
                    let col = self.ident("column name")?;
                    return Ok(Expr::Column { table: Some(name), name: col });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(Error::parse(
                self.peek_pos(),
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let operand = if self.peek_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let result = self.expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(Error::parse(self.peek_pos(), "CASE requires at least one WHEN".to_string()));
        }
        let else_branch = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case { operand, branches, else_branch })
    }
}

/// Keywords that terminate an implicit alias position.
fn is_clause_keyword(s: &str) -> bool {
    const KWS: &[&str] = &[
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "JOIN", "INNER", "LEFT",
        "RIGHT", "CROSS", "ON", "UNION", "AS", "AND", "OR", "NOT", "ASC", "DESC", "SELECT", "WITH",
        "VALUES", "SET", "BY", "IS", "IN", "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END",
        "OUTER", "ALL",
    ];
    KWS.iter().any(|k| k.eq_ignore_ascii_case(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2_query_shape() {
        // Query q1 from Fig. 2c of the paper, verbatim structure.
        let sql = "SELECT ((T0.s & ~1) | H.out_s) AS s, \
                   SUM((T0.r * H.r) - (T0.i * H.i)) AS r, \
                   SUM((T0.r * H.i) + (T0.i * H.r)) AS i \
                   FROM T0 JOIN H ON H.in_s = (T0.s & 1) \
                   GROUP BY ((T0.s & ~1) | H.out_s)";
        let st = parse_statement(sql).unwrap();
        let Statement::Query(q) = st else { panic!("expected query") };
        let SetExpr::Select(sel) = &q.body else { panic!("expected select") };
        assert_eq!(sel.projection.len(), 3);
        assert_eq!(sel.joins.len(), 1);
        assert_eq!(sel.group_by.len(), 1);
    }

    #[test]
    fn parses_transaction_statements() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("begin transaction").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("START TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("COMMIT WORK").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("END").unwrap(), Statement::Commit);
        assert_eq!(
            parse_statement("ROLLBACK").unwrap(),
            Statement::Rollback { to_savepoint: None }
        );
        assert_eq!(
            parse_statement("ROLLBACK TO sp1").unwrap(),
            Statement::Rollback { to_savepoint: Some("sp1".into()) }
        );
        assert_eq!(
            parse_statement("ROLLBACK TO SAVEPOINT sp1").unwrap(),
            Statement::Rollback { to_savepoint: Some("sp1".into()) }
        );
        assert_eq!(
            parse_statement("SAVEPOINT mark").unwrap(),
            Statement::Savepoint { name: "mark".into() }
        );
        assert!(parse_statement("SAVEPOINT").is_err());
        // Round-trip through the pretty-printer.
        for sql in ["BEGIN", "COMMIT", "ROLLBACK", "ROLLBACK TO SAVEPOINT sp1", "SAVEPOINT sp1"] {
            let st = parse_statement(sql).unwrap();
            assert_eq!(parse_statement(&st.to_string()).unwrap(), st);
        }
    }

    #[test]
    fn parses_full_cte_chain() {
        let sql = "WITH T1 AS (SELECT s, r, i FROM T0), \
                   T2 AS (SELECT s, r, i FROM T1) \
                   SELECT s, r, i FROM T2 ORDER BY s";
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        assert_eq!(q.ctes.len(), 2);
        assert_eq!(q.order_by.len(), 1);
    }

    #[test]
    fn precedence_comparison_binds_loosest() {
        // `a = b & 1` must parse as `a = (b & 1)` (DuckDB/C precedence).
        let e = parse_expr("a = b & 1").unwrap();
        match e {
            Expr::Binary { op: BinaryOp::Eq, right, .. } => match *right {
                Expr::Binary { op: BinaryOp::BitAnd, .. } => {}
                other => panic!("rhs should be &, got {other:?}"),
            },
            other => panic!("expected =, got {other:?}"),
        }
    }

    #[test]
    fn precedence_shift_tighter_than_and() {
        // `a & 1 << 2` = `a & (1 << 2)`
        let e = parse_expr("a & 1 << 2").unwrap();
        match e {
            Expr::Binary { op: BinaryOp::BitAnd, right, .. } => match *right {
                Expr::Binary { op: BinaryOp::Shl, .. } => {}
                other => panic!("rhs should be <<, got {other:?}"),
            },
            other => panic!("expected &, got {other:?}"),
        }
    }

    #[test]
    fn precedence_arith_tighter_than_shift() {
        // `1 << 2 + 3` = `1 << (2 + 3)` = 32
        let e = parse_expr("1 << 2 + 3").unwrap();
        match e {
            Expr::Binary { op: BinaryOp::Shl, right, .. } => match *right {
                Expr::Binary { op: BinaryOp::Add, .. } => {}
                other => panic!("rhs should be +, got {other:?}"),
            },
            other => panic!("expected <<, got {other:?}"),
        }
    }

    #[test]
    fn tilde_is_prefix_and_tight() {
        let e = parse_expr("s & ~1").unwrap();
        match e {
            Expr::Binary { op: BinaryOp::BitAnd, right, .. } => {
                assert!(matches!(*right, Expr::Unary { op: UnaryOp::BitNot, .. }));
            }
            other => panic!("expected &, got {other:?}"),
        }
    }

    #[test]
    fn create_insert_delete_statements() {
        let st = parse_statement("CREATE TABLE IF NOT EXISTS T0 (s INTEGER, r DOUBLE, i DOUBLE)")
            .unwrap();
        assert!(matches!(st, Statement::CreateTable { if_not_exists: true, .. }));
        let st =
            parse_statement("INSERT INTO T0 (s, r, i) VALUES (0, 1.0, 0.0), (1, 0.5, 0.5)").unwrap();
        let Statement::Insert { rows, columns, .. } = st else { panic!() };
        assert_eq!(rows.len(), 2);
        assert_eq!(columns.unwrap().len(), 3);
        let st = parse_statement("DELETE FROM T0 WHERE s = 3").unwrap();
        assert!(matches!(st, Statement::Delete { where_clause: Some(_), .. }));
    }

    #[test]
    fn aliases_implicit_and_explicit() {
        let Statement::Query(q) =
            parse_statement("SELECT x foo, y AS bar FROM t u JOIN v AS w ON u.a = w.b").unwrap()
        else {
            panic!()
        };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        match &sel.projection[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("foo")),
            other => panic!("{other:?}"),
        }
        assert_eq!(sel.from.as_ref().unwrap().visible_name(), "u");
        assert_eq!(sel.joins[0].table.visible_name(), "w");
    }

    #[test]
    fn union_all_and_subquery() {
        let Statement::Query(q) = parse_statement(
            "SELECT s FROM (SELECT 1 AS s UNION ALL SELECT 2 AS s) AS u WHERE s > 0",
        )
        .unwrap() else {
            panic!()
        };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        assert!(matches!(sel.from, Some(TableRef::Subquery { .. })));
    }

    #[test]
    fn count_star_and_distinct() {
        let e = parse_expr("COUNT(*)").unwrap();
        assert!(matches!(&e, Expr::Function { args, .. } if args == &vec![Expr::Star]));
        let e = parse_expr("COUNT(DISTINCT s)").unwrap();
        assert!(matches!(e, Expr::Function { distinct: true, .. }));
    }

    #[test]
    fn between_desugars() {
        let e = parse_expr("x BETWEEN 1 AND 3").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinaryOp::And, .. }));
    }

    #[test]
    fn case_and_cast() {
        let e = parse_expr("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END").unwrap();
        assert!(matches!(e, Expr::Case { .. }));
        let e = parse_expr("CAST(x AS DOUBLE)").unwrap();
        assert!(matches!(e, Expr::Cast { ty: DataType::Double, .. }));
    }

    #[test]
    fn script_parsing() {
        let sts = parse_script(
            "CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1); SELECT * FROM t;",
        )
        .unwrap();
        assert_eq!(sts.len(), 3);
    }

    #[test]
    fn error_positions_are_reported() {
        match parse_statement("SELECT FROM t") {
            Err(Error::Parse { .. }) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse_statement("SELECT 1 2").is_err());
        assert!(parse_statement("WITH x AS SELECT 1 SELECT 2").is_err());
    }

    #[test]
    fn display_round_trip_is_stable() {
        let sqls = [
            "SELECT ((T0.s & ~1) | H.out_s) AS s FROM T0 JOIN H ON H.in_s = (T0.s & 1) GROUP BY ((T0.s & ~1) | H.out_s)",
            "WITH a AS (SELECT 1 AS x) SELECT x FROM a ORDER BY x DESC LIMIT 3 OFFSET 1",
            "SELECT CASE WHEN x IS NULL THEN 0 ELSE x END AS v FROM t WHERE x IN (1, 2, 3)",
        ];
        for sql in sqls {
            let st1 = parse_statement(sql).unwrap();
            let printed = st1.to_string();
            let st2 = parse_statement(&printed).unwrap();
            assert_eq!(printed, st2.to_string(), "unstable print for {sql}");
        }
    }

    #[test]
    fn is_null_and_in_negated() {
        let e = parse_expr("x IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
        let e = parse_expr("x NOT IN (1, 2)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }
}
