//! # qymera-sqldb
//!
//! An embedded relational engine built from scratch as the substrate for the
//! Qymera reproduction (SIGMOD-Companion '25: *"Qymera: Simulating Quantum
//! Circuits using RDBMS"*). The paper runs its generated SQL on SQLite and
//! DuckDB; this crate provides the equivalent capability surface the
//! translation layer needs:
//!
//! * a SQL dialect covering `CREATE TABLE` / `INSERT` / `DELETE` / `SELECT`
//!   with CTEs, joins, grouped aggregation, `UNION ALL`, `ORDER BY`/`LIMIT`,
//!   and — crucially — the full bitwise operator set of the paper's Table 1
//!   (`&`, `|`, `~`, `<<`, `>>`);
//! * `HUGEINT` arbitrary-width integers so basis-state indices are not capped
//!   at 63 qubits (needed for the sparse-circuit memory-limit experiment);
//! * a rule-based optimizer (constant folding, predicate pushdown/migration,
//!   hash-join key extraction);
//! * byte-accurate memory accounting with **out-of-core** hash aggregation
//!   and external merge sort, so the paper's 2.0 GB-limit experiment is
//!   reproducible in software.
//!
//! Entry point: [`Database`].

pub mod ast;
pub mod bigbits;
pub mod catalog;
pub mod db;
pub mod error;
#[warn(missing_docs)]
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod schema;
#[warn(missing_docs)]
pub mod storage;
#[warn(missing_docs)]
pub mod table;
#[warn(missing_docs)]
pub mod txn;
pub mod value;
pub mod vexpr;

pub use bigbits::BigBits;
pub use db::{Database, DbStats, DurabilityOptions, ExecPath, ResultSet};
pub use error::{Error, Result};
pub use exec::govern::{AdmissionController, AdmissionGrant, CancelHandle, QueryContext};
pub use txn::{LockMode, LockTable, Session, SharedDb};
pub use storage::budget::MemoryBudget;
pub use storage::fault::{FaultInjector, FaultKind, FaultSchedule, FaultSite};
pub use storage::wal::FsyncPolicy;
pub use storage::spill::Row;
pub use value::Value;
