//! Abstract syntax tree for the supported SQL dialect, plus a pretty-printer
//! whose output re-parses to the same tree (used by round-trip property
//! tests and by `EXPLAIN`-style debugging output).

use std::fmt;

use crate::bigbits::BigBits;

/// A literal constant in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Null,
    Int(i64),
    Big(BigBits),
    Float(f64),
    Str(String),
    Bool(bool),
}

/// Column data types accepted by `CREATE TABLE` and `CAST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    Integer,
    /// Arbitrary-width unsigned integer (see [`crate::bigbits`]).
    HugeInt,
    Double,
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => write!(f, "INTEGER"),
            DataType::HugeInt => write!(f, "HUGEINT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    /// Bitwise NOT `~` (Table 1 of the paper).
    BitNot,
    Not,
}

/// Binary operators in increasing precedence order groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    BitOr,
    BitXor,
    BitAnd,
    Shl,
    Shr,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinaryOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::BitAnd => "&",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
        }
    }
}

/// Scalar or aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Literal),
    /// `table.column` or bare `column`.
    Column { table: Option<String>, name: String },
    Unary { op: UnaryOp, expr: Box<Expr> },
    Binary { left: Box<Expr>, op: BinaryOp, right: Box<Expr> },
    /// Function call — aggregates (`SUM`, `COUNT`, ...) and scalars
    /// (`ABS`, `SQRT`, ...). `COUNT(*)` is `Function { args: [Expr::Star] }`.
    Function { name: String, args: Vec<Expr>, distinct: bool },
    Star,
    Cast { expr: Box<Expr>, ty: DataType },
    IsNull { expr: Box<Expr>, negated: bool },
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
    /// Parenthesized — kept so the printer reproduces the translator's SQL.
    Paren(Box<Expr>),
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column { table: None, name: name.to_string() }
    }

    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column { table: Some(table.to_string()), name: name.to_string() }
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    pub fn float(v: f64) -> Expr {
        Expr::Literal(Literal::Float(v))
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// True if the expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args, .. } => {
                is_aggregate_name(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Paren(expr) => {
                expr.contains_aggregate()
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Case { operand, branches, else_branch } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || branches
                        .iter()
                        .any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_branch.as_deref().is_some_and(Expr::contains_aggregate)
            }
            _ => false,
        }
    }

    /// Visit every column reference.
    pub fn visit_columns(&self, f: &mut impl FnMut(&Option<String>, &str)) {
        match self {
            Expr::Column { table, name } => f(table, name),
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Paren(expr) => {
                expr.visit_columns(f)
            }
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Function { args, .. } => args.iter().for_each(|a| a.visit_columns(f)),
            Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::InList { expr, list, .. } => {
                expr.visit_columns(f);
                list.iter().for_each(|a| a.visit_columns(f));
            }
            Expr::Case { operand, branches, else_branch } => {
                if let Some(op) = operand {
                    op.visit_columns(f);
                }
                for (c, r) in branches {
                    c.visit_columns(f);
                    r.visit_columns(f);
                }
                if let Some(e) = else_branch {
                    e.visit_columns(f);
                }
            }
            Expr::Literal(_) | Expr::Star => {}
        }
    }
}

/// Names treated as aggregate functions by the planner.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "SUM" | "COUNT" | "MIN" | "MAX" | "AVG"
    )
}

/// One item of the SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(String),
}

/// A table in FROM: a named table or a derived subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Named { name: String, alias: Option<String> },
    Subquery { query: Box<Query>, alias: String },
}

impl TableRef {
    /// The name this relation is addressable by in the enclosing scope.
    pub fn visible_name(&self) -> &str {
        match self {
            TableRef::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Subquery { alias, .. } => alias,
        }
    }
}

/// Join flavor as written in the query. `RIGHT JOIN` exists only at the AST
/// level: the planner rewrites it into a [`JoinKind::Left`] join with swapped
/// inputs plus a column-reordering projection, so neither executor needs a
/// right-outer operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Cross,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    pub on: Option<Expr>,
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub joins: Vec<Join>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// Select or UNION ALL chain.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    UnionAll(Box<SetExpr>, Box<SetExpr>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A full query: optional CTEs, a body, and ordering/limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub ctes: Vec<(String, Query)>,
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<(String, DataType)>,
        if_not_exists: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    Query(Query),
    /// `EXPLAIN <query>` — returns the optimized plan as text rows.
    Explain(Query),
    /// `BEGIN [TRANSACTION]` — open a multi-statement transaction.
    Begin,
    /// `COMMIT` — make every statement since `BEGIN` durable atomically.
    Commit,
    /// `ROLLBACK [TO [SAVEPOINT] name]` — discard the whole transaction, or
    /// just the statements after the named savepoint.
    Rollback { to_savepoint: Option<String> },
    /// `SAVEPOINT name` — mark a partial-rollback point inside a transaction.
    Savepoint { name: String },
}

// ---------------------------------------------------------------------------
// Pretty-printer
// ---------------------------------------------------------------------------

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "NULL"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Big(b) => write!(f, "0x{}", b.to_hex()),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Column { table: Some(t), name } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => write!(f, "{name}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "-{expr}"),
                UnaryOp::BitNot => write!(f, "~{expr}"),
                UnaryOp::Not => write!(f, "NOT {expr}"),
            },
            Expr::Binary { left, op, right } => write!(f, "({left} {} {right})", op.symbol()),
            Expr::Function { name, args, distinct } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Star => write!(f, "*"),
            Expr::Cast { expr, ty } => write!(f, "CAST({expr} AS {ty})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Case { operand, branches, else_branch } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_branch {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Paren(e) => write!(f, "({e})"),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias: Some(a) } => write!(f, "{name} AS {a}"),
            TableRef::Named { name, alias: None } => write!(f, "{name}"),
            TableRef::Subquery { query, alias } => write!(f, "({query}) AS {alias}"),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        for j in &self.joins {
            let kw = match j.kind {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT JOIN",
                JoinKind::Right => "RIGHT JOIN",
                JoinKind::Cross => "CROSS JOIN",
            };
            write!(f, " {kw} {}", j.table)?;
            if let Some(on) = &j.on {
                write!(f, " ON {on}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::UnionAll(a, b) => write!(f, "{a} UNION ALL {b}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.ctes.is_empty() {
            write!(f, "WITH ")?;
            for (i, (name, q)) in self.ctes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name} AS ({q})")?;
            }
            write!(f, " ")?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.expr, if o.desc { " DESC" } else { "" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { name, columns, if_not_exists } => {
                write!(
                    f,
                    "CREATE TABLE {}{name} (",
                    if *if_not_exists { "IF NOT EXISTS " } else { "" }
                )?;
                for (i, (c, t)) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} {t}")?;
                }
                write!(f, ")")
            }
            Statement::DropTable { name, if_exists } => {
                write!(f, "DROP TABLE {}{name}", if *if_exists { "IF EXISTS " } else { "" })
            }
            Statement::Insert { table, columns, rows } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                write!(f, " VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Delete { table, where_clause } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Explain(q) => write!(f, "EXPLAIN {q}"),
            Statement::Begin => write!(f, "BEGIN"),
            Statement::Commit => write!(f, "COMMIT"),
            Statement::Rollback { to_savepoint: None } => write!(f, "ROLLBACK"),
            Statement::Rollback { to_savepoint: Some(name) } => {
                write!(f, "ROLLBACK TO SAVEPOINT {name}")
            }
            Statement::Savepoint { name } => write!(f, "SAVEPOINT {name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_parenthesizes_binaries() {
        let e = Expr::binary(
            Expr::binary(Expr::qcol("T0", "s"), BinaryOp::BitAnd, Expr::int(1)),
            BinaryOp::BitOr,
            Expr::qcol("H", "out_s"),
        );
        assert_eq!(e.to_string(), "((T0.s & 1) | H.out_s)");
    }

    #[test]
    fn contains_aggregate_detection() {
        let sum = Expr::Function {
            name: "SUM".into(),
            args: vec![Expr::col("r")],
            distinct: false,
        };
        assert!(sum.contains_aggregate());
        let nested = Expr::binary(sum, BinaryOp::Add, Expr::int(1));
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("r").contains_aggregate());
        let scalar = Expr::Function { name: "ABS".into(), args: vec![Expr::col("x")], distinct: false };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn visit_columns_collects_references() {
        let e = Expr::binary(Expr::qcol("a", "x"), BinaryOp::Add, Expr::col("y"));
        let mut seen = Vec::new();
        e.visit_columns(&mut |t, n| seen.push((t.clone(), n.to_string())));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (Some("a".to_string()), "x".to_string()));
    }

    #[test]
    fn statement_display() {
        let st = Statement::CreateTable {
            name: "T0".into(),
            columns: vec![("s".into(), DataType::Integer), ("r".into(), DataType::Double)],
            if_not_exists: false,
        };
        assert_eq!(st.to_string(), "CREATE TABLE T0 (s INTEGER, r DOUBLE)");
    }

    #[test]
    fn case_expression_display() {
        let e = Expr::Case {
            operand: None,
            branches: vec![(
                Expr::binary(Expr::col("x"), BinaryOp::Gt, Expr::int(0)),
                Expr::int(1),
            )],
            else_branch: Some(Box::new(Expr::int(0))),
        };
        assert_eq!(e.to_string(), "CASE WHEN (x > 0) THEN 1 ELSE 0 END");
    }
}
