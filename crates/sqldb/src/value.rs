//! Runtime SQL values and their operator semantics.
//!
//! The engine supports four non-null types: 64-bit integers, 64-bit floats,
//! UTF-8 text, and [`BigBits`] arbitrary-width unsigned integers (exposed to
//! SQL as `HUGEINT`, produced by hex literals and oversized decimal
//! literals). Numeric operators promote `Int → Float` and `Int → Big` as
//! needed; three-valued NULL logic follows standard SQL.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::bigbits::BigBits;
use crate::error::{Error, Result};

/// A runtime value in a row.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Big(BigBits),
}

impl Value {
    /// SQL type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INTEGER",
            Value::Float(_) => "DOUBLE",
            Value::Str(_) => "TEXT",
            Value::Big(_) => "HUGEINT",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory footprint in bytes, used by the memory ledger.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Value::Str(s) => 16 + s.capacity(),
            Value::Big(b) => 24 + b.heap_bytes(),
            _ => 16,
        }
    }

    /// Numeric interpretation as f64 (for float arithmetic and aggregates).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Big(b) => b
                .to_u64()
                .map(|u| u as f64)
                .ok_or_else(|| Error::Type("HUGEINT too large for DOUBLE context".into())),
            other => Err(Error::Type(format!("expected numeric value, got {}", other.type_name()))),
        }
    }

    /// Integer interpretation (floats must be integral).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Ok(*f as i64),
            Value::Big(b) => b
                .to_i64()
                .ok_or_else(|| Error::Type("HUGEINT too large for INTEGER context".into())),
            other => Err(Error::Type(format!("expected INTEGER value, got {}", other.type_name()))),
        }
    }

    /// Truthiness for WHERE/HAVING: NULL ⇒ None, numeric 0 ⇒ false.
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Int(i) => Ok(Some(*i != 0)),
            Value::Float(f) => Ok(Some(*f != 0.0)),
            Value::Big(b) => Ok(Some(!b.is_zero())),
            Value::Str(_) => Err(Error::Type("TEXT value used as boolean".into())),
        }
    }

    fn as_big(&self, width_hint: usize) -> Result<BigBits> {
        match self {
            Value::Big(b) => Ok(b.clone()),
            Value::Int(i) if *i >= 0 => Ok(BigBits::from_u64(*i as u64, width_hint)),
            Value::Int(_) => Err(Error::Type("negative INTEGER in HUGEINT bitwise context".into())),
            other => Err(Error::Type(format!("expected integer type, got {}", other.type_name()))),
        }
    }

    // ---- arithmetic -------------------------------------------------------

    pub fn add(&self, rhs: &Value) -> Result<Value> {
        numeric_binop(self, rhs, |a, b| {
            a.checked_add(b).ok_or_else(|| Error::Eval("integer overflow in +".into()))
        }, |a, b| a + b)
    }

    pub fn sub(&self, rhs: &Value) -> Result<Value> {
        numeric_binop(self, rhs, |a, b| {
            a.checked_sub(b).ok_or_else(|| Error::Eval("integer overflow in -".into()))
        }, |a, b| a - b)
    }

    pub fn mul(&self, rhs: &Value) -> Result<Value> {
        numeric_binop(self, rhs, |a, b| {
            a.checked_mul(b).ok_or_else(|| Error::Eval("integer overflow in *".into()))
        }, |a, b| a * b)
    }

    pub fn div(&self, rhs: &Value) -> Result<Value> {
        numeric_binop(self, rhs, |a, b| {
            if b == 0 {
                Err(Error::Eval("integer division by zero".into()))
            } else {
                // checked_div also rejects i64::MIN / -1 (overflow).
                a.checked_div(b).ok_or_else(|| Error::Eval("integer overflow in /".into()))
            }
        }, |a, b| a / b)
    }

    pub fn rem(&self, rhs: &Value) -> Result<Value> {
        numeric_binop(self, rhs, |a, b| {
            if b == 0 {
                Err(Error::Eval("integer modulo by zero".into()))
            } else {
                a.checked_rem(b).ok_or_else(|| Error::Eval("integer overflow in %".into()))
            }
        }, |a, b| a % b)
    }

    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| Error::Eval("integer overflow in unary -".into())),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(Error::Type(format!("cannot negate {}", other.type_name()))),
        }
    }

    // ---- bitwise (Table 1 of the paper) -----------------------------------

    pub fn bit_and(&self, rhs: &Value) -> Result<Value> {
        bitwise_binop(self, rhs, |a, b| a & b, |a, b| a.and(b))
    }

    pub fn bit_or(&self, rhs: &Value) -> Result<Value> {
        bitwise_binop(self, rhs, |a, b| a | b, |a, b| a.or(b))
    }

    pub fn bit_xor(&self, rhs: &Value) -> Result<Value> {
        bitwise_binop(self, rhs, |a, b| a ^ b, |a, b| a.xor(b))
    }

    pub fn bit_not(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(!i)),
            Value::Big(b) => Ok(Value::Big(b.not())),
            other => Err(Error::Type(format!("cannot apply ~ to {}", other.type_name()))),
        }
    }

    pub fn shl(&self, rhs: &Value) -> Result<Value> {
        if self.is_null() || rhs.is_null() {
            return Ok(Value::Null);
        }
        let n = shift_amount(rhs)?;
        match self {
            Value::Int(i) => {
                if n < 64 {
                    // Widen into HUGEINT if the shift would overflow i64.
                    let shifted = (*i as i128) << n;
                    if let Ok(v) = i64::try_from(shifted) {
                        return Ok(Value::Int(v));
                    }
                }
                let big = self.as_big(64)?;
                Ok(Value::Big(big.shl(n)))
            }
            Value::Big(b) => Ok(Value::Big(b.shl(n))),
            other => Err(Error::Type(format!("cannot shift {}", other.type_name()))),
        }
    }

    pub fn shr(&self, rhs: &Value) -> Result<Value> {
        if self.is_null() || rhs.is_null() {
            return Ok(Value::Null);
        }
        let n = shift_amount(rhs)?;
        match self {
            Value::Int(i) => Ok(Value::Int(if n >= 64 { 0 } else { ((*i as u64) >> n) as i64 })),
            Value::Big(b) => Ok(Value::Big(b.shr(n))),
            other => Err(Error::Type(format!("cannot shift {}", other.type_name()))),
        }
    }

    // ---- comparison --------------------------------------------------------

    /// Three-valued SQL comparison: `None` if either side is NULL.
    pub fn sql_cmp(&self, rhs: &Value) -> Result<Option<Ordering>> {
        if self.is_null() || rhs.is_null() {
            return Ok(None);
        }
        Ok(Some(self.cmp_non_null(rhs)?))
    }

    fn cmp_non_null(&self, rhs: &Value) -> Result<Ordering> {
        match (self, rhs) {
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Str(_), _) | (_, Value::Str(_)) => {
                Err(Error::Type(format!("cannot compare {} with {}", self.type_name(), rhs.type_name())))
            }
            (Value::Big(a), Value::Big(b)) => Ok(a.cmp_value(b)),
            (Value::Big(a), Value::Int(b)) => Ok(cmp_big_int(a, *b)),
            (Value::Int(a), Value::Big(b)) => Ok(cmp_big_int(b, *a).reverse()),
            (Value::Big(a), Value::Float(f)) => Ok(cmp_f64_total(big_to_f64(a), *f)),
            (Value::Float(f), Value::Big(b)) => Ok(cmp_f64_total(*f, big_to_f64(b))),
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (a, b) => Ok(cmp_f64_total(a.as_f64()?, b.as_f64()?)),
        }
    }

    /// Total ordering for ORDER BY and sort-based algorithms.
    /// NULLs sort first; numbers before text.
    pub fn cmp_total(&self, rhs: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) | Value::Big(_) => 1,
                Value::Str(_) => 2,
            }
        }
        let (ca, cb) = (class(self), class(rhs));
        if ca != cb {
            return ca.cmp(&cb);
        }
        match (self, rhs) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.cmp_non_null(rhs).unwrap_or(Ordering::Equal),
        }
    }

    /// Canonical key for GROUP BY / DISTINCT / hash joins: numerically equal
    /// values of different representations map to the same key.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Int(i) => GroupKey::Int(*i),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 9.2e18 {
                    GroupKey::Int(*f as i64)
                } else {
                    GroupKey::Float(f.to_bits())
                }
            }
            Value::Str(s) => GroupKey::Str(s.clone()),
            Value::Big(b) => match b.to_i64() {
                Some(i) => GroupKey::Int(i),
                None => GroupKey::Big(b.clone()),
            },
        }
    }
}

/// Hashable canonical form of a [`Value`] used as a grouping/join key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    Null,
    Int(i64),
    Float(u64),
    Str(String),
    Big(BigBits),
}

impl GroupKey {
    pub fn heap_bytes(&self) -> usize {
        match self {
            GroupKey::Str(s) => 24 + s.capacity(),
            GroupKey::Big(b) => 32 + b.heap_bytes(),
            _ => 16,
        }
    }
}

fn cmp_big_int(big: &BigBits, int: i64) -> Ordering {
    if int < 0 {
        return Ordering::Greater; // unsigned big >= 0 > negative int
    }
    match big.to_u64() {
        Some(u) => u.cmp(&(int as u64)),
        None => Ordering::Greater,
    }
}

fn big_to_f64(b: &BigBits) -> f64 {
    match b.to_u64() {
        Some(u) => u as f64,
        None => f64::INFINITY, // beyond exact f64 comparison; ordering only
    }
}

fn cmp_f64_total(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

fn shift_amount(v: &Value) -> Result<usize> {
    let n = v.as_i64()?;
    if n < 0 {
        return Err(Error::Eval("negative shift amount".into()));
    }
    Ok(n as usize)
}

fn numeric_binop(
    lhs: &Value,
    rhs: &Value,
    int_op: impl Fn(i64, i64) -> Result<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    match (lhs, rhs) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Int(a), Value::Int(b)) => int_op(*a, *b).map(Value::Int),
        _ => Ok(Value::Float(float_op(lhs.as_f64()?, rhs.as_f64()?))),
    }
}

fn bitwise_binop(
    lhs: &Value,
    rhs: &Value,
    int_op: impl Fn(i64, i64) -> i64,
    big_op: impl Fn(&BigBits, &BigBits) -> BigBits,
) -> Result<Value> {
    match (lhs, rhs) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(int_op(*a, *b))),
        (a @ Value::Big(_), b) | (a, b @ Value::Big(_)) => {
            let wa = if let Value::Big(x) = a { x.width() } else { 64 };
            let wb = if let Value::Big(x) = b { x.width() } else { 64 };
            let w = wa.max(wb);
            Ok(Value::Big(big_op(&a.as_big(w)?, &b.as_big(w)?)))
        }
        (a, b) => Err(Error::Type(format!(
            "bitwise operator requires integer operands, got {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            _ => self.cmp_non_null(other).map(|o| o == Ordering::Equal).unwrap_or(false),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.group_key().hash(state)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Big(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<BigBits> for Value {
    fn from(v: BigBits) -> Self {
        Value::Big(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(2).add(&Value::Float(0.5)).unwrap(), Value::Float(2.5));
        assert_eq!(Value::Float(1.0).mul(&Value::Float(2.0)).unwrap(), Value::Float(2.0));
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
    }

    #[test]
    fn division_semantics() {
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert_eq!(Value::Float(1.0).div(&Value::Float(0.0)).unwrap(), Value::Float(f64::INFINITY));
    }

    #[test]
    fn overflow_is_an_error() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).neg().is_err());
    }

    #[test]
    fn bitwise_int_semantics_match_table1() {
        // the exact operator set from Table 1 of the paper
        assert_eq!(Value::Int(0b1100).bit_and(&Value::Int(0b1010)).unwrap(), Value::Int(0b1000));
        assert_eq!(Value::Int(0b1100).bit_or(&Value::Int(0b1010)).unwrap(), Value::Int(0b1110));
        assert_eq!(Value::Int(1).bit_not().unwrap(), Value::Int(-2));
        assert_eq!(Value::Int(1).shl(&Value::Int(3)).unwrap(), Value::Int(8));
        assert_eq!(Value::Int(8).shr(&Value::Int(2)).unwrap(), Value::Int(2));
        // the Fig. 2 idiom: (s & ~1) | out
        let s = Value::Int(1);
        let masked = s.bit_and(&Value::Int(1).bit_not().unwrap()).unwrap();
        assert_eq!(masked.bit_or(&Value::Int(0)).unwrap(), Value::Int(0));
    }

    #[test]
    fn shl_widens_to_hugeint() {
        let v = Value::Int(1).shl(&Value::Int(80)).unwrap();
        match v {
            Value::Big(b) => assert!(b.bit(80)),
            other => panic!("expected Big, got {other:?}"),
        }
    }

    #[test]
    fn big_int_mixed_bitwise() {
        let big = Value::Big(BigBits::ones(0, 100, 100));
        let masked = big.bit_and(&Value::Int(0b101)).unwrap();
        assert_eq!(masked, Value::Int(0b101));
        assert!(Value::Int(-1).bit_and(&big).is_err());
    }

    #[test]
    fn comparisons_three_valued() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null).unwrap(), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(1.0)).unwrap(), Some(Ordering::Equal));
        assert_eq!(
            Value::Big(BigBits::from_u64(5, 100)).sql_cmp(&Value::Int(5)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Big(BigBits::from_u64(5, 100)).sql_cmp(&Value::Int(-1)).unwrap(),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn group_key_unifies_representations() {
        assert_eq!(Value::Int(5).group_key(), Value::Float(5.0).group_key());
        assert_eq!(Value::Int(5).group_key(), Value::Big(BigBits::from_u64(5, 300)).group_key());
        assert_ne!(Value::Int(5).group_key(), Value::Str("5".into()).group_key());
        assert_eq!(Value::Null.group_key(), GroupKey::Null);
    }

    #[test]
    fn total_order_sorts_nulls_first() {
        let mut vals = [Value::Str("a".into()), Value::Int(2), Value::Null, Value::Float(1.5)];
        vals.sort_by(|a, b| a.cmp_total(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Float(1.5));
        assert_eq!(vals[2], Value::Int(2));
    }

    #[test]
    fn display_round_values() {
        assert_eq!(Value::Float(1.0).to_string(), "1.0");
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert_eq!(Value::Float(h).to_string(), h.to_string());
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn as_bool_truthiness() {
        assert_eq!(Value::Int(0).as_bool().unwrap(), Some(false));
        assert_eq!(Value::Int(3).as_bool().unwrap(), Some(true));
        assert_eq!(Value::Null.as_bool().unwrap(), None);
        assert!(Value::Str("x".into()).as_bool().is_err());
    }
}
