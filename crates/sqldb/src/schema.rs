//! Relation schemas and name resolution.

use crate::ast::DataType;
use crate::error::{Error, Result};

/// One output column of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Qualifier (table name or alias) this column is addressable through.
    pub relation: Option<String>,
    pub name: String,
    /// Declared type if known (base tables); derived columns are dynamic.
    pub ty: Option<DataType>,
}

impl Field {
    pub fn new(relation: Option<&str>, name: &str) -> Self {
        Field { relation: relation.map(str::to_string), name: name.to_string(), ty: None }
    }

    pub fn typed(relation: Option<&str>, name: &str, ty: DataType) -> Self {
        Field {
            relation: relation.map(str::to_string),
            name: name.to_string(),
            ty: Some(ty),
        }
    }
}

/// Ordered column list of a relation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RelSchema {
    pub fields: Vec<Field>,
}

impl RelSchema {
    pub fn new(fields: Vec<Field>) -> Self {
        RelSchema { fields }
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Column names in order (unqualified).
    pub fn names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }

    /// Resolve a (possibly qualified) column reference to its index.
    ///
    /// Matching is case-insensitive, mirroring SQL identifier semantics.
    /// Ambiguous unqualified references are an error.
    pub fn resolve(&self, relation: Option<&str>, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            if !f.name.eq_ignore_ascii_case(name) {
                continue;
            }
            if let Some(rel) = relation {
                match &f.relation {
                    Some(r) if r.eq_ignore_ascii_case(rel) => {}
                    _ => continue,
                }
            }
            if found.is_some() {
                return Err(Error::Plan(format!(
                    "ambiguous column reference `{}`",
                    display_ref(relation, name)
                )));
            }
            found = Some(i);
        }
        found.ok_or_else(|| {
            Error::Plan(format!("unknown column `{}`", display_ref(relation, name)))
        })
    }

    /// Re-qualify every field under a new relation name (for `AS alias`).
    pub fn with_relation(mut self, relation: &str) -> Self {
        for f in &mut self.fields {
            f.relation = Some(relation.to_string());
        }
        self
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &RelSchema) -> RelSchema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        RelSchema { fields }
    }

    /// Indices of all fields belonging to `relation`.
    pub fn relation_indices(&self, relation: &str) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.relation.as_deref().is_some_and(|r| r.eq_ignore_ascii_case(relation))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

fn display_ref(relation: Option<&str>, name: &str) -> String {
    match relation {
        Some(r) => format!("{r}.{name}"),
        None => name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> RelSchema {
        RelSchema::new(vec![
            Field::new(Some("t0"), "s"),
            Field::new(Some("t0"), "r"),
            Field::new(Some("h"), "in_s"),
            Field::new(Some("h"), "r"),
        ])
    }

    #[test]
    fn resolve_qualified() {
        let s = schema();
        assert_eq!(s.resolve(Some("t0"), "s").unwrap(), 0);
        assert_eq!(s.resolve(Some("h"), "in_s").unwrap(), 2);
        assert_eq!(s.resolve(Some("H"), "IN_S").unwrap(), 2, "case-insensitive");
    }

    #[test]
    fn resolve_unqualified_unique() {
        let s = schema();
        assert_eq!(s.resolve(None, "s").unwrap(), 0);
        assert_eq!(s.resolve(None, "in_s").unwrap(), 2);
    }

    #[test]
    fn ambiguous_and_unknown_are_errors() {
        let s = schema();
        assert!(matches!(s.resolve(None, "r"), Err(Error::Plan(_))));
        assert!(matches!(s.resolve(None, "nope"), Err(Error::Plan(_))));
        assert!(matches!(s.resolve(Some("t0"), "in_s"), Err(Error::Plan(_))));
    }

    #[test]
    fn with_relation_requalifies() {
        let s = schema().with_relation("x");
        assert_eq!(s.resolve(Some("x"), "in_s").unwrap(), 2);
        assert!(s.resolve(Some("t0"), "s").is_err());
    }

    #[test]
    fn join_concatenates() {
        let a = RelSchema::new(vec![Field::new(Some("a"), "x")]);
        let b = RelSchema::new(vec![Field::new(Some("b"), "y")]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert_eq!(j.resolve(Some("b"), "y").unwrap(), 1);
        assert_eq!(j.relation_indices("a"), vec![0]);
    }
}
