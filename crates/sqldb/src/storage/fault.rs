//! Deterministic fault injection for every disk-touching path.
//!
//! All WAL, checkpoint, and spill file operations funnel through a shared
//! [`FaultInjector`] before they reach the operating system. In debug builds
//! the injector counts every operation per [`FaultSite`] and can be armed
//! with a deterministic schedule — *fail the nth matching operation* (the
//! crash-matrix driver) or *fail pseudo-randomly from a seed* (soak tests).
//! A fired fault surfaces as a typed [`Error::Io`] whose message names the
//! site and operation index, and can optionally emulate a power cut by
//! letting **half the bytes land** before the failure ([`FaultKind::Torn`]),
//! which is what produces realistic torn WAL tails and short checkpoint
//! writes for recovery to tolerate.
//!
//! In release builds the whole mechanism compiles to a zero-cost
//! passthrough: the injector is a unit struct, its `write_all` wrapper
//! is a direct `write_all`, and every check is `Ok(())` with no atomic
//! traffic — production I/O pays nothing for the test surface.

use std::fs::File;
use std::io::Write;
use std::sync::Arc;

use crate::error::{Error, Result};

/// Where in the engine an I/O operation happens. Every site is a potential
/// injection point for the crash matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A WAL record append (one `write` per length-prefixed record).
    WalAppend,
    /// An `fsync` of the WAL file (per record under `always`, per commit
    /// under `commit`).
    WalFsync,
    /// Truncating the WAL: the post-checkpoint reset and the torn-tail
    /// repair both land here.
    WalTruncate,
    /// A write into the checkpoint temp file (header, per-table section,
    /// per-chunk row block, trailer).
    CheckpointWrite,
    /// `fsync` of the checkpoint temp file (and the directory afterwards).
    CheckpointFsync,
    /// The atomic rename publishing `checkpoint.tmp` as the live checkpoint.
    CheckpointRename,
    /// A spill-file record write (sort runs, aggregate partitions).
    SpillWrite,
    /// A spill-file record read during a merge or partition replay.
    SpillRead,
}

/// Every injection site, in a stable order (crash-matrix iteration).
pub const ALL_FAULT_SITES: [FaultSite; 8] = [
    FaultSite::WalAppend,
    FaultSite::WalFsync,
    FaultSite::WalTruncate,
    FaultSite::CheckpointWrite,
    FaultSite::CheckpointFsync,
    FaultSite::CheckpointRename,
    FaultSite::SpillWrite,
    FaultSite::SpillRead,
];

impl FaultSite {
    #[cfg(debug_assertions)]
    fn index(self) -> usize {
        ALL_FAULT_SITES.iter().position(|s| *s == self).expect("site listed")
    }

    /// Stable textual name used by the round-trippable schedule syntax.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WalAppend => "WalAppend",
            FaultSite::WalFsync => "WalFsync",
            FaultSite::WalTruncate => "WalTruncate",
            FaultSite::CheckpointWrite => "CheckpointWrite",
            FaultSite::CheckpointFsync => "CheckpointFsync",
            FaultSite::CheckpointRename => "CheckpointRename",
            FaultSite::SpillWrite => "SpillWrite",
            FaultSite::SpillRead => "SpillRead",
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FaultSite {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        ALL_FAULT_SITES
            .into_iter()
            .find(|site| site.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| Error::Plan(format!("unknown fault site `{s}`")))
    }
}

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Clean failure: the operation errors and no bytes land (ENOSPC-style).
    Error,
    /// Power-cut emulation: **half** of the buffer lands on disk, then the
    /// operation errors. Produces torn tails for recovery to tolerate.
    Torn,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::Error => "error",
            FaultKind::Torn => "torn",
        })
    }
}

impl std::str::FromStr for FaultKind {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(FaultKind::Error),
            "torn" => Ok(FaultKind::Torn),
            other => Err(Error::Plan(format!("unknown fault kind `{other}`"))),
        }
    }
}

/// A declarative fault schedule, round-trippable through one line of text so
/// a shrunk repro file fully reconstructs it (see [`FaultInjector::arm`]).
///
/// Syntax (case-insensitive site/kind names):
///
/// * `none` — quiescent, nothing fires.
/// * `nth:<site|any>:<n>:<error|torn>` — one-shot: fail the `n`-th upcoming
///   operation matching the site (mirrors [`FaultInjector::arm_nth`]).
/// * `seeded:<seed>:<one_in>:<error|torn>` — fail roughly one in `one_in`
///   operations from a deterministic xorshift stream (mirrors
///   [`FaultInjector::arm_seeded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSchedule {
    /// No faults fire.
    None,
    /// Fail the `nth` (1-based) operation matching `site` (`None` = any).
    Nth {
        /// Restrict to this site, or `None` for any site.
        site: Option<FaultSite>,
        /// 1-based index of the matching operation to fail.
        nth: u64,
        /// How the fault manifests.
        kind: FaultKind,
    },
    /// Fail roughly one in `one_in` operations, seeded deterministically.
    Seeded {
        /// Seed of the xorshift decision stream.
        seed: u64,
        /// Average fail rate denominator (clamped to ≥ 1 when armed).
        one_in: u64,
        /// How the fault manifests.
        kind: FaultKind,
    },
}

impl std::fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSchedule::None => write!(f, "none"),
            FaultSchedule::Nth { site, nth, kind } => match site {
                Some(site) => write!(f, "nth:{site}:{nth}:{kind}"),
                None => write!(f, "nth:any:{nth}:{kind}"),
            },
            FaultSchedule::Seeded { seed, one_in, kind } => {
                write!(f, "seeded:{seed}:{one_in}:{kind}")
            }
        }
    }
}

impl std::str::FromStr for FaultSchedule {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("none") {
            return Ok(FaultSchedule::None);
        }
        let parts: Vec<&str> = s.split(':').collect();
        let bad = || Error::Plan(format!("malformed fault schedule `{s}`"));
        let int = |p: &str| p.parse::<u64>().map_err(|_| bad());
        match parts.as_slice() {
            [tag, site, nth, kind] if tag.eq_ignore_ascii_case("nth") => {
                let site = if site.eq_ignore_ascii_case("any") {
                    None
                } else {
                    Some(site.parse::<FaultSite>()?)
                };
                Ok(FaultSchedule::Nth { site, nth: int(nth)?, kind: kind.parse()? })
            }
            [tag, seed, one_in, kind] if tag.eq_ignore_ascii_case("seeded") => Ok(
                FaultSchedule::Seeded {
                    seed: int(seed)?,
                    one_in: int(one_in)?,
                    kind: kind.parse()?,
                },
            ),
            _ => Err(bad()),
        }
    }
}

/// The armed failure schedule (debug builds only).
#[cfg(debug_assertions)]
#[derive(Debug, Clone)]
enum Schedule {
    /// Fail the `remaining`-th next operation matching `site`
    /// (`None` = any site). One-shot: disarms after firing.
    Nth { site: Option<FaultSite>, remaining: u64, kind: FaultKind },
    /// Fail roughly one in `one_in` matching operations, driven by a
    /// deterministic xorshift stream from the seed.
    Seeded { state: u64, one_in: u64, kind: FaultKind },
}

#[cfg(debug_assertions)]
#[derive(Debug, Default)]
struct State {
    schedule: Option<Schedule>,
    counts: [u64; ALL_FAULT_SITES.len()],
}

/// Shared, injectable I/O gate. See the module docs; obtain one with
/// [`FaultInjector::none`] and arm it with [`FaultInjector::arm_nth`] /
/// [`FaultInjector::arm_seeded`]. Arming is interior-mutable so tests can
/// schedule faults on an injector already owned by a live database.
#[derive(Debug, Default)]
pub struct FaultInjector {
    #[cfg(debug_assertions)]
    state: std::sync::Mutex<State>,
}

impl FaultInjector {
    /// A quiescent injector: counts operations (debug builds) but fails
    /// nothing until armed.
    pub fn none() -> Arc<Self> {
        Arc::new(FaultInjector::default())
    }

    /// Arm: fail the `nth` (1-based) upcoming operation matching `site`
    /// (`None` = any site) with `kind`. One-shot — the schedule disarms
    /// after firing, so subsequent I/O proceeds normally. No-op in release.
    pub fn arm_nth(&self, site: Option<FaultSite>, nth: u64, kind: FaultKind) {
        #[cfg(debug_assertions)]
        {
            let mut st = self.state.lock().unwrap();
            st.schedule =
                Some(Schedule::Nth { site, remaining: nth.max(1), kind });
        }
        #[cfg(not(debug_assertions))]
        let _ = (site, nth, kind);
    }

    /// Arm: fail roughly one in `one_in` operations, chosen by a
    /// deterministic xorshift stream seeded with `seed`. No-op in release.
    pub fn arm_seeded(&self, seed: u64, one_in: u64, kind: FaultKind) {
        #[cfg(debug_assertions)]
        {
            let mut st = self.state.lock().unwrap();
            st.schedule = Some(Schedule::Seeded {
                state: seed | 1, // xorshift must not start at 0
                one_in: one_in.max(1),
                kind,
            });
        }
        #[cfg(not(debug_assertions))]
        let _ = (seed, one_in, kind);
    }

    /// Arm a declarative [`FaultSchedule`] (the round-trippable form used
    /// by repro files). [`FaultSchedule::None`] disarms. No-op in release.
    pub fn arm(&self, schedule: FaultSchedule) {
        match schedule {
            FaultSchedule::None => self.disarm(),
            FaultSchedule::Nth { site, nth, kind } => self.arm_nth(site, nth, kind),
            FaultSchedule::Seeded { seed, one_in, kind } => {
                self.arm_seeded(seed, one_in, kind)
            }
        }
    }

    /// Remove any armed schedule (counters keep running).
    pub fn disarm(&self) {
        #[cfg(debug_assertions)]
        {
            self.state.lock().unwrap().schedule = None;
        }
    }

    /// Operations observed at `site` so far (always 0 in release builds).
    /// The crash matrix runs a workload once against a quiescent injector to
    /// learn each site's op count, then iterates `1..=ops(site)`.
    pub fn ops(&self, site: FaultSite) -> u64 {
        #[cfg(debug_assertions)]
        {
            return self.state.lock().unwrap().counts[site.index()];
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = site;
            0
        }
    }

    /// Total operations observed across all sites (0 in release builds).
    pub fn total_ops(&self) -> u64 {
        #[cfg(debug_assertions)]
        {
            return self.state.lock().unwrap().counts.iter().sum();
        }
        #[cfg(not(debug_assertions))]
        0
    }

    /// Reset all per-site counters to zero (schedule untouched).
    pub fn reset_counts(&self) {
        #[cfg(debug_assertions)]
        {
            self.state.lock().unwrap().counts = Default::default();
        }
    }

    /// Count an operation at `site` and decide whether the armed schedule
    /// fires on it. Returns the fault kind to apply, if any.
    #[cfg(debug_assertions)]
    fn fire(&self, site: FaultSite) -> Option<(FaultKind, u64)> {
        let mut st = self.state.lock().unwrap();
        st.counts[site.index()] += 1;
        let n = st.counts[site.index()];
        match &mut st.schedule {
            Some(Schedule::Nth { site: filter, remaining, kind }) => {
                if filter.is_none_or(|s| s == site) {
                    *remaining -= 1;
                    if *remaining == 0 {
                        let kind = *kind;
                        st.schedule = None; // one-shot
                        return Some((kind, n));
                    }
                }
                None
            }
            Some(Schedule::Seeded { state, one_in, kind }) => {
                // xorshift64: deterministic per (seed, op sequence).
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                (*state % *one_in == 0).then_some((*kind, n))
            }
            None => None,
        }
    }

    /// Gate a non-write operation (rename, truncate, read). Injected faults
    /// surface as a typed [`Error::Io`]; in release this is `Ok(())`.
    #[inline]
    pub(crate) fn check(&self, site: FaultSite) -> Result<()> {
        #[cfg(debug_assertions)]
        if let Some((kind, n)) = self.fire(site) {
            return Err(injected(site, kind, n));
        }
        let _ = site;
        Ok(())
    }

    /// Gate a buffer write. On a [`FaultKind::Torn`] fault the first half of
    /// `buf` is written before the error — emulating a crash mid-write — so
    /// recovery code sees realistic short writes. In release this is a
    /// direct `write_all`.
    #[inline]
    pub(crate) fn write_all(
        &self,
        site: FaultSite,
        w: &mut impl Write,
        buf: &[u8],
    ) -> Result<()> {
        #[cfg(debug_assertions)]
        if let Some((kind, n)) = self.fire(site) {
            if kind == FaultKind::Torn {
                let _ = w.write_all(&buf[..buf.len() / 2]);
                let _ = w.flush();
            }
            return Err(injected(site, kind, n));
        }
        let _ = site;
        w.write_all(buf).map_err(Error::from)
    }

    /// Gate an `fsync`. In release this is a direct `sync_data`.
    #[inline]
    pub(crate) fn fsync(&self, site: FaultSite, file: &File) -> Result<()> {
        #[cfg(debug_assertions)]
        if let Some((kind, n)) = self.fire(site) {
            let _ = kind; // an fsync either happens or doesn't — never torn
            return Err(injected(site, kind, n));
        }
        let _ = site;
        file.sync_data().map_err(Error::from)
    }
}

/// The typed error an injected fault surfaces as. Tests match on the
/// `"injected"` prefix to distinguish scheduled faults from real I/O errors.
#[cfg(debug_assertions)]
fn injected(site: FaultSite, kind: FaultKind, op: u64) -> Error {
    Error::Io(format!("injected {kind:?} fault at {site:?} (op {op})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_injector_counts_but_passes() {
        let inj = FaultInjector::none();
        let mut sink = Vec::new();
        inj.write_all(FaultSite::SpillWrite, &mut sink, b"abcd").unwrap();
        inj.check(FaultSite::WalTruncate).unwrap();
        assert_eq!(sink, b"abcd");
        if cfg!(debug_assertions) {
            assert_eq!(inj.ops(FaultSite::SpillWrite), 1);
            assert_eq!(inj.total_ops(), 2);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn nth_schedule_fires_once_at_site() {
        let inj = FaultInjector::none();
        inj.arm_nth(Some(FaultSite::SpillWrite), 2, FaultKind::Error);
        let mut sink = Vec::new();
        // Other sites don't advance the countdown.
        inj.check(FaultSite::WalAppend).unwrap();
        inj.write_all(FaultSite::SpillWrite, &mut sink, b"aa").unwrap();
        let e = inj.write_all(FaultSite::SpillWrite, &mut sink, b"bb").unwrap_err();
        assert!(matches!(e, Error::Io(m) if m.contains("injected")));
        assert_eq!(sink, b"aa", "clean fault writes nothing");
        // One-shot: disarmed after firing.
        inj.write_all(FaultSite::SpillWrite, &mut sink, b"cc").unwrap();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn torn_fault_writes_half_the_buffer() {
        let inj = FaultInjector::none();
        inj.arm_nth(None, 1, FaultKind::Torn);
        let mut sink = Vec::new();
        let e = inj.write_all(FaultSite::WalAppend, &mut sink, b"12345678").unwrap_err();
        assert!(matches!(e, Error::Io(_)));
        assert_eq!(sink, b"1234", "half the bytes land before the cut");
    }

    #[test]
    fn schedules_round_trip_through_display() {
        let schedules = [
            FaultSchedule::None,
            FaultSchedule::Nth { site: None, nth: 3, kind: FaultKind::Error },
            FaultSchedule::Nth {
                site: Some(FaultSite::CheckpointRename),
                nth: 1,
                kind: FaultKind::Torn,
            },
            FaultSchedule::Seeded { seed: 0xDEAD_BEEF, one_in: 16, kind: FaultKind::Torn },
        ];
        for schedule in schedules {
            let line = schedule.to_string();
            let parsed: FaultSchedule = line.parse().unwrap();
            assert_eq!(parsed, schedule, "round-trip of `{line}`");
        }
        // Every site name parses back to itself.
        for site in ALL_FAULT_SITES {
            assert_eq!(site.to_string().parse::<FaultSite>().unwrap(), site);
        }
        assert!("nth:NoSuchSite:1:error".parse::<FaultSchedule>().is_err());
        assert!("seeded:x:16:error".parse::<FaultSchedule>().is_err());
        assert!("garbage".parse::<FaultSchedule>().is_err());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn parsed_schedule_arms_like_the_direct_call() {
        let direct = FaultInjector::none();
        direct.arm_nth(Some(FaultSite::SpillWrite), 2, FaultKind::Error);
        let parsed = FaultInjector::none();
        parsed.arm("nth:SpillWrite:2:error".parse().unwrap());
        for inj in [&direct, &parsed] {
            let mut sink = Vec::new();
            inj.write_all(FaultSite::SpillWrite, &mut sink, b"aa").unwrap();
            assert!(inj.write_all(FaultSite::SpillWrite, &mut sink, b"bb").is_err());
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn seeded_schedule_is_deterministic() {
        let run = |seed| {
            let inj = FaultInjector::none();
            inj.arm_seeded(seed, 4, FaultKind::Error);
            (0..64)
                .map(|_| inj.check(FaultSite::SpillRead).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
        assert!(run(7).iter().any(|&f| f), "some ops fail");
        assert!(run(7).iter().any(|&f| !f), "some ops pass");
    }
}
