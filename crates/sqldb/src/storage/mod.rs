//! Memory accounting, disk spill, and durability infrastructure.

pub mod budget;
pub mod fault;
pub mod spill;
pub mod wal;
