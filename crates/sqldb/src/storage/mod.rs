//! Memory accounting and disk spill infrastructure.

pub mod budget;
pub mod spill;
