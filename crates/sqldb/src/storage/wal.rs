//! Write-ahead log and checkpointing: the crash-safe durability layer.
//!
//! ROADMAP item 3. A durable database directory contains at most three
//! files:
//!
//! * `wal.qwl` — the write-ahead log. A flat sequence of checksummed,
//!   length-prefixed records: `[u32 len][u32 crc32(payload)][payload]`.
//!   Statements are framed by `Begin{seq}` / `Commit{seq}` records around
//!   their logical payloads (`CreateTable`, `DropTable`, `Insert`,
//!   `Delete`), so recovery replays exactly the **committed prefix**: a
//!   frame with no matching `Commit` — because the process died mid-frame —
//!   is ignored, and a torn or corrupted record ends replay at the last
//!   good boundary (the tail past it is discarded).
//! * `checkpoint.qck` — a full serialized image of every table, stamped
//!   with the statement sequence number it covers. Produced by walking each
//!   table's O(1) `Arc` chunk snapshot (checkpointing never blocks or
//!   copies table data beyond the serialization itself) and published
//!   atomically: written to `checkpoint.tmp`, fsynced, renamed over the old
//!   image, directory fsynced, and only then is the WAL truncated behind
//!   it. A crash in *any* window of that protocol recovers correctly: the
//!   tmp file is ignored and deleted, and replay skips WAL frames whose
//!   `seq` the surviving checkpoint already covers.
//! * `checkpoint.tmp` — transient; deleted on open.
//!
//! Durability knob: `QYMERA_FSYNC` = `always` (fsync every record),
//! `commit` (default — fsync once per statement frame), or `off` (no
//! fsync; crash consistency still holds via checksums, but the tail of
//! acknowledged statements may be lost with the OS cache).
//!
//! Every file operation goes through the shared
//! [`FaultInjector`], which is how
//! the crash-matrix test kills the engine at every one of these steps and
//! asserts recovery.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::ast::DataType;
use crate::error::{Error, Result};
use crate::storage::fault::{FaultInjector, FaultSite};
use crate::storage::spill::{decode_row, encode_row, Row};
use crate::table::Table;

/// WAL file name inside a database directory.
pub const WAL_FILE: &str = "wal.qwl";
/// Live checkpoint image name.
pub const CHECKPOINT_FILE: &str = "checkpoint.qck";
/// In-flight checkpoint image (ignored and removed at open).
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// 8-byte magic prefixing a checkpoint image.
const CHECKPOINT_MAGIC: &[u8; 8] = b"QYCKPT01";

/// When to force WAL bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every record append (slowest, strongest).
    Always,
    /// fsync once per committed statement frame (the default): an
    /// acknowledged statement survives power loss.
    #[default]
    Commit,
    /// Never fsync. Consistency still holds (checksummed replay), but the
    /// tail of acknowledged statements may be lost with the OS cache.
    Off,
}

impl FsyncPolicy {
    /// Read the `QYMERA_FSYNC` environment knob (`always`/`commit`/`off`);
    /// unset defaults to [`FsyncPolicy::Commit`], anything else panics —
    /// the variable exists to *strengthen* guarantees in deployment, and
    /// silently ignoring a typo would invert that.
    pub fn from_env() -> Self {
        match std::env::var("QYMERA_FSYNC") {
            Err(_) => FsyncPolicy::Commit,
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "always" => FsyncPolicy::Always,
                "commit" | "" => FsyncPolicy::Commit,
                "off" => FsyncPolicy::Off,
                other => panic!("QYMERA_FSYNC must be always|commit|off, got `{other}`"),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// crc32 (IEEE 802.3, table-driven) — hand-rolled; the engine vendors no
// checksum crate.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC-32 accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh accumulator (standard all-ones initial state).
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// Record payloads

/// Payload tags (first byte of every record payload).
const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_CREATE: u8 = 3;
const TAG_DROP: u8 = 4;
const TAG_INSERT: u8 = 5;
const TAG_DELETE: u8 = 6;

/// A logical operation recovered from the WAL. One committed statement
/// frame carries one of these — except CTAS, which logs a `CreateTable`
/// followed by one `Insert` per streamed chunk, all inside one frame.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names mirror the statements they log
pub enum WalOp {
    CreateTable { name: String, columns: Vec<(String, DataType)> },
    DropTable { name: String },
    Insert { table: String, rows: Vec<Row> },
    /// The predicate is stored as SQL text (`None` = unconditional):
    /// expressions are pure, so re-parsing and re-evaluating at replay is
    /// deterministic and avoids a second serialization format.
    Delete { table: String, predicate: Option<String> },
}

/// A committed statement frame read back during recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct WalFrame {
    /// Monotonic statement sequence number the frame committed under.
    pub seq: u64,
    /// The statement's logical operations, in apply order.
    pub ops: Vec<WalOp>,
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Integer => 0,
        DataType::Double => 1,
        DataType::Text => 2,
        DataType::HugeInt => 3,
    }
}

fn type_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Integer,
        1 => DataType::Double,
        2 => DataType::Text,
        3 => DataType::HugeInt,
        t => return Err(Error::Io(format!("bad column type tag {t}"))),
    })
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Require `n` more bytes: `bytes::Buf` getters panic on underflow, so all
/// decode paths bounds-check first and surface corruption as [`Error::Io`].
fn need(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        return Err(Error::Io("truncated log record".into()));
    }
    Ok(())
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    let len = get_u32(buf)? as usize;
    need(buf, len)?;
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|e| Error::Io(e.to_string()))
}

fn encode_columns(buf: &mut BytesMut, columns: &[(String, DataType)]) {
    buf.put_u32_le(columns.len() as u32);
    for (name, ty) in columns {
        put_string(buf, name);
        buf.put_u8(type_tag(*ty));
    }
}

fn decode_columns(buf: &mut Bytes) -> Result<Vec<(String, DataType)>> {
    let n = get_u32(buf)? as usize;
    let mut columns = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let name = get_string(buf)?;
        let ty = type_from_tag(get_u8(buf)?)?;
        columns.push((name, ty));
    }
    Ok(columns)
}

/// Decode a record payload. `Ok(None)` for frame-control records
/// (`Begin`/`Commit`), which the replay loop handles by tag directly.
fn decode_op(payload: &mut Bytes) -> Result<WalOp> {
    match get_u8(payload)? {
        TAG_CREATE => Ok(WalOp::CreateTable {
            name: get_string(payload)?,
            columns: decode_columns(payload)?,
        }),
        TAG_DROP => Ok(WalOp::DropTable { name: get_string(payload)? }),
        TAG_INSERT => {
            let table = get_string(payload)?;
            let nrows = get_u32(payload)? as usize;
            let mut rows = Vec::with_capacity(nrows.min(1 << 16));
            for _ in 0..nrows {
                rows.push(decode_row(payload)?);
            }
            Ok(WalOp::Insert { table, rows })
        }
        TAG_DELETE => {
            let table = get_string(payload)?;
            let predicate = match get_u8(payload)? {
                0 => None,
                _ => Some(get_string(payload)?),
            };
            Ok(WalOp::Delete { table, predicate })
        }
        t => Err(Error::Io(format!("bad log record tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// The log itself

/// Append-side of the write-ahead log. All appends go through the shared
/// [`FaultInjector`]; `good_end` tracks the byte offset of the last
/// **committed frame** boundary, and any failed append triggers a
/// truncate-back repair to that boundary so the next frame starts clean.
#[derive(Debug)]
struct Wal {
    file: File,
    len: u64,
    /// End offset of the last committed frame; repairs truncate here.
    good_end: u64,
    /// Set when a repair itself failed: the on-disk tail is unknown, so all
    /// further appends are refused until a checkpoint resets the log.
    poisoned: bool,
}

/// Everything recovered from a database directory at open.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Statement sequence the checkpoint covers, with its table images.
    pub checkpoint: Option<(u64, Vec<CkptTable>)>,
    /// Committed WAL frames with `seq` beyond the checkpoint, in order.
    pub frames: Vec<WalFrame>,
}

/// One table image inside a checkpoint.
#[derive(Debug)]
pub struct CkptTable {
    /// Declared table name (original casing).
    pub name: String,
    /// Declared columns in schema order.
    pub columns: Vec<(String, DataType)>,
    /// Every row, already coerced to the declared types.
    pub rows: Vec<Row>,
}

/// The durable half of a database: WAL appends, statement framing,
/// checkpoint publication, and recovery. Owned by
/// [`Database`](crate::db::Database) when opened with a path.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal,
    policy: FsyncPolicy,
    injector: Arc<FaultInjector>,
    /// Sequence number the next statement frame will carry.
    next_seq: u64,
    /// Sequence of the last committed frame (what a checkpoint covers).
    last_committed: u64,
    /// Auto-checkpoint once the WAL grows past this many bytes
    /// (0 = never).
    pub checkpoint_every_bytes: u64,
}

/// Default WAL size that triggers an automatic checkpoint.
pub const DEFAULT_CHECKPOINT_BYTES: u64 = 8 * 1024 * 1024;

impl DurableStore {
    /// Open (or create) the durable store in `dir`, recovering the last
    /// checkpoint and the committed WAL prefix. Any torn tail — a frame
    /// without its `Commit`, a half-written record, a corrupted checksum —
    /// is discarded and the log truncated back to the last good boundary.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        injector: Arc<FaultInjector>,
    ) -> Result<(Self, Recovered)> {
        fs::create_dir_all(dir)?;
        // A crash mid-checkpoint may leave a tmp image; it covers nothing.
        let _ = fs::remove_file(dir.join(CHECKPOINT_TMP));

        let checkpoint = read_checkpoint(&dir.join(CHECKPOINT_FILE))?;
        let ckpt_seq = checkpoint.as_ref().map_or(0, |(seq, _)| *seq);

        let wal_path = dir.join(WAL_FILE);
        let mut file =
            OpenOptions::new()
                .create(true)
                .truncate(false)
                .read(true)
                .write(true)
                .open(&wal_path)?;
        let (frames, committed_end, max_seq) = replay_committed(&mut file, ckpt_seq)?;
        // Discard the torn/uncommitted tail so appends start at a clean
        // boundary. (A plain open never injects: schedules arm later.)
        file.set_len(committed_end)?;
        file.seek(SeekFrom::Start(committed_end))?;

        let next_seq = max_seq.max(ckpt_seq) + 1;
        let store = DurableStore {
            dir: dir.to_path_buf(),
            wal: Wal {
                file,
                len: committed_end,
                good_end: committed_end,
                poisoned: false,
            },
            policy,
            injector,
            next_seq,
            last_committed: max_seq.max(ckpt_seq),
            checkpoint_every_bytes: DEFAULT_CHECKPOINT_BYTES,
        };
        Ok((store, Recovered { checkpoint, frames }))
    }

    /// Database directory this store persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current WAL length in bytes (committed frames only between
    /// statements).
    pub fn wal_len(&self) -> u64 {
        self.wal.len
    }

    /// The fsync policy in force.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The injector gating this store's file I/O.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Whether the WAL grew past the auto-checkpoint threshold.
    pub fn wants_checkpoint(&self) -> bool {
        self.checkpoint_every_bytes > 0 && self.wal.len > self.checkpoint_every_bytes
    }

    fn append_record(&mut self, payload: &[u8]) -> Result<()> {
        if self.wal.poisoned {
            return Err(Error::Io(
                "write-ahead log poisoned by an earlier failed repair; \
                 checkpoint or reopen to continue"
                    .into(),
            ));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        match self.injector.write_all(FaultSite::WalAppend, &mut self.wal.file, &frame) {
            Ok(()) => {
                self.wal.len += frame.len() as u64;
                if self.policy == FsyncPolicy::Always {
                    if let Err(e) =
                        self.injector.fsync(FaultSite::WalFsync, &self.wal.file)
                    {
                        self.repair();
                        return Err(e);
                    }
                }
                Ok(())
            }
            Err(e) => {
                // A torn write may have landed part of the record; the
                // on-disk length is unknown, so roll the file back to the
                // last committed boundary before anything else is appended.
                self.wal.len = self.wal.file.seek(SeekFrom::End(0)).unwrap_or(self.wal.len);
                self.repair();
                Err(e)
            }
        }
    }

    /// Truncate the log back to the last committed frame boundary. On
    /// failure the log is poisoned (appends refused) until a checkpoint
    /// resets it — recovery tolerates the garbage tail either way via
    /// checksums and commit framing.
    fn repair(&mut self) {
        let ok = self.injector.check(FaultSite::WalTruncate).is_ok()
            && self.wal.file.set_len(self.wal.good_end).is_ok()
            && self.wal.file.seek(SeekFrom::Start(self.wal.good_end)).is_ok();
        if ok {
            self.wal.len = self.wal.good_end;
        } else {
            self.wal.poisoned = true;
        }
    }

    /// Start a statement frame; returns its sequence number. The frame
    /// holds no locks and buffers nothing — records land in the file as
    /// they are logged, and only `commit` makes them recoverable.
    pub fn begin(&mut self) -> Result<u64> {
        let seq = self.next_seq;
        let mut buf = BytesMut::with_capacity(9);
        buf.put_u8(TAG_BEGIN);
        buf.put_u64_le(seq);
        self.append_record(&buf)?;
        Ok(seq)
    }

    /// Log a `CREATE TABLE` inside the open frame.
    pub fn log_create(&mut self, name: &str, columns: &[(String, DataType)]) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_CREATE);
        put_string(&mut buf, name);
        encode_columns(&mut buf, columns);
        self.append_record(&buf)
    }

    /// Log a `DROP TABLE` inside the open frame.
    pub fn log_drop(&mut self, name: &str) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_DROP);
        put_string(&mut buf, name);
        self.append_record(&buf)
    }

    /// Log an `INSERT` of already-evaluated rows inside the open frame.
    /// Rows are borrowed: logging copies them into the record buffer but
    /// never clones the caller's vector.
    pub fn log_insert(&mut self, table: &str, rows: &[Row]) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_INSERT);
        put_string(&mut buf, table);
        buf.put_u32_le(rows.len() as u32);
        for row in rows {
            encode_row(&mut buf, row);
        }
        self.append_record(&buf)
    }

    /// Log a `DELETE` inside the open frame (predicate as SQL text).
    pub fn log_delete(&mut self, table: &str, predicate: Option<&str>) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_DELETE);
        put_string(&mut buf, table);
        match predicate {
            None => buf.put_u8(0),
            Some(p) => {
                buf.put_u8(1);
                put_string(&mut buf, p);
            }
        }
        self.append_record(&buf)
    }

    /// Commit the open frame: append the `Commit` record, force it down
    /// per the fsync policy, and advance the committed boundary. After
    /// `Ok`, the statement survives a crash; on `Err` the frame is rolled
    /// off the log and the caller must undo its in-memory effects.
    pub fn commit(&mut self, seq: u64) -> Result<()> {
        let mut buf = BytesMut::with_capacity(9);
        buf.put_u8(TAG_COMMIT);
        buf.put_u64_le(seq);
        self.append_record(&buf)?;
        if self.policy != FsyncPolicy::Off {
            if let Err(e) = self.injector.fsync(FaultSite::WalFsync, &self.wal.file) {
                // Unknown durability of the frame: discard it so the
                // in-memory rollback and recovery agree.
                self.repair();
                return Err(e);
            }
        }
        self.wal.good_end = self.wal.len;
        self.last_committed = seq;
        self.next_seq = seq + 1;
        Ok(())
    }

    /// Abandon the open frame after an in-memory apply error: best-effort
    /// truncate back to the committed boundary. Even if the truncate fails,
    /// recovery ignores the frame (no `Commit` record), so this never
    /// errors.
    pub fn abort(&mut self) {
        self.repair();
    }

    /// Write a checkpoint covering every committed statement, publish it
    /// atomically, and truncate the WAL behind it. `tables` must be the
    /// live catalog state (sorted iteration keeps the image
    /// deterministic). On error the durable state is unchanged — the tmp
    /// image is removed and the WAL still covers everything.
    pub fn checkpoint(&mut self, tables: &[&Table]) -> Result<()> {
        let seq = self.last_committed;
        let tmp = self.dir.join(CHECKPOINT_TMP);
        let result = self.write_checkpoint_tmp(&tmp, seq, tables);
        if let Err(e) = result {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        // Atomic publication: rename over the previous image, then fsync
        // the directory so the rename itself is durable.
        self.injector.check(FaultSite::CheckpointRename)?;
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        if self.policy != FsyncPolicy::Off {
            let dirf = File::open(&self.dir)?;
            self.injector.fsync(FaultSite::CheckpointFsync, &dirf)?;
        }
        // The WAL's frames are all covered by the image now. A failure
        // here is benign (replay skips frames with seq ≤ checkpoint seq),
        // but surfaces as an error so operators see the log not shrinking.
        self.injector.check(FaultSite::WalTruncate)?;
        self.wal.file.set_len(0)?;
        self.wal.file.seek(SeekFrom::Start(0))?;
        self.wal.len = 0;
        self.wal.good_end = 0;
        self.wal.poisoned = false;
        Ok(())
    }

    fn write_checkpoint_tmp(
        &mut self,
        tmp: &Path,
        seq: u64,
        tables: &[&Table],
    ) -> Result<()> {
        let mut file =
            OpenOptions::new().create(true).write(true).truncate(true).open(tmp)?;
        let mut crc = Crc32::new();
        let write = |file: &mut File, crc: &mut Crc32, bytes: &[u8]| -> Result<()> {
            crc.update(bytes);
            self.injector.write_all(FaultSite::CheckpointWrite, file, bytes)
        };

        self.injector.write_all(FaultSite::CheckpointWrite, &mut file, CHECKPOINT_MAGIC)?;
        let mut head = BytesMut::new();
        head.put_u64_le(seq);
        head.put_u32_le(tables.len() as u32);
        write(&mut file, &mut crc, &head)?;

        let mut buf = BytesMut::new();
        for table in tables {
            buf.clear();
            put_string(&mut buf, table.name());
            encode_columns(&mut buf, table.columns());
            buf.put_u64_le(table.row_count() as u64);
            write(&mut file, &mut crc, &buf)?;
            // Walk the O(1) Arc snapshot chunk by chunk: serialization
            // streams without materializing the table as rows.
            let snapshot = table.snapshot();
            for chunk in snapshot.chunks() {
                buf.clear();
                for i in 0..chunk.rows() {
                    encode_row(&mut buf, &chunk.row(i));
                }
                write(&mut file, &mut crc, &buf)?;
            }
        }
        let trailer = crc.finish().to_le_bytes();
        self.injector.write_all(FaultSite::CheckpointWrite, &mut file, &trailer)?;
        self.injector.fsync(FaultSite::CheckpointFsync, &file)?;
        Ok(())
    }
}

/// Read and verify a checkpoint image; `Ok(None)` when absent. A corrupted
/// image (bad magic, bad trailer CRC, truncated body) is an error — unlike
/// a torn WAL tail it cannot be partially trusted, because it *replaces*
/// state rather than appending to it.
fn read_checkpoint(path: &Path) -> Result<Option<(u64, Vec<CkptTable>)>> {
    let data = match fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if data.len() < CHECKPOINT_MAGIC.len() + 4 || &data[..8] != CHECKPOINT_MAGIC {
        return Err(Error::Io("checkpoint image has bad magic".into()));
    }
    let body = &data[8..data.len() - 4];
    let stored =
        u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4-byte trailer"));
    if crc32(body) != stored {
        return Err(Error::Io("checkpoint image failed checksum".into()));
    }
    let mut buf = Bytes::from(body.to_vec());
    let seq = get_u64(&mut buf)?;
    let ntables = get_u32(&mut buf)? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1 << 12));
    for _ in 0..ntables {
        let name = get_string(&mut buf)?;
        let columns = decode_columns(&mut buf)?;
        let nrows = get_u64(&mut buf)? as usize;
        let mut rows = Vec::with_capacity(nrows.min(1 << 20));
        for _ in 0..nrows {
            rows.push(decode_row(&mut buf)?);
        }
        tables.push(CkptTable { name, columns, rows });
    }
    Ok(Some((seq, tables)))
}

/// Scan the WAL, returning the committed frames with `seq > ckpt_seq`, the
/// byte offset just past the last committed frame, and the highest
/// committed `seq` seen. Stops — without error — at the first torn or
/// corrupted record: everything past the last `Commit` is a casualty of
/// the crash, by design.
fn replay_committed(
    file: &mut File,
    ckpt_seq: u64,
) -> Result<(Vec<WalFrame>, u64, u64)> {
    let mut data = Vec::new();
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut data)?;

    let mut frames = Vec::new();
    let mut pending: Option<WalFrame> = None;
    let mut offset = 0usize;
    let mut committed_end = 0u64;
    let mut max_seq = 0u64;

    while data.len() - offset >= 8 {
        let len =
            u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes"))
                as usize;
        let stored =
            u32::from_le_bytes(data[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let Some(end) = offset.checked_add(8 + len) else { break };
        if end > data.len() {
            break; // torn tail: record extends past the file
        }
        let payload = &data[offset + 8..end];
        if crc32(payload) != stored {
            break; // corrupted record: stop at the last good boundary
        }
        let mut bytes = Bytes::from(payload.to_vec());
        // Tag dispatch: frame control inline, payload ops via decode_op.
        let Ok(tag) = get_u8(&mut bytes) else { break };
        match tag {
            TAG_BEGIN => {
                let Ok(seq) = get_u64(&mut bytes) else { break };
                // A Begin while a frame is pending means the previous frame
                // never committed (crash mid-statement): drop it.
                pending = Some(WalFrame { seq, ops: Vec::new() });
            }
            TAG_COMMIT => {
                let Ok(seq) = get_u64(&mut bytes) else { break };
                if let Some(frame) = pending.take() {
                    if frame.seq == seq {
                        max_seq = max_seq.max(seq);
                        committed_end = end as u64;
                        if seq > ckpt_seq {
                            frames.push(frame);
                        }
                    }
                }
            }
            _ => {
                let mut full = Bytes::from(payload.to_vec());
                let Ok(op) = decode_op(&mut full) else { break };
                if let Some(frame) = pending.as_mut() {
                    frame.ops.push(op);
                }
                // An op outside any frame is tolerated and ignored — it can
                // only arise from a repair that half-succeeded.
            }
        }
        offset = end;
    }
    Ok((frames, committed_end, max_seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::budget::MemoryBudget;
    use crate::value::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qymera-wal-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> (DurableStore, Recovered) {
        DurableStore::open(dir, FsyncPolicy::Commit, FaultInjector::none()).unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn committed_frames_replay_in_order() {
        let dir = tmpdir("replay");
        {
            let (mut store, rec) = open(&dir);
            assert!(rec.frames.is_empty() && rec.checkpoint.is_none());
            let seq = store.begin().unwrap();
            store
                .log_create("t", &[("a".into(), DataType::Integer)])
                .unwrap();
            store.commit(seq).unwrap();
            let seq = store.begin().unwrap();
            store.log_insert("t", &[vec![Value::Int(7)]]).unwrap();
            store.commit(seq).unwrap();
        }
        let (_, rec) = open(&dir);
        assert_eq!(rec.frames.len(), 2);
        assert_eq!(rec.frames[0].seq, 1);
        assert!(matches!(&rec.frames[0].ops[0], WalOp::CreateTable { name, .. } if name == "t"));
        assert!(matches!(
            &rec.frames[1].ops[0],
            WalOp::Insert { rows, .. } if rows == &vec![vec![Value::Int(7)]]
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_frame_is_invisible() {
        let dir = tmpdir("uncommitted");
        {
            let (mut store, _) = open(&dir);
            let seq = store.begin().unwrap();
            store.log_drop("t").unwrap();
            store.commit(seq).unwrap();
            // Frame without a commit: simulates a crash mid-statement.
            store.begin().unwrap();
            store.log_drop("u").unwrap();
        }
        let (store, rec) = open(&dir);
        assert_eq!(rec.frames.len(), 1);
        assert!(matches!(&rec.frames[0].ops[0], WalOp::DropTable { name } if name == "t"));
        // Recovery truncated the uncommitted tail.
        assert_eq!(store.wal_len(), fs::metadata(dir.join(WAL_FILE)).unwrap().len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_and_corruption_stop_replay_cleanly() {
        let dir = tmpdir("torn");
        {
            let (mut store, _) = open(&dir);
            for i in 0..3 {
                let seq = store.begin().unwrap();
                store.log_insert("t", &[vec![Value::Int(i)]]).unwrap();
                store.commit(seq).unwrap();
            }
        }
        let wal = dir.join(WAL_FILE);
        let full = fs::read(&wal).unwrap();
        // Truncate at every byte boundary: replay must never error and
        // must recover a prefix of the three frames.
        for cut in 0..full.len() {
            fs::write(&wal, &full[..cut]).unwrap();
            let (_, rec) = open(&dir);
            assert!(rec.frames.len() <= 3);
            for (i, f) in rec.frames.iter().enumerate() {
                assert_eq!(f.seq, i as u64 + 1);
            }
        }
        // Flip a byte mid-file: replay stops at the corruption.
        fs::write(&wal, &full).unwrap();
        let mut corrupted = full.clone();
        corrupted[full.len() / 2] ^= 0xFF;
        fs::write(&wal, &corrupted).unwrap();
        let (_, rec) = open(&dir);
        assert!(rec.frames.len() < 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_covers_and_truncates() {
        let dir = tmpdir("ckpt");
        let budget = MemoryBudget::unlimited();
        {
            let (mut store, _) = open(&dir);
            let seq = store.begin().unwrap();
            store
                .log_create("t", &[("a".into(), DataType::Integer)])
                .unwrap();
            store.commit(seq).unwrap();

            let mut t = Table::new(
                "t",
                vec![("a".into(), DataType::Integer)],
                budget.clone(),
            );
            t.insert_rows(vec![vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap();
            store.checkpoint(&[&t]).unwrap();
            assert_eq!(store.wal_len(), 0);

            // One more statement after the checkpoint.
            let seq = store.begin().unwrap();
            store.log_insert("t", &[vec![Value::Int(3)]]).unwrap();
            store.commit(seq).unwrap();
        }
        let (_, rec) = open(&dir);
        let (seq, tables) = rec.checkpoint.expect("checkpoint written");
        assert_eq!(seq, 1);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        // Only the post-checkpoint frame replays.
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.frames[0].seq, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checkpoint_is_a_typed_error() {
        let dir = tmpdir("badckpt");
        {
            let (mut store, _) = open(&dir);
            let t = Table::new(
                "t",
                vec![("a".into(), DataType::Integer)],
                MemoryBudget::unlimited(),
            );
            let seq = store.begin().unwrap();
            store.log_create("t", &[("a".into(), DataType::Integer)]).unwrap();
            store.commit(seq).unwrap();
            store.checkpoint(&[&t]).unwrap();
        }
        let path = dir.join(CHECKPOINT_FILE);
        let mut img = fs::read(&path).unwrap();
        let mid = img.len() / 2;
        img[mid] ^= 0xFF;
        fs::write(&path, &img).unwrap();
        let err = DurableStore::open(&dir, FsyncPolicy::Commit, FaultInjector::none())
            .unwrap_err();
        assert!(matches!(err, Error::Io(m) if m.contains("checksum")));
        let _ = fs::remove_dir_all(&dir);
    }
}
