//! Write-ahead log and checkpointing: the crash-safe durability layer.
//!
//! ROADMAP item 3. A durable database directory contains at most three
//! files:
//!
//! * `wal.qwl` — the write-ahead log. A flat sequence of checksummed,
//!   length-prefixed records: `[u32 len][u32 crc32(payload)][payload]`.
//!   Work is framed by **transactions**: a `Begin{txn}` record opens a
//!   frame, logical payloads (`CreateTable`, `DropTable`, `Insert`,
//!   `Delete`) each carry the `txn` id they belong to, and the frame ends
//!   with `Commit{txn, commit_seq}` (durable) or `Abort{txn}` (discarded).
//!   An auto-commit statement is simply a one-statement transaction.
//!   Frames from concurrent sessions may interleave freely; recovery keys
//!   pending frames by `txn` id and replays exactly the **committed
//!   frames in commit order**: a frame with no `Commit` — because the
//!   process died mid-transaction — is ignored, an `Abort`ed frame is
//!   dropped, a `RollbackSp{txn, n}` record discards that frame's last
//!   `n` ops (crash-safe savepoint rollback), and a torn or corrupted
//!   record ends replay at the last good boundary (the tail past it is
//!   discarded).
//! * `checkpoint.qck` — a full serialized image of every table, stamped
//!   with the commit sequence number it covers. Produced by walking each
//!   table's O(1) `Arc` chunk snapshot (checkpointing never blocks or
//!   copies table data beyond the serialization itself) and published
//!   atomically: written to `checkpoint.tmp`, fsynced, renamed over the old
//!   image, directory fsynced, and only then is the WAL truncated behind
//!   it. A crash in *any* window of that protocol recovers correctly: the
//!   tmp file is ignored and deleted, and replay skips WAL frames whose
//!   `commit_seq` the surviving checkpoint already covers. While a
//!   transaction is open a checkpoint runs in *keep-tail* mode: the image
//!   serializes only committed state and the WAL is left intact so the
//!   in-flight frames stay replayable.
//! * `checkpoint.tmp` — transient; deleted on open.
//!
//! Durability knob: `QYMERA_FSYNC` = `always` (fsync every record),
//! `commit` (default — fsync once per committed frame), or `off` (no
//! fsync; crash consistency still holds via checksums, but the tail of
//! acknowledged transactions may be lost with the OS cache).
//!
//! Every file operation goes through the shared
//! [`FaultInjector`], which is how
//! the crash-matrix test kills the engine at every one of these steps and
//! asserts recovery.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::ast::DataType;
use crate::error::{Error, Result};
use crate::storage::fault::{FaultInjector, FaultSite};
use crate::storage::spill::{decode_row, encode_row, Row};
use crate::table::TableSnapshot;

/// WAL file name inside a database directory.
pub const WAL_FILE: &str = "wal.qwl";
/// Live checkpoint image name.
pub const CHECKPOINT_FILE: &str = "checkpoint.qck";
/// In-flight checkpoint image (ignored and removed at open).
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// 8-byte magic prefixing a checkpoint image.
const CHECKPOINT_MAGIC: &[u8; 8] = b"QYCKPT01";

/// When to force WAL bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every record append (slowest, strongest).
    Always,
    /// fsync once per committed statement frame (the default): an
    /// acknowledged statement survives power loss.
    #[default]
    Commit,
    /// Never fsync. Consistency still holds (checksummed replay), but the
    /// tail of acknowledged statements may be lost with the OS cache.
    Off,
}

impl FsyncPolicy {
    /// Read the `QYMERA_FSYNC` environment knob (`always`/`commit`/`off`);
    /// unset defaults to [`FsyncPolicy::Commit`], anything else panics —
    /// the variable exists to *strengthen* guarantees in deployment, and
    /// silently ignoring a typo would invert that.
    pub fn from_env() -> Self {
        match std::env::var("QYMERA_FSYNC") {
            Err(_) => FsyncPolicy::Commit,
            Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "always" => FsyncPolicy::Always,
                "commit" | "" => FsyncPolicy::Commit,
                "off" => FsyncPolicy::Off,
                other => panic!("QYMERA_FSYNC must be always|commit|off, got `{other}`"),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// crc32 (IEEE 802.3, table-driven) — hand-rolled; the engine vendors no
// checksum crate.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC-32 accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh accumulator (standard all-ones initial state).
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// Record payloads

/// Payload tags (first byte of every record payload).
const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_CREATE: u8 = 3;
const TAG_DROP: u8 = 4;
const TAG_INSERT: u8 = 5;
const TAG_DELETE: u8 = 6;
/// Transaction rolled back: replay drops its pending frame. Written only
/// when the frame's bytes cannot simply be truncated off the tail (another
/// session's records interleave with them).
const TAG_ABORT: u8 = 7;
/// `ROLLBACK TO SAVEPOINT`: replay drops the last `n` ops of the pending
/// frame. Same truncate-vs-record rule as `Abort`.
const TAG_RBSP: u8 = 8;

/// A logical operation recovered from the WAL. An auto-commit statement
/// frame carries one of these — except CTAS, which logs a `CreateTable`
/// followed by one `Insert` per streamed chunk; a multi-statement
/// transaction carries one per logged statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names mirror the statements they log
pub enum WalOp {
    CreateTable { name: String, columns: Vec<(String, DataType)> },
    DropTable { name: String },
    Insert { table: String, rows: Vec<Row> },
    /// The predicate is stored as SQL text (`None` = unconditional):
    /// expressions are pure, so re-parsing and re-evaluating at replay is
    /// deterministic and avoids a second serialization format.
    Delete { table: String, predicate: Option<String> },
}

/// A committed transaction frame read back during recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct WalFrame {
    /// Transaction id the frame was logged under (allocation order — not
    /// commit order when sessions interleave).
    pub txn: u64,
    /// Monotonic commit sequence number: the order frames became durable,
    /// and what a checkpoint covers.
    pub commit_seq: u64,
    /// The transaction's logical operations, in apply order.
    pub ops: Vec<WalOp>,
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Integer => 0,
        DataType::Double => 1,
        DataType::Text => 2,
        DataType::HugeInt => 3,
    }
}

fn type_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Integer,
        1 => DataType::Double,
        2 => DataType::Text,
        3 => DataType::HugeInt,
        t => return Err(Error::Io(format!("bad column type tag {t}"))),
    })
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Require `n` more bytes: `bytes::Buf` getters panic on underflow, so all
/// decode paths bounds-check first and surface corruption as [`Error::Io`].
fn need(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        return Err(Error::Io("truncated log record".into()));
    }
    Ok(())
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    let len = get_u32(buf)? as usize;
    need(buf, len)?;
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|e| Error::Io(e.to_string()))
}

fn encode_columns(buf: &mut BytesMut, columns: &[(String, DataType)]) {
    buf.put_u32_le(columns.len() as u32);
    for (name, ty) in columns {
        put_string(buf, name);
        buf.put_u8(type_tag(*ty));
    }
}

fn decode_columns(buf: &mut Bytes) -> Result<Vec<(String, DataType)>> {
    let n = get_u32(buf)? as usize;
    let mut columns = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let name = get_string(buf)?;
        let ty = type_from_tag(get_u8(buf)?)?;
        columns.push((name, ty));
    }
    Ok(columns)
}

/// Decode an op record payload: `[tag][u64 txn][body]`. Frame-control
/// records (`Begin`/`Commit`/`Abort`/`RollbackSp`) are handled by tag
/// directly in the replay loop and never reach this function.
fn decode_op(payload: &mut Bytes) -> Result<(u64, WalOp)> {
    let tag = get_u8(payload)?;
    let txn = get_u64(payload)?;
    let op = match tag {
        TAG_CREATE => WalOp::CreateTable {
            name: get_string(payload)?,
            columns: decode_columns(payload)?,
        },
        TAG_DROP => WalOp::DropTable { name: get_string(payload)? },
        TAG_INSERT => {
            let table = get_string(payload)?;
            let nrows = get_u32(payload)? as usize;
            let mut rows = Vec::with_capacity(nrows.min(1 << 16));
            for _ in 0..nrows {
                rows.push(decode_row(payload)?);
            }
            WalOp::Insert { table, rows }
        }
        TAG_DELETE => {
            let table = get_string(payload)?;
            let predicate = match get_u8(payload)? {
                0 => None,
                _ => Some(get_string(payload)?),
            };
            WalOp::Delete { table, predicate }
        }
        t => return Err(Error::Io(format!("bad log record tag {t}"))),
    };
    Ok((txn, op))
}

// ---------------------------------------------------------------------------
// The log itself

/// Append-side of the write-ahead log. All appends go through the shared
/// [`FaultInjector`]; `good_end` tracks the byte offset of the last
/// **committed frame** boundary, and any failed append triggers a
/// truncate-back repair to that boundary so the next frame starts clean.
#[derive(Debug)]
struct Wal {
    file: File,
    len: u64,
    /// End offset of the last committed frame; repairs truncate here.
    good_end: u64,
    /// `Some(txn)` when every byte past `good_end` belongs to that one
    /// transaction. Its rollback (full or to a savepoint) can then be a
    /// plain truncate — zero WAL residue — instead of an `Abort` /
    /// `RollbackSp` record.
    tail_owner: Option<u64>,
    /// Set when a repair itself failed: the on-disk tail is unknown, so all
    /// further appends are refused until a checkpoint resets the log.
    poisoned: bool,
    /// Bumped on every crash-repair truncation. An open transaction whose
    /// records may have been cut records the epoch at `BEGIN` and aborts
    /// when it no longer matches.
    repair_epoch: u64,
}

/// Everything recovered from a database directory at open.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Commit sequence the checkpoint covers, with its table images.
    pub checkpoint: Option<(u64, Vec<CkptTable>)>,
    /// Committed WAL frames with `commit_seq` beyond the checkpoint, in
    /// commit order.
    pub frames: Vec<WalFrame>,
}

/// One table image inside a checkpoint.
#[derive(Debug)]
pub struct CkptTable {
    /// Declared table name (original casing).
    pub name: String,
    /// Declared columns in schema order.
    pub columns: Vec<(String, DataType)>,
    /// Every row, already coerced to the declared types.
    pub rows: Vec<Row>,
}

/// The durable half of a database: WAL appends, transaction framing,
/// checkpoint publication, and recovery. Owned by
/// [`Database`](crate::db::Database) when opened with a path.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal,
    policy: FsyncPolicy,
    injector: Arc<FaultInjector>,
    /// Transaction id the next frame will carry. Advanced past every id
    /// *seen* in the log at open — committed, aborted, or in-flight — so a
    /// dead frame's records can never merge with a new frame's.
    next_txn: u64,
    /// Commit sequence number the next `Commit` record will carry.
    next_commit: u64,
    /// Commit sequence of the last committed frame (what a checkpoint
    /// covers).
    last_committed: u64,
    /// Auto-checkpoint once the WAL grows past this many bytes
    /// (0 = never).
    pub checkpoint_every_bytes: u64,
}

/// One table's contribution to a checkpoint image: name, schema, and an
/// O(1) COW snapshot of its chunks. Built by the database from either the
/// live catalog or — while a transaction holds uncommitted changes — the
/// committed state captured in the transaction's undo stack.
#[derive(Debug)]
pub struct CkptSource {
    /// Declared table name (original casing).
    pub name: String,
    /// Declared columns in schema order.
    pub columns: Vec<(String, DataType)>,
    /// Row count of the snapshot.
    pub rows: usize,
    /// Chunk snapshot to serialize.
    pub snapshot: TableSnapshot,
}

/// Default WAL size that triggers an automatic checkpoint.
pub const DEFAULT_CHECKPOINT_BYTES: u64 = 8 * 1024 * 1024;

impl DurableStore {
    /// Open (or create) the durable store in `dir`, recovering the last
    /// checkpoint and the committed WAL prefix. Any torn tail — a frame
    /// without its `Commit`, a half-written record, a corrupted checksum —
    /// is discarded and the log truncated back to the last good boundary.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        injector: Arc<FaultInjector>,
    ) -> Result<(Self, Recovered)> {
        fs::create_dir_all(dir)?;
        // A crash mid-checkpoint may leave a tmp image; it covers nothing.
        let _ = fs::remove_file(dir.join(CHECKPOINT_TMP));

        let checkpoint = read_checkpoint(&dir.join(CHECKPOINT_FILE))?;
        let ckpt_seq = checkpoint.as_ref().map_or(0, |(seq, _)| *seq);

        let wal_path = dir.join(WAL_FILE);
        let mut file =
            OpenOptions::new()
                .create(true)
                .truncate(false)
                .read(true)
                .write(true)
                .open(&wal_path)?;
        let scan = replay_committed(&mut file, ckpt_seq)?;
        // Discard the torn/uncommitted tail so appends start at a clean
        // boundary. (A plain open never injects: schedules arm later.)
        file.set_len(scan.committed_end)?;
        file.seek(SeekFrom::Start(scan.committed_end))?;

        let store = DurableStore {
            dir: dir.to_path_buf(),
            wal: Wal {
                file,
                len: scan.committed_end,
                good_end: scan.committed_end,
                tail_owner: None,
                poisoned: false,
                repair_epoch: 0,
            },
            policy,
            injector,
            next_txn: scan.max_txn.max(ckpt_seq) + 1,
            next_commit: scan.max_commit.max(ckpt_seq) + 1,
            last_committed: scan.max_commit.max(ckpt_seq),
            checkpoint_every_bytes: DEFAULT_CHECKPOINT_BYTES,
        };
        Ok((store, Recovered { checkpoint, frames: scan.frames }))
    }

    /// Database directory this store persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current WAL length in bytes (committed frames only between
    /// statements).
    pub fn wal_len(&self) -> u64 {
        self.wal.len
    }

    /// The fsync policy in force.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The injector gating this store's file I/O.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Whether the WAL grew past the auto-checkpoint threshold.
    pub fn wants_checkpoint(&self) -> bool {
        self.checkpoint_every_bytes > 0 && self.wal.len > self.checkpoint_every_bytes
    }

    /// Whether a failed truncate-repair left the log refusing appends.
    /// A full (non-keep-tail) checkpoint resets the log and clears this.
    pub fn is_poisoned(&self) -> bool {
        self.wal.poisoned
    }

    /// Monotonic count of crash-repair truncations. A transaction records
    /// this at `BEGIN`; a mismatch later means some of its records may have
    /// been cut and the transaction must abort.
    pub fn repair_epoch(&self) -> u64 {
        self.wal.repair_epoch
    }

    fn append_record(&mut self, payload: &[u8], owner: Option<u64>) -> Result<()> {
        if self.wal.poisoned {
            return Err(Error::Io(
                "write-ahead log poisoned by an earlier failed repair; \
                 checkpoint or reopen to continue"
                    .into(),
            ));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let len_before = self.wal.len;
        match self.injector.write_all(FaultSite::WalAppend, &mut self.wal.file, &frame) {
            Ok(()) => {
                self.wal.len += frame.len() as u64;
                if let Some(txn) = owner {
                    if len_before == self.wal.good_end {
                        self.wal.tail_owner = Some(txn);
                    } else if self.wal.tail_owner != Some(txn) {
                        self.wal.tail_owner = None;
                    }
                }
                if self.policy == FsyncPolicy::Always {
                    if let Err(e) =
                        self.injector.fsync(FaultSite::WalFsync, &self.wal.file)
                    {
                        self.repair();
                        return Err(e);
                    }
                }
                Ok(())
            }
            Err(e) => {
                // A torn write may have landed part of the record; the
                // on-disk length is unknown, so roll the file back to the
                // last committed boundary before anything else is appended.
                self.wal.len = self.wal.file.seek(SeekFrom::End(0)).unwrap_or(self.wal.len);
                self.repair();
                Err(e)
            }
        }
    }

    /// Planned truncation to a known-good boundary (rolling a frame or a
    /// savepoint's ops off an exclusively-owned tail). Unlike [`repair`],
    /// this does not bump the repair epoch: no other transaction's bytes
    /// can be affected. Poisons the log on failure.
    ///
    /// [`repair`]: DurableStore::repair
    fn truncate_tail(&mut self, to: u64) -> bool {
        let ok = self.injector.check(FaultSite::WalTruncate).is_ok()
            && self.wal.file.set_len(to).is_ok()
            && self.wal.file.seek(SeekFrom::Start(to)).is_ok();
        if ok {
            self.wal.len = to;
        } else {
            self.wal.poisoned = true;
        }
        ok
    }

    /// Truncate the log back to the last committed frame boundary after a
    /// failed append: the tail's on-disk content is unknown, so every open
    /// transaction with bytes at risk is invalidated via the repair epoch.
    /// On failure the log is poisoned (appends refused) until a checkpoint
    /// resets it — recovery tolerates the garbage tail either way via
    /// checksums and commit framing.
    fn repair(&mut self) {
        self.wal.repair_epoch += 1;
        self.truncate_tail(self.wal.good_end);
        self.wal.tail_owner = None;
    }

    /// Start a transaction frame; returns its id and writes the `Begin`
    /// record. The frame holds no locks and buffers nothing — records land
    /// in the file as they are logged, and only `commit` makes them
    /// recoverable. The id is consumed even if the append fails, so a
    /// retried frame can never collide with a half-written one.
    pub fn begin(&mut self) -> Result<u64> {
        let txn = self.next_txn;
        self.next_txn += 1;
        let mut buf = BytesMut::with_capacity(9);
        buf.put_u8(TAG_BEGIN);
        buf.put_u64_le(txn);
        self.append_record(&buf, Some(txn))?;
        Ok(txn)
    }

    /// Log a `CREATE TABLE` inside transaction `txn`.
    pub fn log_create(
        &mut self,
        txn: u64,
        name: &str,
        columns: &[(String, DataType)],
    ) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_CREATE);
        buf.put_u64_le(txn);
        put_string(&mut buf, name);
        encode_columns(&mut buf, columns);
        self.append_record(&buf, Some(txn))
    }

    /// Log a `DROP TABLE` inside transaction `txn`.
    pub fn log_drop(&mut self, txn: u64, name: &str) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_DROP);
        buf.put_u64_le(txn);
        put_string(&mut buf, name);
        self.append_record(&buf, Some(txn))
    }

    /// Log an `INSERT` of already-evaluated rows inside transaction `txn`.
    /// Rows are borrowed: logging copies them into the record buffer but
    /// never clones the caller's vector.
    pub fn log_insert(&mut self, txn: u64, table: &str, rows: &[Row]) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_INSERT);
        buf.put_u64_le(txn);
        put_string(&mut buf, table);
        buf.put_u32_le(rows.len() as u32);
        for row in rows {
            encode_row(&mut buf, row);
        }
        self.append_record(&buf, Some(txn))
    }

    /// Log a `DELETE` inside transaction `txn` (predicate as SQL text).
    pub fn log_delete(&mut self, txn: u64, table: &str, predicate: Option<&str>) -> Result<()> {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_DELETE);
        buf.put_u64_le(txn);
        put_string(&mut buf, table);
        match predicate {
            None => buf.put_u8(0),
            Some(p) => {
                buf.put_u8(1);
                put_string(&mut buf, p);
            }
        }
        self.append_record(&buf, Some(txn))
    }

    /// Commit transaction `txn`: append the `Commit` record carrying the
    /// next commit sequence, force it down per the fsync policy, and
    /// advance the committed boundary. After `Ok`, the transaction survives
    /// a crash; on `Err` the frame is rolled off the log (or left
    /// uncommitted, which recovery treats identically) and the caller must
    /// undo its in-memory effects.
    pub fn commit(&mut self, txn: u64) -> Result<u64> {
        let commit_seq = self.next_commit;
        let mut buf = BytesMut::with_capacity(17);
        buf.put_u8(TAG_COMMIT);
        buf.put_u64_le(txn);
        buf.put_u64_le(commit_seq);
        self.append_record(&buf, None)?;
        if self.policy != FsyncPolicy::Off {
            if let Err(e) = self.injector.fsync(FaultSite::WalFsync, &self.wal.file) {
                // Unknown durability of the frame: discard it so the
                // in-memory rollback and recovery agree.
                self.repair();
                return Err(e);
            }
        }
        self.wal.good_end = self.wal.len;
        self.wal.tail_owner = None;
        self.last_committed = commit_seq;
        self.next_commit = commit_seq + 1;
        Ok(commit_seq)
    }

    /// Abandon transaction `txn`'s frame. If the frame owns the whole
    /// uncommitted tail it is truncated off — zero residue; otherwise an
    /// `Abort` record is appended so replay drops the interleaved frame.
    /// Even if both fail, recovery ignores the frame (no `Commit` record),
    /// so this never errors.
    pub fn abort(&mut self, txn: u64) {
        if self.wal.poisoned {
            return;
        }
        if self.wal.tail_owner == Some(txn) {
            self.truncate_tail(self.wal.good_end);
            self.wal.tail_owner = None;
            return;
        }
        let mut buf = BytesMut::with_capacity(9);
        buf.put_u8(TAG_ABORT);
        buf.put_u64_le(txn);
        let _ = self.append_record(&buf, None);
    }

    /// Roll transaction `txn` back to a savepoint: discard its last
    /// `drop_last` logged ops. When the frame owns the whole uncommitted
    /// tail this truncates the file to `to_len` (the length recorded when
    /// the savepoint was set); otherwise a `RollbackSp` record is appended
    /// for replay to honor.
    pub fn rollback_ops(&mut self, txn: u64, drop_last: u64, to_len: u64) -> Result<()> {
        if drop_last == 0 {
            return Ok(());
        }
        // `to_len <= len` guards against stale geometry (a repair shrank
        // the log after the savepoint was set): `set_len` past the end
        // would extend the file with a zero hole that stops replay dead.
        if self.wal.tail_owner == Some(txn)
            && to_len >= self.wal.good_end
            && to_len <= self.wal.len
        {
            if self.truncate_tail(to_len) {
                return Ok(());
            }
            return Err(Error::Io(
                "write-ahead log truncation failed during savepoint rollback".into(),
            ));
        }
        let mut buf = BytesMut::with_capacity(17);
        buf.put_u8(TAG_RBSP);
        buf.put_u64_le(txn);
        buf.put_u64_le(drop_last);
        self.append_record(&buf, Some(txn))
    }

    /// Write a checkpoint covering every committed transaction, publish it
    /// atomically, and — unless `keep_wal` — truncate the WAL behind it.
    /// `sources` must be the *committed* state in sorted-name order (the
    /// live catalog between transactions; the undo-stack views while one is
    /// open). `keep_wal` leaves the log intact so in-flight frames stay
    /// replayable: replay skips frames the image already covers by
    /// `commit_seq`. On error the durable state is unchanged — the tmp
    /// image is removed and the WAL still covers everything.
    pub fn checkpoint(&mut self, sources: &[CkptSource], keep_wal: bool) -> Result<()> {
        let seq = self.last_committed;
        let tmp = self.dir.join(CHECKPOINT_TMP);
        let result = self.write_checkpoint_tmp(&tmp, seq, sources);
        if let Err(e) = result {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        // Atomic publication: rename over the previous image, then fsync
        // the directory so the rename itself is durable.
        self.injector.check(FaultSite::CheckpointRename)?;
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        if self.policy != FsyncPolicy::Off {
            let dirf = File::open(&self.dir)?;
            self.injector.fsync(FaultSite::CheckpointFsync, &dirf)?;
        }
        if keep_wal {
            return Ok(());
        }
        // The WAL's frames are all covered by the image now. A failure
        // here is benign (replay skips frames with commit_seq ≤ checkpoint
        // seq), but surfaces as an error so operators see the log not
        // shrinking.
        self.injector.check(FaultSite::WalTruncate)?;
        self.wal.file.set_len(0)?;
        self.wal.file.seek(SeekFrom::Start(0))?;
        self.wal.len = 0;
        self.wal.good_end = 0;
        self.wal.tail_owner = None;
        self.wal.poisoned = false;
        Ok(())
    }

    fn write_checkpoint_tmp(
        &mut self,
        tmp: &Path,
        seq: u64,
        sources: &[CkptSource],
    ) -> Result<()> {
        let mut file =
            OpenOptions::new().create(true).write(true).truncate(true).open(tmp)?;
        let mut crc = Crc32::new();
        let write = |file: &mut File, crc: &mut Crc32, bytes: &[u8]| -> Result<()> {
            crc.update(bytes);
            self.injector.write_all(FaultSite::CheckpointWrite, file, bytes)
        };

        self.injector.write_all(FaultSite::CheckpointWrite, &mut file, CHECKPOINT_MAGIC)?;
        let mut head = BytesMut::new();
        head.put_u64_le(seq);
        head.put_u32_le(sources.len() as u32);
        write(&mut file, &mut crc, &head)?;

        let mut buf = BytesMut::new();
        for source in sources {
            buf.clear();
            put_string(&mut buf, &source.name);
            encode_columns(&mut buf, &source.columns);
            buf.put_u64_le(source.rows as u64);
            write(&mut file, &mut crc, &buf)?;
            // Walk the O(1) Arc snapshot chunk by chunk: serialization
            // streams without materializing the table as rows.
            for chunk in source.snapshot.chunks() {
                buf.clear();
                for i in 0..chunk.rows() {
                    encode_row(&mut buf, &chunk.row(i));
                }
                write(&mut file, &mut crc, &buf)?;
            }
        }
        let trailer = crc.finish().to_le_bytes();
        self.injector.write_all(FaultSite::CheckpointWrite, &mut file, &trailer)?;
        self.injector.fsync(FaultSite::CheckpointFsync, &file)?;
        Ok(())
    }
}

/// Read and verify a checkpoint image; `Ok(None)` when absent. A corrupted
/// image (bad magic, bad trailer CRC, truncated body) is an error — unlike
/// a torn WAL tail it cannot be partially trusted, because it *replaces*
/// state rather than appending to it.
fn read_checkpoint(path: &Path) -> Result<Option<(u64, Vec<CkptTable>)>> {
    let data = match fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if data.len() < CHECKPOINT_MAGIC.len() + 4 || &data[..8] != CHECKPOINT_MAGIC {
        return Err(Error::Io("checkpoint image has bad magic".into()));
    }
    let body = &data[8..data.len() - 4];
    let stored =
        u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4-byte trailer"));
    if crc32(body) != stored {
        return Err(Error::Io("checkpoint image failed checksum".into()));
    }
    let mut buf = Bytes::from(body.to_vec());
    let seq = get_u64(&mut buf)?;
    let ntables = get_u32(&mut buf)? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1 << 12));
    for _ in 0..ntables {
        let name = get_string(&mut buf)?;
        let columns = decode_columns(&mut buf)?;
        let nrows = get_u64(&mut buf)? as usize;
        let mut rows = Vec::with_capacity(nrows.min(1 << 20));
        for _ in 0..nrows {
            rows.push(decode_row(&mut buf)?);
        }
        tables.push(CkptTable { name, columns, rows });
    }
    Ok(Some((seq, tables)))
}

/// Result of scanning the WAL at open.
struct WalScan {
    /// Committed frames with `commit_seq > ckpt_seq`, in commit order.
    frames: Vec<WalFrame>,
    /// Byte offset just past the last `Commit` record.
    committed_end: u64,
    /// Highest transaction id seen *anywhere* in the scanned prefix —
    /// committed, aborted, or in-flight. New ids must start above this so
    /// a dead frame's records can never merge with a live frame's.
    max_txn: u64,
    /// Highest commit sequence seen.
    max_commit: u64,
}

/// Scan the WAL. Pending frames are keyed by transaction id, so frames
/// from concurrent sessions may interleave arbitrarily; only a `Commit`
/// record makes a frame visible, in commit-record order. Stops — without
/// error — at the first torn or corrupted record: everything past the
/// last `Commit` is a casualty of the crash, by design.
fn replay_committed(file: &mut File, ckpt_seq: u64) -> Result<WalScan> {
    let mut data = Vec::new();
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut data)?;

    let mut scan = WalScan {
        frames: Vec::new(),
        committed_end: 0,
        max_txn: 0,
        max_commit: 0,
    };
    let mut pending: HashMap<u64, Vec<WalOp>> = HashMap::new();
    let mut offset = 0usize;

    while data.len() - offset >= 8 {
        let len =
            u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes"))
                as usize;
        let stored =
            u32::from_le_bytes(data[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let Some(end) = offset.checked_add(8 + len) else { break };
        if end > data.len() {
            break; // torn tail: record extends past the file
        }
        let payload = &data[offset + 8..end];
        if crc32(payload) != stored {
            break; // corrupted record: stop at the last good boundary
        }
        let mut bytes = Bytes::from(payload.to_vec());
        // Tag dispatch: frame control inline, payload ops via decode_op.
        let Ok(tag) = get_u8(&mut bytes) else { break };
        match tag {
            TAG_BEGIN => {
                let Ok(txn) = get_u64(&mut bytes) else { break };
                scan.max_txn = scan.max_txn.max(txn);
                // A Begin reusing a pending id cannot happen in a healthy
                // log (ids are never reused); if it does, the older frame
                // never committed, so dropping it is safe.
                pending.insert(txn, Vec::new());
            }
            TAG_COMMIT => {
                let Ok(txn) = get_u64(&mut bytes) else { break };
                let Ok(commit_seq) = get_u64(&mut bytes) else { break };
                scan.max_txn = scan.max_txn.max(txn);
                if let Some(ops) = pending.remove(&txn) {
                    scan.max_commit = scan.max_commit.max(commit_seq);
                    scan.committed_end = end as u64;
                    if commit_seq > ckpt_seq {
                        scan.frames.push(WalFrame { txn, commit_seq, ops });
                    }
                }
            }
            TAG_ABORT => {
                let Ok(txn) = get_u64(&mut bytes) else { break };
                scan.max_txn = scan.max_txn.max(txn);
                pending.remove(&txn);
            }
            TAG_RBSP => {
                let Ok(txn) = get_u64(&mut bytes) else { break };
                let Ok(drop_last) = get_u64(&mut bytes) else { break };
                scan.max_txn = scan.max_txn.max(txn);
                if let Some(ops) = pending.get_mut(&txn) {
                    let keep = ops.len().saturating_sub(drop_last as usize);
                    ops.truncate(keep);
                }
            }
            _ => {
                let mut full = Bytes::from(payload.to_vec());
                let Ok((txn, op)) = decode_op(&mut full) else { break };
                scan.max_txn = scan.max_txn.max(txn);
                if let Some(ops) = pending.get_mut(&txn) {
                    ops.push(op);
                }
                // An op outside any frame is tolerated and ignored — it can
                // only arise from a repair that half-succeeded.
            }
        }
        offset = end;
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::budget::MemoryBudget;
    use crate::table::Table;
    use crate::value::Value;

    fn source(t: &Table) -> CkptSource {
        CkptSource {
            name: t.name().to_string(),
            columns: t.columns().to_vec(),
            rows: t.row_count(),
            snapshot: t.snapshot(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qymera-wal-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> (DurableStore, Recovered) {
        DurableStore::open(dir, FsyncPolicy::Commit, FaultInjector::none()).unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn committed_frames_replay_in_order() {
        let dir = tmpdir("replay");
        {
            let (mut store, rec) = open(&dir);
            assert!(rec.frames.is_empty() && rec.checkpoint.is_none());
            let txn = store.begin().unwrap();
            store
                .log_create(txn, "t", &[("a".into(), DataType::Integer)])
                .unwrap();
            store.commit(txn).unwrap();
            let txn = store.begin().unwrap();
            store.log_insert(txn, "t", &[vec![Value::Int(7)]]).unwrap();
            store.commit(txn).unwrap();
        }
        let (_, rec) = open(&dir);
        assert_eq!(rec.frames.len(), 2);
        assert_eq!(rec.frames[0].commit_seq, 1);
        assert_eq!(rec.frames[1].commit_seq, 2);
        assert!(matches!(&rec.frames[0].ops[0], WalOp::CreateTable { name, .. } if name == "t"));
        assert!(matches!(
            &rec.frames[1].ops[0],
            WalOp::Insert { rows, .. } if rows == &vec![vec![Value::Int(7)]]
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_frame_is_invisible() {
        let dir = tmpdir("uncommitted");
        {
            let (mut store, _) = open(&dir);
            let txn = store.begin().unwrap();
            store.log_drop(txn, "t").unwrap();
            store.commit(txn).unwrap();
            // Frame without a commit: simulates a crash mid-transaction.
            let txn = store.begin().unwrap();
            store.log_drop(txn, "u").unwrap();
        }
        let (store, rec) = open(&dir);
        assert_eq!(rec.frames.len(), 1);
        assert!(matches!(&rec.frames[0].ops[0], WalOp::DropTable { name } if name == "t"));
        // Recovery truncated the uncommitted tail.
        assert_eq!(store.wal_len(), fs::metadata(dir.join(WAL_FILE)).unwrap().len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn aborted_frame_leaves_no_wal_residue_when_tail_owned() {
        let dir = tmpdir("abort-trunc");
        let (mut store, _) = open(&dir);
        let txn = store.begin().unwrap();
        store.log_drop(txn, "t").unwrap();
        store.commit(txn).unwrap();
        let committed_len = store.wal_len();
        // This frame owns the whole tail: abort must truncate it away.
        let txn = store.begin().unwrap();
        store.log_insert(txn, "t", &[vec![Value::Int(1)]]).unwrap();
        store.abort(txn);
        assert_eq!(store.wal_len(), committed_len);
        assert_eq!(fs::metadata(dir.join(WAL_FILE)).unwrap().len(), committed_len);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interleaved_frames_commit_independently() {
        let dir = tmpdir("interleave");
        {
            let (mut store, _) = open(&dir);
            let a = store.begin().unwrap();
            let b = store.begin().unwrap();
            store.log_insert(a, "t", &[vec![Value::Int(1)]]).unwrap();
            store.log_insert(b, "t", &[vec![Value::Int(2)]]).unwrap();
            // b commits first, then a: replay must order by commit, not id.
            store.commit(b).unwrap();
            store.log_insert(a, "t", &[vec![Value::Int(3)]]).unwrap();
            store.commit(a).unwrap();
            // c aborts with an Abort record (tail is shared with nothing,
            // but good_end == len after a's commit, so force interleaving):
            let c = store.begin().unwrap();
            let d = store.begin().unwrap();
            store.log_insert(c, "t", &[vec![Value::Int(4)]]).unwrap();
            store.abort(c); // mixed tail (d's Begin) -> Abort record
            store.log_insert(d, "t", &[vec![Value::Int(5)]]).unwrap();
            store.commit(d).unwrap();
        }
        let (store, rec) = open(&dir);
        assert_eq!(rec.frames.len(), 3);
        assert_eq!(rec.frames[0].txn, 2); // b
        assert_eq!(rec.frames[1].txn, 1); // a, two ops
        assert_eq!(rec.frames[1].ops.len(), 2);
        assert_eq!(rec.frames[2].txn, 4); // d; c's frame dropped
        assert!(rec.frames.iter().all(|f| f.txn != 3));
        // Fresh ids start above every id seen, even aborted ones.
        assert!(store.next_txn > 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_to_savepoint_drops_tail_ops() {
        let dir = tmpdir("rbsp");
        {
            let (mut store, _) = open(&dir);
            let txn = store.begin().unwrap();
            store.log_insert(txn, "t", &[vec![Value::Int(1)]]).unwrap();
            let sp_len = store.wal_len();
            store.log_insert(txn, "t", &[vec![Value::Int(2)]]).unwrap();
            store.log_insert(txn, "t", &[vec![Value::Int(3)]]).unwrap();
            // Tail-owned: rollback truncates the file back to the mark.
            store.rollback_ops(txn, 2, sp_len).unwrap();
            assert_eq!(store.wal_len(), sp_len);
            store.log_insert(txn, "t", &[vec![Value::Int(9)]]).unwrap();
            store.commit(txn).unwrap();

            // Interleaved: rollback must append a RollbackSp record.
            let a = store.begin().unwrap();
            let b = store.begin().unwrap();
            store.log_insert(a, "t", &[vec![Value::Int(10)]]).unwrap();
            let a_mark = store.wal_len();
            store.log_insert(a, "t", &[vec![Value::Int(11)]]).unwrap();
            let before = store.wal_len();
            store.rollback_ops(a, 1, a_mark).unwrap();
            assert!(store.wal_len() > before, "interleaved rollback appends");
            store.commit(a).unwrap();
            store.abort(b);
        }
        let (_, rec) = open(&dir);
        assert_eq!(rec.frames.len(), 2);
        assert_eq!(
            rec.frames[0].ops,
            vec![
                WalOp::Insert { table: "t".into(), rows: vec![vec![Value::Int(1)]] },
                WalOp::Insert { table: "t".into(), rows: vec![vec![Value::Int(9)]] },
            ]
        );
        assert_eq!(
            rec.frames[1].ops,
            vec![WalOp::Insert { table: "t".into(), rows: vec![vec![Value::Int(10)]] }]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_and_corruption_stop_replay_cleanly() {
        let dir = tmpdir("torn");
        {
            let (mut store, _) = open(&dir);
            for i in 0..3 {
                let txn = store.begin().unwrap();
                store.log_insert(txn, "t", &[vec![Value::Int(i)]]).unwrap();
                store.commit(txn).unwrap();
            }
        }
        let wal = dir.join(WAL_FILE);
        let full = fs::read(&wal).unwrap();
        // Truncate at every byte boundary: replay must never error and
        // must recover a prefix of the three frames.
        for cut in 0..full.len() {
            fs::write(&wal, &full[..cut]).unwrap();
            let (_, rec) = open(&dir);
            assert!(rec.frames.len() <= 3);
            for (i, f) in rec.frames.iter().enumerate() {
                assert_eq!(f.commit_seq, i as u64 + 1);
            }
        }
        // Flip a byte mid-file: replay stops at the corruption.
        fs::write(&wal, &full).unwrap();
        let mut corrupted = full.clone();
        corrupted[full.len() / 2] ^= 0xFF;
        fs::write(&wal, &corrupted).unwrap();
        let (_, rec) = open(&dir);
        assert!(rec.frames.len() < 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_covers_and_truncates() {
        let dir = tmpdir("ckpt");
        let budget = MemoryBudget::unlimited();
        {
            let (mut store, _) = open(&dir);
            let txn = store.begin().unwrap();
            store
                .log_create(txn, "t", &[("a".into(), DataType::Integer)])
                .unwrap();
            store.commit(txn).unwrap();

            let mut t = Table::new(
                "t",
                vec![("a".into(), DataType::Integer)],
                budget.clone(),
            );
            t.insert_rows(vec![vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap();
            store.checkpoint(&[source(&t)], false).unwrap();
            assert_eq!(store.wal_len(), 0);

            // One more statement after the checkpoint.
            let txn = store.begin().unwrap();
            store.log_insert(txn, "t", &[vec![Value::Int(3)]]).unwrap();
            store.commit(txn).unwrap();
        }
        let (_, rec) = open(&dir);
        let (seq, tables) = rec.checkpoint.expect("checkpoint written");
        assert_eq!(seq, 1);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        // Only the post-checkpoint frame replays.
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.frames[0].commit_seq, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_wal_checkpoint_leaves_inflight_frames_replayable() {
        let dir = tmpdir("keepwal");
        {
            let (mut store, _) = open(&dir);
            let txn = store.begin().unwrap();
            store
                .log_create(txn, "t", &[("a".into(), DataType::Integer)])
                .unwrap();
            store.commit(txn).unwrap();

            // An open transaction has logged ops when the checkpoint runs.
            let open_txn = store.begin().unwrap();
            store.log_insert(open_txn, "t", &[vec![Value::Int(7)]]).unwrap();

            let mut t = Table::new(
                "t",
                vec![("a".into(), DataType::Integer)],
                MemoryBudget::unlimited(),
            );
            t.insert_rows(vec![vec![Value::Int(1)]]).unwrap();
            let len_before = store.wal_len();
            store.checkpoint(&[source(&t)], true).unwrap();
            // keep_wal: the log was not truncated.
            assert_eq!(store.wal_len(), len_before);

            store.commit(open_txn).unwrap();
        }
        let (_, rec) = open(&dir);
        let (seq, tables) = rec.checkpoint.expect("checkpoint written");
        assert_eq!(seq, 1);
        assert_eq!(tables[0].rows, vec![vec![Value::Int(1)]]);
        // The open transaction committed after the checkpoint: its frame
        // must replay on top of the image.
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(
            rec.frames[0].ops,
            vec![WalOp::Insert { table: "t".into(), rows: vec![vec![Value::Int(7)]] }]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checkpoint_is_a_typed_error() {
        let dir = tmpdir("badckpt");
        {
            let (mut store, _) = open(&dir);
            let t = Table::new(
                "t",
                vec![("a".into(), DataType::Integer)],
                MemoryBudget::unlimited(),
            );
            let txn = store.begin().unwrap();
            store.log_create(txn, "t", &[("a".into(), DataType::Integer)]).unwrap();
            store.commit(txn).unwrap();
            store.checkpoint(&[source(&t)], false).unwrap();
        }
        let path = dir.join(CHECKPOINT_FILE);
        let mut img = fs::read(&path).unwrap();
        let mid = img.len() / 2;
        img[mid] ^= 0xFF;
        fs::write(&path, &img).unwrap();
        let err = DurableStore::open(&dir, FsyncPolicy::Commit, FaultInjector::none())
            .unwrap_err();
        assert!(matches!(err, Error::Io(m) if m.contains("checksum")));
        let _ = fs::remove_dir_all(&dir);
    }
}
