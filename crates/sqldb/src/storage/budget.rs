//! Byte-accurate memory accounting.
//!
//! The paper's headline experiment runs both simulators under a fixed memory
//! limit (2.0 GB) and measures how many qubits each can reach. To make that
//! experiment reproducible in software, every operator and base table in this
//! engine charges its storage against a shared [`MemoryBudget`] — operators
//! per row of transient state, base tables per column chunk (see
//! [`crate::table`]). When a reservation fails, operators spill to disk
//! (hash aggregation, sorting) or abort with
//! [`crate::error::Error::OutOfMemory`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared memory ledger. Cheap to clone (`Arc` inside).
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// Total bytes permitted; `usize::MAX` means unlimited.
    limit: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryBudget {
    /// A budget capped at `limit` bytes.
    pub fn with_limit(limit: usize) -> Self {
        MemoryBudget {
            inner: Arc::new(Inner {
                limit,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
            }),
        }
    }

    /// An effectively unlimited budget (still tracks usage and peak).
    pub fn unlimited() -> Self {
        Self::with_limit(usize::MAX)
    }

    /// Configured limit in bytes.
    pub fn limit(&self) -> usize {
        self.inner.limit
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// High-water mark of bytes reserved **past the limit** — the bounded
    /// operator overdraft (batch-granular budget checks, build-side floors,
    /// parallel run-ahead channels). Always 0 for a ledger that never
    /// exceeded its limit, and meaningless for an unlimited budget. The
    /// differential-fuzz harness asserts this stays within the documented
    /// ≤1-batch transient bound on memory-limited cases.
    pub fn peak_overshoot(&self) -> usize {
        let limit = self.inner.limit;
        if limit == usize::MAX {
            return 0;
        }
        self.peak().saturating_sub(limit)
    }

    /// Try to reserve `bytes`; returns `false` if it would exceed the limit.
    #[must_use]
    pub fn try_reserve(&self, bytes: usize) -> bool {
        let mut cur = self.inner.used.load(Ordering::Relaxed);
        loop {
            let Some(next) = cur.checked_add(bytes) else { return false };
            if next > self.inner.limit {
                return false;
            }
            match self.inner.used.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::Relaxed);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reserve unconditionally, allowing the ledger to exceed its limit (a
    /// bounded overdraft). For transient in-flight state that already
    /// exists in memory — charging it keeps the ledger honest so other
    /// reservations fail/spill sooner, instead of pretending the memory is
    /// free.
    pub(crate) fn reserve_overdraft(&self, bytes: usize) {
        let next = self.inner.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak.fetch_max(next, Ordering::Relaxed);
    }

    /// Release previously reserved bytes.
    pub fn release(&self, bytes: usize) {
        let prev = self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "memory ledger underflow: released {bytes} of {prev}");
    }

    /// Reset usage to zero (used between benchmark iterations).
    pub fn reset(&self) {
        self.inner.used.store(0, Ordering::Relaxed);
        self.inner.peak.store(0, Ordering::Relaxed);
    }
}

/// RAII guard holding a reservation; releases on drop.
#[derive(Debug)]
pub struct Reservation {
    budget: MemoryBudget,
    bytes: usize,
}

impl Reservation {
    /// Reserve `bytes` against `budget`, or `None` if over limit.
    pub fn try_new(budget: &MemoryBudget, bytes: usize) -> Option<Self> {
        if budget.try_reserve(bytes) {
            Some(Reservation { budget: budget.clone(), bytes })
        } else {
            None
        }
    }

    /// An empty reservation that can grow.
    pub fn empty(budget: &MemoryBudget) -> Self {
        Reservation { budget: budget.clone(), bytes: 0 }
    }

    /// Reserve `bytes` unconditionally (see [`MemoryBudget::reserve_overdraft`]):
    /// the charge lands on the ledger even past the limit. Freed normally
    /// (RAII on drop).
    pub(crate) fn overdraft(budget: &MemoryBudget, bytes: usize) -> Self {
        budget.reserve_overdraft(bytes);
        Reservation { budget: budget.clone(), bytes }
    }

    /// Grow this reservation by `bytes`.
    #[must_use]
    pub fn try_grow(&mut self, bytes: usize) -> bool {
        if self.budget.try_reserve(bytes) {
            self.bytes += bytes;
            true
        } else {
            false
        }
    }

    /// Grow this reservation by `bytes` unconditionally (see
    /// [`MemoryBudget::reserve_overdraft`]). Used where failure is not an
    /// option: restoring a table's pre-statement charge during WAL rollback
    /// and charging transient survivor copies during delete re-pack.
    pub(crate) fn grow_overdraft(&mut self, bytes: usize) {
        self.budget.reserve_overdraft(bytes);
        self.bytes += bytes;
    }

    /// Shrink this reservation by `bytes` (saturating).
    pub fn shrink(&mut self, bytes: usize) {
        let b = bytes.min(self.bytes);
        self.budget.release(b);
        self.bytes -= b;
    }

    /// Release everything (also happens on drop).
    pub fn free(&mut self) {
        self.budget.release(self.bytes);
        self.bytes = 0;
    }

    /// The ledger this reservation charges (used by base tables to report
    /// the limit in out-of-memory errors).
    pub fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// Take over `other`'s holding without touching the ledger. Both
    /// reservations must charge the same budget — crate-internal because a
    /// cross-budget adopt would silently corrupt both ledgers. This is how
    /// staged reservations (per-chunk insert charges, per-worker operator
    /// state) transfer into a long-lived owner atomically.
    pub(crate) fn adopt(&mut self, mut other: Reservation) {
        debug_assert!(
            Arc::ptr_eq(&self.budget.inner, &other.budget.inner),
            "adopting a reservation from a different budget"
        );
        self.bytes += other.bytes;
        other.bytes = 0; // drop of `other` now releases nothing
    }

    /// Bytes currently held by this reservation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.free();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let b = MemoryBudget::with_limit(100);
        assert!(b.try_reserve(60));
        assert!(!b.try_reserve(50));
        assert!(b.try_reserve(40));
        assert_eq!(b.used(), 100);
        b.release(100);
        assert_eq!(b.used(), 0);
        assert_eq!(b.peak(), 100);
    }

    #[test]
    fn reservation_guard_frees_on_drop() {
        let b = MemoryBudget::with_limit(100);
        {
            let mut r = Reservation::try_new(&b, 30).unwrap();
            assert!(r.try_grow(30));
            assert_eq!(b.used(), 60);
            r.shrink(10);
            assert_eq!(b.used(), 50);
        }
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn peak_overshoot_measures_overdraft_past_the_limit() {
        let b = MemoryBudget::with_limit(100);
        assert!(b.try_reserve(90));
        assert_eq!(b.peak_overshoot(), 0, "within limit");
        b.reserve_overdraft(30);
        b.release(120);
        assert_eq!(b.peak_overshoot(), 20);
        assert_eq!(MemoryBudget::unlimited().peak_overshoot(), 0);
    }

    #[test]
    fn unlimited_tracks_peak() {
        let b = MemoryBudget::unlimited();
        assert!(b.try_reserve(1 << 30));
        b.release(1 << 30);
        assert_eq!(b.peak(), 1 << 30);
    }

    #[test]
    fn concurrent_reservations_respect_limit() {
        let b = MemoryBudget::with_limit(1000);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    for _ in 0..1000 {
                        if b.try_reserve(1) {
                            got += 1;
                        }
                    }
                    got
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total <= 1000);
        assert_eq!(b.used(), total);
    }
}
