//! Disk spill files for out-of-core operators.
//!
//! Rows are serialized in a compact self-describing binary format (one tag
//! byte per value). Spill files live in a per-database temp directory and are
//! deleted on drop. The paper's §3.3 highlights out-of-core simulation as a
//! core advantage of the RDBMS approach; these files are the mechanism.

use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::bigbits::BigBits;
use crate::error::{Error, Result};
use crate::storage::fault::{FaultInjector, FaultSite};
use crate::value::Value;

/// A row as stored and exchanged by operators.
pub type Row = Vec<Value>;

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Directory that owns all spill files for one database; removed on drop.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
    files_created: AtomicU64,
    bytes_written: AtomicU64,
    injector: Arc<FaultInjector>,
}

impl SpillDir {
    /// Create a fresh spill directory under the system temp dir.
    pub fn new() -> Result<Arc<Self>> {
        Self::new_with(FaultInjector::none())
    }

    /// Create a spill directory whose file I/O is gated by `injector`
    /// (shared with the WAL in durable databases so one schedule covers
    /// every disk path).
    pub fn new_with(injector: Arc<FaultInjector>) -> Result<Arc<Self>> {
        let id = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "qymera-sqldb-{}-{}",
            std::process::id(),
            id
        ));
        fs::create_dir_all(&path)?;
        Ok(Arc::new(SpillDir {
            path,
            files_created: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            injector,
        }))
    }

    /// Filesystem path of the spill directory.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fault injector gating this directory's file I/O.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Number of files currently present on disk (orphan-leak checks).
    pub fn live_files(&self) -> usize {
        fs::read_dir(&self.path).map(|d| d.count()).unwrap_or(0)
    }

    /// Total spill files created over the database lifetime.
    pub fn files_created(&self) -> u64 {
        self.files_created.load(Ordering::Relaxed)
    }

    /// Total bytes ever written to spill files.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    fn next_file_path(&self) -> PathBuf {
        let n = self.files_created.fetch_add(1, Ordering::Relaxed);
        self.path.join(format!("run-{n}.spill"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Serialize one value into `buf`.
fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(3);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Big(b) => {
            buf.put_u8(4);
            buf.put_u64_le(b.width() as u64);
            buf.put_u32_le(b.words().len() as u32);
            for w in b.words() {
                buf.put_u64_le(*w);
            }
        }
    }
}

/// Require `n` more bytes in `buf`; `bytes::Buf` getters panic on underflow,
/// so every fixed-width read below is guarded to turn a corrupted or
/// truncated record into a typed [`Error::Io`] instead of a panic.
fn need(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        return Err(Error::Io("truncated spill record".into()));
    }
    Ok(())
}

fn decode_value(buf: &mut Bytes) -> Result<Value> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    Ok(match tag {
        0 => Value::Null,
        1 => {
            need(buf, 8)?;
            Value::Int(buf.get_i64_le())
        }
        2 => {
            need(buf, 8)?;
            Value::Float(buf.get_f64_le())
        }
        3 => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(Error::Io("truncated spill string".into()));
            }
            let bytes = buf.copy_to_bytes(len);
            Value::Str(String::from_utf8(bytes.to_vec()).map_err(|e| Error::Io(e.to_string()))?)
        }
        4 => {
            need(buf, 12)?;
            let width = buf.get_u64_le() as usize;
            let n = buf.get_u32_le() as usize;
            need(buf, n.checked_mul(8).ok_or_else(|| {
                Error::Io("bad spill bigint length".into())
            })?)?;
            let mut words = Vec::with_capacity(n);
            for _ in 0..n {
                words.push(buf.get_u64_le());
            }
            Value::Big(BigBits::from_words(words, width))
        }
        t => return Err(Error::Io(format!("bad spill value tag {t}"))),
    })
}

/// Encode a full row (u32 column count + values).
pub fn encode_row(buf: &mut BytesMut, row: &Row) {
    buf.put_u32_le(row.len() as u32);
    for v in row {
        encode_value(buf, v);
    }
}

/// Decode a full row previously written by [`encode_row`]. Shared with the
/// WAL and checkpoint codecs so every on-disk row uses one format.
pub fn decode_row(bytes: &mut Bytes) -> Result<Row> {
    need(bytes, 4)?;
    let ncols = bytes.get_u32_le() as usize;
    let mut row = Vec::with_capacity(ncols.min(1 << 16));
    for _ in 0..ncols {
        row.push(decode_value(bytes)?);
    }
    Ok(row)
}

/// Append-only spill writer. Dropping a writer without converting it into a
/// reader removes its file, so an operator that dies mid-spill (out of
/// memory, injected I/O fault, panic unwound by the morsel driver) never
/// leaks a temp file.
pub struct SpillWriter {
    dir: Arc<SpillDir>,
    path: PathBuf,
    writer: BufWriter<File>,
    rows: u64,
    buf: BytesMut,
    finished: bool,
}

impl SpillWriter {
    /// Open a fresh spill file in `dir` for appending rows.
    pub fn create(dir: &Arc<SpillDir>) -> Result<Self> {
        let path = dir.next_file_path();
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
        Ok(SpillWriter {
            dir: Arc::clone(dir),
            path,
            writer: BufWriter::new(file),
            rows: 0,
            buf: BytesMut::with_capacity(4096),
            finished: false,
        })
    }

    /// Append one row (length-prefixed record) to the spill file.
    pub fn write_row(&mut self, row: &Row) -> Result<()> {
        self.buf.clear();
        encode_row(&mut self.buf, row);
        // length-prefix each record so readers can stream
        let len = self.buf.len() as u32;
        let inj = Arc::clone(&self.dir.injector);
        inj.write_all(FaultSite::SpillWrite, &mut self.writer, &len.to_le_bytes())?;
        inj.write_all(FaultSite::SpillWrite, &mut self.writer, &self.buf)?;
        self.dir.bytes_written.fetch_add(4 + len as u64, Ordering::Relaxed);
        self.rows += 1;
        Ok(())
    }

    /// Number of rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and convert into a reader over the written rows.
    pub fn into_reader(mut self) -> Result<SpillReader> {
        self.writer.flush()?;
        self.finished = true; // file ownership passes to the reader
        SpillReader::open(
            std::mem::take(&mut self.path),
            self.rows,
            Arc::clone(&self.dir.injector),
        )
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Streaming reader over a spill file; deletes the file on drop.
pub struct SpillReader {
    path: PathBuf,
    reader: BufReader<File>,
    remaining: u64,
    injector: Arc<FaultInjector>,
}

impl SpillReader {
    fn open(path: PathBuf, rows: u64, injector: Arc<FaultInjector>) -> Result<Self> {
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) => {
                // Ownership landed here; don't leak the file on a failed open.
                let _ = fs::remove_file(&path);
                return Err(e.into());
            }
        };
        Ok(SpillReader { path, reader: BufReader::new(file), remaining: rows, injector })
    }

    /// Total rows left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Read the next row, or `None` at end of file.
    pub fn next_row(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.injector.check(FaultSite::SpillRead)?;
        let mut len_buf = [0u8; 4];
        self.reader.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut data = vec![0u8; len];
        self.reader.read_exact(&mut data)?;
        let mut bytes = Bytes::from(data);
        let row = decode_row(&mut bytes)?;
        self.remaining -= 1;
        Ok(Some(row))
    }
}

impl Drop for SpillReader {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Approximate in-memory size of a row (shallow vec + per-value heap).
pub fn row_bytes(row: &[Value]) -> usize {
    24 + row.iter().map(Value::heap_bytes).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(0), Value::Float(1.0), Value::Null],
            vec![Value::Str("hello 'world'".into()), Value::Int(-42), Value::Float(f64::MIN)],
            vec![Value::Big(BigBits::ones(100, 5, 300)), Value::Int(i64::MAX), Value::Null],
        ]
    }

    #[test]
    fn round_trip_rows_through_disk() {
        let dir = SpillDir::new().unwrap();
        let mut w = SpillWriter::create(&dir).unwrap();
        let rows = sample_rows();
        for r in &rows {
            w.write_row(r).unwrap();
        }
        assert_eq!(w.rows(), 3);
        let mut r = w.into_reader().unwrap();
        let mut out = Vec::new();
        while let Some(row) = r.next_row().unwrap() {
            out.push(row);
        }
        assert_eq!(out.len(), rows.len());
        for (a, b) in rows.iter().zip(out.iter()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                match (x, y) {
                    (Value::Null, Value::Null) => {}
                    _ => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn spill_dir_tracks_stats_and_cleans_up() {
        let dir = SpillDir::new().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.exists());
        {
            let mut w = SpillWriter::create(&dir).unwrap();
            w.write_row(&vec![Value::Int(1)]).unwrap();
            let _r = w.into_reader().unwrap();
        }
        assert_eq!(dir.files_created(), 1);
        assert!(dir.bytes_written() > 0);
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn empty_reader_returns_none() {
        let dir = SpillDir::new().unwrap();
        let w = SpillWriter::create(&dir).unwrap();
        let mut r = w.into_reader().unwrap();
        assert!(r.next_row().unwrap().is_none());
    }

    #[test]
    fn row_bytes_accounts_heap() {
        let small = vec![Value::Int(1)];
        let big = vec![Value::Big(BigBits::zero(10_000))];
        assert!(row_bytes(&big) > row_bytes(&small) + 1000);
    }
}
