//! Table catalog: name → [`Table`] with case-insensitive lookup.
//!
//! Tables store their rows in chunked columnar form (see [`crate::table`]);
//! dropping a table releases its budget charge immediately even when
//! outstanding snapshots keep the chunk data itself alive.

use std::collections::HashMap;

use crate::ast::DataType;
use crate::error::{Error, Result};
use crate::storage::budget::MemoryBudget;
use crate::table::Table;

/// Owns all base tables of a database.
#[derive(Debug, Default)]
pub struct Catalog {
    /// Keyed by lowercase name; `Table::name` keeps the original casing.
    tables: HashMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog { tables: HashMap::new() }
    }

    /// Create a table. Returns `true` if a table was actually created,
    /// `false` for an `IF NOT EXISTS` no-op — the WAL only logs statements
    /// that changed something.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: Vec<(String, DataType)>,
        if_not_exists: bool,
        budget: MemoryBudget,
    ) -> Result<bool> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            if if_not_exists {
                return Ok(false);
            }
            return Err(Error::Catalog(format!("table `{name}` already exists")));
        }
        // Reject duplicate column names up front.
        for (i, (c, _)) in columns.iter().enumerate() {
            if columns[..i].iter().any(|(c2, _)| c2.eq_ignore_ascii_case(c)) {
                return Err(Error::Catalog(format!("duplicate column `{c}` in table `{name}`")));
            }
        }
        if columns.is_empty() {
            return Err(Error::Catalog(format!("table `{name}` must have at least one column")));
        }
        self.tables.insert(key, Table::new(name, columns, budget));
        Ok(true)
    }

    /// Drop a table, returning it (`None` for an `IF EXISTS` no-op).
    /// Letting the returned [`Table`] drop frees its budget charge (RAII
    /// reservation) even while snapshots keep the chunk data alive; the
    /// durable path instead keeps it alive until the WAL record commits so
    /// a failed commit can restore it via [`Catalog::put_table`].
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<Option<Table>> {
        let key = name.to_ascii_lowercase();
        match self.tables.remove(&key) {
            Some(t) => Ok(Some(t)),
            None if if_exists => Ok(None),
            None => Err(Error::Catalog(format!("no such table `{name}`"))),
        }
    }

    /// Re-insert a table previously removed with [`Catalog::drop_table`]
    /// (WAL rollback) or recovered from a checkpoint.
    pub fn put_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_ascii_lowercase(), table);
    }

    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::Catalog(format!("no such table `{name}`")))
    }

    pub fn get_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::Catalog(format!("no such table `{name}`")))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Table names in arbitrary order (original casing).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.name().to_string()).collect()
    }

    /// All tables sorted by name — checkpoints iterate this so the bytes
    /// they write are deterministic despite the hash map underneath.
    pub fn tables_sorted(&self) -> Vec<&Table> {
        let mut ts: Vec<&Table> = self.tables.values().collect();
        ts.sort_by(|a, b| a.name().cmp(b.name()));
        ts
    }

    /// Total bytes of base-table storage held against the budget.
    pub fn total_bytes(&self) -> usize {
        self.tables.values().map(Table::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<(String, DataType)> {
        vec![("s".into(), DataType::Integer)]
    }

    #[test]
    fn create_get_drop() {
        let mut c = Catalog::new();
        let b = MemoryBudget::unlimited();
        c.create_table("T0", cols(), false, b.clone()).unwrap();
        assert!(c.contains("t0"), "case-insensitive");
        assert_eq!(c.get("T0").unwrap().name(), "T0");
        assert!(c.create_table("t0", cols(), false, b.clone()).is_err());
        c.create_table("t0", cols(), true, b.clone()).unwrap(); // IF NOT EXISTS
        c.drop_table("T0", false).unwrap();
        assert!(c.get("T0").is_err());
        assert!(c.drop_table("T0", false).is_err());
        c.drop_table("T0", true).unwrap();
    }

    #[test]
    fn duplicate_and_empty_columns_rejected() {
        let mut c = Catalog::new();
        let b = MemoryBudget::unlimited();
        let dup = vec![("x".into(), DataType::Integer), ("X".into(), DataType::Double)];
        assert!(c.create_table("t", dup, false, b.clone()).is_err());
        assert!(c.create_table("t", vec![], false, b).is_err());
    }

    #[test]
    fn drop_releases_budget() {
        let mut c = Catalog::new();
        let b = MemoryBudget::unlimited();
        c.create_table("t", cols(), false, b.clone()).unwrap();
        c.get_mut("t")
            .unwrap()
            .insert_rows(vec![vec![crate::value::Value::Int(1)]])
            .unwrap();
        assert!(b.used() > 0);
        c.drop_table("t", false).unwrap();
        assert_eq!(b.used(), 0);
    }
}
