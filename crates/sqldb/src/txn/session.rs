//! Concurrent sessions over one database: [`SharedDb`] / [`Session`].
//!
//! The engine itself ([`Database`]) is single-threaded behind a mutex.
//! What makes concurrent *writers* safe and useful is the protocol here:
//! a session acquires every table lock its next statement needs **before**
//! taking the engine mutex. Statements therefore only ever hold the mutex
//! while doing bounded work — a lock *wait* (possibly seconds, under the
//! wound-or-die policy of [`LockTable`]) never blocks other sessions from
//! executing against tables they own.
//!
//! Lock lifetime follows strict two-phase locking:
//!
//! * auto-commit statement — locks held for the statement, released when
//!   it returns;
//! * open transaction — locks accumulate in the transaction's state
//!   inside the database and release only at `COMMIT` / `ROLLBACK` /
//!   abort.
//!
//! Any lock failure (deadlock victim, bounded-wait timeout, cancellation
//! while waiting) inside an open transaction **aborts the transaction**
//! with the engine's full cleanup contract — memory ledger restored, no
//! partial WAL frame, locks released — so an immediate retry is always
//! valid.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::ast::Statement;
use crate::db::{Database, ResultSet};
use crate::error::Result;
use crate::exec::govern::{CancelHandle, QueryContext};
use crate::parser::{parse_script, parse_statement};
use crate::txn::lock::{LockGuard, LockTable};
use crate::txn::locks_for_statement;

/// A database shared by concurrent sessions. Cheap to clone (all `Arc`s).
#[derive(Clone)]
pub struct SharedDb {
    db: Arc<Mutex<Database>>,
    locks: Arc<LockTable>,
    next_session: Arc<AtomicU64>,
}

impl SharedDb {
    /// Wrap `db` for shared use. The lock table is the one the database
    /// already owns, so plain [`Database`] transactions and sessions agree
    /// on lock state.
    pub fn new(db: Database) -> Self {
        let locks = db.lock_table();
        SharedDb {
            db: Arc::new(Mutex::new(db)),
            locks,
            next_session: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Open a new session. Sessions are independent: each has its own
    /// transaction scope, cancel handle, and statement timeout.
    pub fn session(&self) -> Session {
        Session {
            shared: self.clone(),
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            owner: None,
            cancel: CancelHandle::new(),
            timeout_ms: None,
        }
    }

    /// Run `f` with the engine mutex held (state inspection in tests and
    /// maintenance tasks like an explicit checkpoint).
    pub fn with<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.lock_db())
    }

    fn lock_db(&self) -> MutexGuard<'_, Database> {
        // A panic while holding the engine mutex poisons it; the engine's
        // own invariants are checked internally, so keep serving sessions.
        self.db.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One client's view of a [`SharedDb`]: a transaction scope plus the
/// governance knobs of a connection.
pub struct Session {
    shared: SharedDb,
    id: u64,
    /// Lock-table owner id of the open transaction (`None` between
    /// transactions; auto-commit statements use a throwaway owner).
    owner: Option<u64>,
    cancel: CancelHandle,
    timeout_ms: Option<u64>,
}

impl Session {
    /// The session id (diagnostics; also the transaction key inside the
    /// database).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Handle that cancels this session's in-flight statement — including
    /// a lock wait — from another thread. Cancellation inside an open
    /// transaction aborts it.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// Per-statement deadline in milliseconds (`None` = none). Applies to
    /// lock waits and execution alike.
    pub fn set_statement_timeout_ms(&mut self, ms: Option<u64>) {
        self.timeout_ms = ms;
    }

    /// Whether this session currently has an open transaction.
    pub fn in_transaction(&self) -> bool {
        self.owner.is_some()
    }

    /// Execute one SQL statement in this session.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet> {
        let st = parse_statement(sql)?;
        self.execute_statement(st)
    }

    /// Execute a `;`-separated script; returns the last statement's result.
    /// Stops at the first error (which, inside an open transaction, has
    /// already aborted it).
    pub fn execute_script(&mut self, sql: &str) -> Result<ResultSet> {
        let statements = parse_script(sql)?;
        let mut last = ResultSet::dml(0);
        for st in statements {
            last = self.execute_statement(st)?;
        }
        Ok(last)
    }

    /// Execute an already-parsed statement: acquire its table locks (off
    /// the engine mutex), then run it in the engine under this session's
    /// governance.
    pub fn execute_statement(&mut self, st: Statement) -> Result<ResultSet> {
        let needed = locks_for_statement(&st);
        let in_txn = self.owner.is_some();
        let owner = match self.owner {
            Some(o) => o,
            None => self.shared.locks.allocate_owner(),
        };

        // The wait-side governance token: carries the session's cancel
        // flag and deadline into the lock table's poll loop.
        let wait_q =
            QueryContext::begin(self.timeout_ms, None, self.cancel.flag(), None);
        let mut guards: Vec<LockGuard> = Vec::with_capacity(needed.len());
        for (table, mode) in needed {
            match self.shared.locks.acquire(owner, &table, mode, &wait_q) {
                Ok(g) => guards.push(g),
                Err(e) => {
                    // Deadlock victim / lock timeout / cancelled while
                    // waiting: inside a transaction this aborts it (strict
                    // 2PL releases everything so the winner can proceed).
                    drop(guards);
                    if in_txn {
                        let mut db = self.shared.lock_db();
                        db.abort_session_txn(self.id);
                        self.owner = None;
                    }
                    self.shared.locks.forget(owner);
                    if !in_txn {
                        self.owner = None;
                    }
                    return Err(e);
                }
            }
        }

        let mut db = self.shared.lock_db();
        db.set_cancel_handle(self.cancel.clone());
        db.set_statement_timeout_ms(self.timeout_ms);
        let result = db.execute_for_session(self.id, st, guards);
        let open_after = db.session_in_txn(self.id);
        drop(db);

        if open_after {
            self.owner = Some(owner);
        } else {
            // Transaction resolved (or the statement was auto-commit):
            // clear any wound/wait residue for this owner.
            self.shared.locks.forget(owner);
            self.owner = None;
        }
        result
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(owner) = self.owner {
            let mut db = self.shared.lock_db();
            db.abort_session_txn(self.id);
            drop(db);
            self.shared.locks.forget(owner);
        }
    }
}
