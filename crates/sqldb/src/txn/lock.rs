//! Per-table lock manager for concurrent writer sessions.
//!
//! Strict two-phase locking at table granularity: a statement acquires
//! shared locks on every table it reads and exclusive locks on every table
//! it mutates, and a transaction holds its locks until `COMMIT` or
//! `ROLLBACK` (auto-commit statements release at statement end). Locks are
//! RAII [`LockGuard`]s — dropping the guard releases the lock, so abort
//! paths cannot leak one.
//!
//! Conflicts resolve two ways, both surfacing as typed errors the loser
//! can respond to by retrying its whole transaction:
//!
//! * **Deadlock detection** — before blocking, the requester walks the
//!   waits-for graph (owner → table it waits on → holders of that table).
//!   If the edge it is about to add closes a cycle, the *youngest*
//!   transaction in the cycle (highest id — ids are allocation-ordered)
//!   is chosen as victim. A victim that is the requester returns
//!   [`Error::Deadlock`] immediately; otherwise the victim is wounded and
//!   notices at its next wakeup, so the elder requester keeps waiting and
//!   wins the lock once the victim's session aborts and releases.
//! * **Bounded wait** — a lock not granted within the timeout
//!   (`QYMERA_LOCK_TIMEOUT_MS`, default 5000) returns
//!   [`Error::LockTimeout`]. This also backstops any cycle the detector
//!   cannot see (e.g. through resources it does not manage).
//!
//! Waiters poll their [`QueryContext`] while blocked, so cancellation and
//! deadline expiry interrupt a lock wait with the same typed errors as any
//! other cooperative cancel point.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{Error, Result};
use crate::exec::govern::QueryContext;

/// Default bounded lock wait before [`Error::LockTimeout`].
pub const DEFAULT_LOCK_TIMEOUT_MS: u64 = 5_000;

/// Wake-up granularity while blocked: each slice re-checks wounds,
/// grantability, the query context, and the deadline.
const WAIT_SLICE_MS: u64 = 10;

/// Lock strength. `Ord`: `Exclusive > Shared`, so an upgrade keeps the max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockMode {
    /// Concurrent readers: compatible with other shared holders.
    Shared,
    /// Single writer: compatible with nothing but itself.
    Exclusive,
}

#[derive(Debug)]
struct Held {
    mode: LockMode,
    /// Re-entrant acquisitions by the same owner (a transaction touching a
    /// table in several statements holds one guard per statement).
    count: u32,
}

#[derive(Debug, Default)]
struct LockState {
    /// Lock word per table (lowercased name): current holders and their
    /// modes. A table with no holders has no entry.
    tables: HashMap<String, HashMap<u64, Held>>,
    /// owner → table it is currently blocked on (the waits-for edges).
    waits: HashMap<u64, String>,
    /// Deadlock victims chosen by another waiter's cycle detection; each
    /// notices at its next wakeup and returns [`Error::Deadlock`].
    wounded: HashSet<u64>,
}

#[derive(Debug, Default)]
struct Inner {
    state: Mutex<LockState>,
    cv: Condvar,
}

fn lock_state(inner: &Inner) -> MutexGuard<'_, LockState> {
    // A panic while holding the state mutex leaves only bookkeeping that
    // the panicking session's guards will clean up; don't cascade it.
    inner.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shared lock manager. One per [`Database`](crate::db::Database);
/// cloned into every [`Session`](crate::txn::Session) handle.
#[derive(Debug)]
pub struct LockTable {
    inner: Arc<Inner>,
    timeout_ms: AtomicU64,
    /// Owner ids for auto-commit statements (transactions use their WAL
    /// allocation order; both draw from this counter so ids stay unique
    /// and age-ordered across the process).
    next_owner: AtomicU64,
}

impl Default for LockTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LockTable {
    /// Fresh lock table; timeout from `QYMERA_LOCK_TIMEOUT_MS` (default
    /// 5000 ms).
    pub fn new() -> Self {
        let timeout_ms = std::env::var("QYMERA_LOCK_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_LOCK_TIMEOUT_MS);
        LockTable {
            inner: Arc::new(Inner::default()),
            timeout_ms: AtomicU64::new(timeout_ms),
            next_owner: AtomicU64::new(1),
        }
    }

    /// Override the bounded lock wait (tests use tiny values).
    pub fn set_timeout_ms(&self, ms: u64) {
        self.timeout_ms.store(ms, Ordering::Relaxed);
    }

    /// Allocate a fresh owner id. Ids are never reused, and larger means
    /// younger — the deadlock victim ordering.
    pub fn allocate_owner(&self) -> u64 {
        self.next_owner.fetch_add(1, Ordering::Relaxed)
    }

    /// Acquire `mode` on `table` for `owner`, blocking up to the
    /// configured timeout. Re-entrant: an owner already holding the table
    /// stacks another guard (upgrading shared → exclusive when it is the
    /// sole holder). `query` is polled while blocked so cancellation and
    /// deadlines interrupt the wait.
    pub fn acquire(
        &self,
        owner: u64,
        table: &str,
        mode: LockMode,
        query: &QueryContext,
    ) -> Result<LockGuard> {
        let key = table.to_ascii_lowercase();
        let timeout_ms = self.timeout_ms.load(Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        let mut state = lock_state(&self.inner);
        loop {
            if state.wounded.remove(&owner) {
                state.waits.remove(&owner);
                drop(state);
                self.inner.cv.notify_all();
                return Err(Error::Deadlock { table: table.to_string() });
            }
            if grantable(&state, &key, owner, mode) {
                let holders = state.tables.entry(key.clone()).or_default();
                match holders.get_mut(&owner) {
                    Some(held) => {
                        held.count += 1;
                        held.mode = held.mode.max(mode);
                    }
                    None => {
                        holders.insert(owner, Held { mode, count: 1 });
                    }
                }
                state.waits.remove(&owner);
                return Ok(LockGuard {
                    inner: Arc::clone(&self.inner),
                    owner,
                    key,
                });
            }
            // Blocked: publish the waits-for edge and look for a cycle the
            // edge would close.
            state.waits.insert(owner, key.clone());
            if let Some(victim) = deadlock_victim(&state, owner, &key) {
                if victim == owner {
                    state.waits.remove(&owner);
                    drop(state);
                    self.inner.cv.notify_all();
                    return Err(Error::Deadlock { table: table.to_string() });
                }
                state.wounded.insert(victim);
                self.inner.cv.notify_all();
                // The elder keeps waiting; the wounded victim aborts and
                // releases at its next wakeup.
            }
            if let Err(e) = query.check() {
                state.waits.remove(&owner);
                return Err(e);
            }
            let now = Instant::now();
            if now >= deadline {
                state.waits.remove(&owner);
                return Err(Error::LockTimeout { table: table.to_string(), ms: timeout_ms });
            }
            let slice = (deadline - now).min(Duration::from_millis(WAIT_SLICE_MS));
            state = self
                .inner
                .cv
                .wait_timeout(state, slice)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Drop any residual wound/wait bookkeeping for an owner whose
    /// transaction ended. Guards themselves are RAII; this only clears the
    /// advisory sets.
    pub fn forget(&self, owner: u64) {
        let mut state = lock_state(&self.inner);
        state.wounded.remove(&owner);
        state.waits.remove(&owner);
    }

    /// Number of tables currently holding at least one lock (test hook).
    pub fn locked_tables(&self) -> usize {
        lock_state(&self.inner).tables.len()
    }
}

/// Can `owner` take `mode` on `key` right now?
fn grantable(state: &LockState, key: &str, owner: u64, mode: LockMode) -> bool {
    let Some(holders) = state.tables.get(key) else { return true };
    match mode {
        LockMode::Shared => holders
            .iter()
            .all(|(&h, held)| h == owner || held.mode == LockMode::Shared),
        LockMode::Exclusive => holders.keys().all(|&h| h == owner),
    }
}

/// If the edge `start → key` closes a waits-for cycle, return the youngest
/// participant (highest id) as victim. The first hop skips `start`'s own
/// holding of `key` — holding a table never blocks upgrading it (only the
/// *other* holders do), so it is not a waits-for edge.
fn deadlock_victim(state: &LockState, start: u64, key: &str) -> Option<u64> {
    let mut path: Vec<u64> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let holders = state.tables.get(key)?;
    for &holder in holders.keys() {
        if holder == start || !seen.insert(holder) {
            continue;
        }
        if let Some(next) = state.waits.get(&holder) {
            path.push(holder);
            if walk(state, start, next, &mut path, &mut seen) {
                return Some(path.iter().copied().fold(start, u64::max));
            }
            path.pop();
        }
    }
    None
}

/// DFS from the holders of `table` along waits edges, looking for `start`.
/// On success `path` holds the cycle's intermediate owners.
fn walk(
    state: &LockState,
    start: u64,
    table: &str,
    path: &mut Vec<u64>,
    seen: &mut HashSet<u64>,
) -> bool {
    let Some(holders) = state.tables.get(table) else { return false };
    for &holder in holders.keys() {
        if holder == start {
            return true;
        }
        if !seen.insert(holder) {
            continue;
        }
        if let Some(next) = state.waits.get(&holder) {
            path.push(holder);
            if walk(state, start, next, path, seen) {
                return true;
            }
            path.pop();
        }
    }
    false
}

/// RAII table lock: releasing is dropping. Held by the transaction state
/// for multi-statement transactions, or for the statement's duration in
/// auto-commit mode.
#[derive(Debug)]
pub struct LockGuard {
    inner: Arc<Inner>,
    owner: u64,
    key: String,
}

impl LockGuard {
    /// The lowercased table name this guard locks (test hook).
    pub fn table(&self) -> &str {
        &self.key
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let mut state = lock_state(&self.inner);
        if let Some(holders) = state.tables.get_mut(&self.key) {
            if let Some(held) = holders.get_mut(&self.owner) {
                held.count -= 1;
                if held.count == 0 {
                    holders.remove(&self.owner);
                }
            }
            if holders.is_empty() {
                state.tables.remove(&self.key);
            }
        }
        drop(state);
        self.inner.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;

    fn table() -> LockTable {
        let t = LockTable::new();
        t.set_timeout_ms(2_000);
        t
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let lt = table();
        let ctx = QueryContext::unbounded();
        let g1 = lt.acquire(1, "t", LockMode::Shared, &ctx).unwrap();
        let _g2 = lt.acquire(2, "t", LockMode::Shared, &ctx).unwrap();
        lt.set_timeout_ms(30);
        let err = lt.acquire(3, "t", LockMode::Exclusive, &ctx).unwrap_err();
        assert!(matches!(err, Error::LockTimeout { .. }));
        drop(g1);
        // Still blocked by g2.
        let err = lt.acquire(3, "t", LockMode::Exclusive, &ctx).unwrap_err();
        assert!(matches!(err, Error::LockTimeout { .. }));
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lt = table();
        let ctx = QueryContext::unbounded();
        let g1 = lt.acquire(1, "t", LockMode::Shared, &ctx).unwrap();
        // Same owner stacks; sole holder may upgrade.
        let g2 = lt.acquire(1, "t", LockMode::Exclusive, &ctx).unwrap();
        lt.set_timeout_ms(30);
        let err = lt.acquire(2, "t", LockMode::Shared, &ctx).unwrap_err();
        assert!(matches!(err, Error::LockTimeout { .. }));
        drop(g1);
        drop(g2);
        assert_eq!(lt.locked_tables(), 0);
        lt.set_timeout_ms(2_000);
        let _ = lt.acquire(2, "t", LockMode::Exclusive, &ctx).unwrap();
    }

    #[test]
    fn upgrade_blocked_by_other_shared_holder() {
        let lt = table();
        let ctx = QueryContext::unbounded();
        let _g1 = lt.acquire(1, "t", LockMode::Shared, &ctx).unwrap();
        let _g2 = lt.acquire(2, "t", LockMode::Shared, &ctx).unwrap();
        lt.set_timeout_ms(30);
        let err = lt.acquire(1, "t", LockMode::Exclusive, &ctx).unwrap_err();
        assert!(matches!(err, Error::LockTimeout { .. }));
    }

    #[test]
    fn deadlock_youngest_dies_elder_wins() {
        let lt = Arc::new(table());
        let ctx = QueryContext::unbounded();
        // Owner 1 (elder) holds a; owner 2 (younger) holds b.
        let _g1a = lt.acquire(1, "a", LockMode::Exclusive, &ctx).unwrap();
        let g2b = lt.acquire(2, "b", LockMode::Exclusive, &ctx).unwrap();

        // Younger blocks on a in a thread, then elder requests b, closing
        // the cycle. The younger must get Deadlock; the elder must win.
        let (tx, rx) = mpsc::channel();
        let lt2 = Arc::clone(&lt);
        let younger = thread::spawn(move || {
            let ctx = QueryContext::unbounded();
            let r = lt2.acquire(2, "a", LockMode::Exclusive, &ctx);
            // On deadlock the session would abort, releasing b.
            drop(g2b);
            tx.send(()).unwrap();
            r
        });
        // Wait until owner 2 is actually blocked on a.
        loop {
            if lock_state(&lt.inner).waits.contains_key(&2) {
                break;
            }
            thread::yield_now();
        }
        let g1b = lt.acquire(1, "b", LockMode::Exclusive, &ctx);
        rx.recv().unwrap();
        let younger_result = younger.join().unwrap();
        assert!(matches!(younger_result, Err(Error::Deadlock { .. })), "{younger_result:?}");
        assert!(g1b.is_ok(), "{g1b:?}");
        lt.forget(1);
        lt.forget(2);
    }

    #[test]
    fn cancellation_interrupts_lock_wait() {
        let lt = table();
        let ctx = QueryContext::unbounded();
        let _g1 = lt.acquire(1, "t", LockMode::Exclusive, &ctx).unwrap();
        let waiting = QueryContext::unbounded();
        waiting.cancel();
        let err = lt.acquire(2, "t", LockMode::Exclusive, &waiting).unwrap_err();
        assert!(matches!(err, Error::Cancelled));
    }
}
