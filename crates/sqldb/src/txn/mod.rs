//! Multi-statement transactions: `BEGIN` / `COMMIT` / `ROLLBACK` with
//! savepoints, a table-granular lock manager for concurrent writers, and
//! the in-memory rollback machinery that pairs with the WAL's
//! transaction-scoped frames.
//!
//! The pieces:
//!
//! * [`lock`] — the strict two-phase-locking lock table
//!   ([`LockTable`] / [`LockGuard`]), with wound-or-die deadlock
//!   resolution and a bounded wait.
//! * [`session`] — [`SharedDb`] / [`Session`]: concurrent sessions over
//!   one database. A session pre-acquires its statement's table locks
//!   *before* taking the engine mutex, so lock waits never stall other
//!   sessions' progress.
//! * The `TxnState` bookkeeping (crate-private) the database keeps per
//!   open transaction: an undo stack of O(1) copy-on-write table states,
//!   savepoint marks into that stack, the WAL frame id, and the locks
//!   held.
//!
//! Rollback is purely in-memory and O(statements), not O(rows): each
//! mutated table's pre-statement chunk list is captured once per
//! statement (`UndoEntry::Mutated`), a created table is undone by
//! dropping it, and a dropped table is kept alive in the undo stack
//! (`UndoEntry::Dropped`) — budget charge included — until the
//! transaction resolves.

pub mod lock;
pub mod session;

pub use lock::{LockGuard, LockMode, LockTable, DEFAULT_LOCK_TIMEOUT_MS};
pub use session::{Session, SharedDb};

use std::collections::BTreeMap;

use crate::ast::{Query, SetExpr, Statement, TableRef};
use crate::table::{Table, TableUndo};

/// One undoable effect of a statement inside an open transaction, pushed
/// *after* the in-memory apply succeeds. Rollback pops these in reverse.
#[derive(Debug)]
pub(crate) enum UndoEntry {
    /// A table was mutated (INSERT / DELETE): `undo` restores the
    /// pre-statement chunk list in O(1).
    Mutated { table: String, undo: TableUndo },
    /// A table was created: rollback drops it.
    Created { name: String },
    /// A table was dropped: the stashed [`Table`] (still charging the
    /// memory budget) is put back on rollback, or finally released on
    /// commit.
    Dropped { table: Table },
}

/// A `SAVEPOINT` mark: positions in the undo stack and the WAL frame that
/// `ROLLBACK TO SAVEPOINT` rewinds to.
#[derive(Debug)]
pub(crate) struct SavepointMark {
    /// Savepoint name (case-insensitive lookup, latest wins).
    pub name: String,
    /// Undo-stack depth when the savepoint was set.
    pub undo_len: usize,
    /// Ops logged to the WAL frame when the savepoint was set.
    pub ops_logged: u64,
    /// WAL byte length at the mark (valid only when `wal_begun`).
    pub wal_len: u64,
    /// Whether the transaction had already opened its WAL frame. A
    /// rollback across this boundary abandons the frame entirely instead
    /// of truncating into the `Begin` record.
    pub wal_begun: bool,
}

/// Per-session state of one open transaction. Owned by the database
/// (keyed by session id) so abort, checkpoint and crash paths can reach
/// every open transaction's undo stack.
#[derive(Debug, Default)]
pub(crate) struct TxnState {
    /// WAL frame id, opened lazily at the first logged op — a read-only
    /// transaction commits without touching the log at all.
    pub wal_txn: Option<u64>,
    /// WAL repair epoch observed at `BEGIN`. If a crash-repair truncation
    /// bumps it while this transaction is open, some of its records may
    /// have been cut and `COMMIT` must refuse.
    pub epoch: u64,
    /// Count of op records logged to the frame (savepoint arithmetic).
    pub ops_logged: u64,
    /// Undo stack, oldest first.
    pub undo: Vec<UndoEntry>,
    /// Active savepoints, oldest first.
    pub savepoints: Vec<SavepointMark>,
    /// Table locks held (strict 2PL: released only when the transaction
    /// resolves and this state is dropped).
    pub locks: Vec<LockGuard>,
}

/// The table locks a statement needs, sorted by table name (deterministic
/// acquisition order keeps lock waits canonical across sessions).
///
/// Writers take [`LockMode::Exclusive`] on their target table; queries
/// take [`LockMode::Shared`] on every named relation in `FROM`/`JOIN`
/// (recursing into subqueries and CTE bodies — a CTE *name* that shadows
/// a base table over-locks harmlessly, since locking never requires the
/// table to exist). Transaction-control statements lock nothing.
pub fn locks_for_statement(st: &Statement) -> Vec<(String, LockMode)> {
    let mut wanted: BTreeMap<String, LockMode> = BTreeMap::new();
    match st {
        Statement::CreateTable { name, .. } | Statement::DropTable { name, .. } => {
            add(&mut wanted, name, LockMode::Exclusive);
        }
        Statement::Insert { table, .. } | Statement::Delete { table, .. } => {
            add(&mut wanted, table, LockMode::Exclusive);
        }
        Statement::Query(q) | Statement::Explain(q) => walk_query(q, &mut wanted),
        Statement::Begin
        | Statement::Commit
        | Statement::Rollback { .. }
        | Statement::Savepoint { .. } => {}
    }
    wanted.into_iter().collect()
}

fn add(wanted: &mut BTreeMap<String, LockMode>, name: &str, mode: LockMode) {
    wanted
        .entry(name.to_ascii_lowercase())
        .and_modify(|m| *m = (*m).max(mode))
        .or_insert(mode);
}

fn walk_query(q: &Query, wanted: &mut BTreeMap<String, LockMode>) {
    for (_, cte) in &q.ctes {
        walk_query(cte, wanted);
    }
    walk_set(&q.body, wanted);
}

fn walk_set(s: &SetExpr, wanted: &mut BTreeMap<String, LockMode>) {
    match s {
        SetExpr::Select(sel) => {
            if let Some(from) = &sel.from {
                walk_ref(from, wanted);
            }
            for join in &sel.joins {
                walk_ref(&join.table, wanted);
            }
        }
        SetExpr::UnionAll(a, b) => {
            walk_set(a, wanted);
            walk_set(b, wanted);
        }
    }
}

fn walk_ref(r: &TableRef, wanted: &mut BTreeMap<String, LockMode>) {
    match r {
        TableRef::Named { name, .. } => add(wanted, name, LockMode::Shared),
        TableRef::Subquery { query, .. } => walk_query(query, wanted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn locks(sql: &str) -> Vec<(String, LockMode)> {
        locks_for_statement(&parse_statement(sql).unwrap())
    }

    #[test]
    fn writers_lock_exclusive_readers_shared() {
        assert_eq!(
            locks("INSERT INTO t VALUES (1)"),
            vec![("t".into(), LockMode::Exclusive)]
        );
        assert_eq!(
            locks("DELETE FROM T WHERE a = 1"),
            vec![("t".into(), LockMode::Exclusive)]
        );
        assert_eq!(
            locks("SELECT * FROM a JOIN b ON a.x = b.y"),
            vec![("a".into(), LockMode::Shared), ("b".into(), LockMode::Shared)]
        );
    }

    #[test]
    fn query_walk_reaches_ctes_subqueries_and_unions() {
        let got = locks(
            "WITH c AS (SELECT x FROM base) \
             SELECT * FROM (SELECT * FROM inner1) s \
             JOIN c ON c.x = s.x \
             UNION ALL SELECT * FROM other",
        );
        let names: Vec<&str> = got.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["base", "c", "inner1", "other"]);
        assert!(got.iter().all(|(_, m)| *m == LockMode::Shared));
    }

    #[test]
    fn txn_control_locks_nothing_and_order_is_sorted() {
        assert!(locks("BEGIN").is_empty());
        assert!(locks("COMMIT").is_empty());
        assert!(locks("ROLLBACK").is_empty());
        let got = locks("SELECT * FROM zz JOIN aa ON zz.x = aa.x");
        assert_eq!(got[0].0, "aa");
        assert_eq!(got[1].0, "zz");
    }
}
