//! In-memory base tables in chunked columnar layout.
//!
//! A [`Table`] stores its rows decomposed into per-column chunks of up to
//! [`CHUNK_ROWS`] rows. Each chunk column is a shared [`ColumnRef`] — the
//! same `Arc<Column>` type the vectorized executor's
//! [`RowBatch`](crate::exec::batch::RowBatch) carries — so a batch scan
//! hands table chunks straight to the operator pipeline with **zero copy**
//! and no row→column transpose. Qymera's state tables (`T(s, r, i)`) and
//! gate tables (`G(in_s, out_s, r, i)`) both live here; the gate-application
//! hot path re-scans the state table once per gate, which is exactly the
//! access pattern this layout optimizes.
//!
//! # Snapshots and copy-on-write
//!
//! [`Table::snapshot`] returns a [`TableSnapshot`]: an `Arc` of the chunk
//! list, taken in O(1). Inserts append through [`Arc::make_mut`] at both
//! levels — the chunk list and the open tail chunk's columns — so a snapshot
//! (or any in-flight batch holding chunk columns) keeps observing the exact
//! rows that existed when it was taken while the table moves on. Sealed
//! chunks are never mutated again; only the partially filled tail chunk is
//! ever cloned, bounding the copy-on-write cost to < [`CHUNK_ROWS`] rows per
//! insert regardless of table size.
//!
//! # Memory accounting
//!
//! Column storage charges the shared [`MemoryBudget`] through a
//! [`Reservation`], per column chunk: fast-lane (`INTEGER`/`DOUBLE`) cells
//! cost 8 bytes/row, generic cells their [`Value::heap_bytes`]. Inserts
//! reserve **as they pack**: every chunk charges a staged reservation the
//! moment it seals, so a huge `INSERT` never holds more than one chunk
//! (≤ [`CHUNK_ROWS`] rows) of unaccounted storage — packing aborts at the
//! first chunk the budget refuses. The mutation stays all-or-nothing: the
//! table is only touched after every chunk is packed *and* charged, and on
//! failure the staged reservation drops, leaving table and ledger exactly
//! as they were. Deletes rebuild only surviving chunks, charging each
//! rebuilt chunk through the same streaming scheme — in **overdraft** mode,
//! since the net effect of a delete only ever shrinks the charge and must
//! not fail against a full budget; the transient survivor copies still land
//! on the ledger while they exist, so concurrent reservations see honest
//! usage.

use std::sync::Arc;

use crate::ast::DataType;
use crate::error::{Error, Result};
use crate::exec::batch::{Column, ColumnRef, BATCH_SIZE};
use crate::schema::{Field, RelSchema};
use crate::storage::budget::{MemoryBudget, Reservation};
use crate::storage::spill::Row;
use crate::value::Value;

/// Rows per storage chunk. Matched to the executor's [`BATCH_SIZE`] so a
/// scan yields exactly one ready-made batch per chunk.
pub const CHUNK_ROWS: usize = BATCH_SIZE;

/// One horizontal slice of a table (≤ [`CHUNK_ROWS`] rows) in columnar
/// layout. Chunks are immutable once sealed; the tail chunk grows by
/// copy-on-write.
#[derive(Debug, Clone)]
pub struct TableChunk {
    columns: Vec<ColumnRef>,
    rows: usize,
}

impl TableChunk {
    fn from_builders(columns: Vec<Column>, rows: usize) -> TableChunk {
        debug_assert!(columns.iter().all(|c| c.len() == rows), "ragged chunk");
        TableChunk { columns: columns.into_iter().map(Arc::new).collect(), rows }
    }

    /// The chunk's columns, in schema order. Shared with scans.
    pub fn columns(&self) -> &[ColumnRef] {
        &self.columns
    }

    /// Number of rows in this chunk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Materialize row `i` of the chunk (row-path adapter).
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value_at(i)).collect()
    }

    /// Bytes this chunk charges against the memory budget.
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.heap_bytes()).sum()
    }
}

/// An immutable, consistent view of a table's rows at a point in time.
/// Cloning is cheap (`Arc` of the chunk list); concurrent inserts and
/// deletes on the table never show through an existing snapshot.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    chunks: Arc<Vec<TableChunk>>,
    rows: usize,
}

impl TableSnapshot {
    /// The snapshot's chunks, in row order.
    pub fn chunks(&self) -> &[TableChunk] {
        &self.chunks
    }

    /// Total rows across all chunks.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Materialize every row (tests and small-table conveniences).
    pub fn to_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.rows);
        for chunk in self.chunks.iter() {
            for i in 0..chunk.rows() {
                out.push(chunk.row(i));
            }
        }
        out
    }
}

/// How [`Table::pack_chunks_charged`] bills each sealed chunk.
enum ChunkCharge<'a> {
    /// Reserve against the budget limit; refusals abort the mutation
    /// (insert path). `credit` offsets storage the mutation replaces.
    Strict { staged: &'a mut Reservation, credit: usize },
    /// Charge unconditionally past the limit (delete re-pack: the net
    /// effect only shrinks, so the rebuild must not fail).
    Overdraft { staged: &'a mut Reservation },
}

/// A table's pre-statement state, captured in O(1) via the copy-on-write
/// chunk list. The durable path takes one before applying a statement so a
/// failed WAL commit can roll the in-memory table back to exactly what the
/// log (and therefore recovery) knows.
#[derive(Debug)]
pub(crate) struct TableUndo {
    chunks: Arc<Vec<TableChunk>>,
    rows: usize,
    bytes: usize,
}

impl TableUndo {
    /// The captured (pre-mutation) state as a snapshot. While a transaction
    /// holds uncommitted changes, a checkpoint serializes this committed
    /// view instead of the live table.
    pub(crate) fn snapshot(&self) -> TableSnapshot {
        TableSnapshot { chunks: Arc::clone(&self.chunks), rows: self.rows }
    }

    /// Row count of the captured state.
    pub(crate) fn rows(&self) -> usize {
        self.rows
    }
}

/// A base table: declared columns plus chunked columnar row storage.
#[derive(Debug)]
pub struct Table {
    name: String,
    columns: Vec<(String, DataType)>,
    /// Shared with snapshots; mutation goes through [`Arc::make_mut`].
    chunks: Arc<Vec<TableChunk>>,
    rows: usize,
    /// Budget charge for all chunk storage (RAII: freed on drop).
    reservation: Reservation,
}

impl Table {
    /// An empty table named `name` with the given columns, charging `budget`.
    pub fn new(name: &str, columns: Vec<(String, DataType)>, budget: MemoryBudget) -> Self {
        Table {
            name: name.to_string(),
            columns,
            chunks: Arc::new(Vec::new()),
            rows: 0,
            reservation: Reservation::empty(&budget),
        }
    }

    /// The table's name as declared (original casing).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared columns: `(name, type)` in schema order.
    pub fn columns(&self) -> &[(String, DataType)] {
        &self.columns
    }

    /// Schema qualified by the table's own name.
    pub fn schema(&self) -> RelSchema {
        RelSchema::new(
            self.columns
                .iter()
                .map(|(n, t)| Field::typed(Some(&self.name), n, *t))
                .collect(),
        )
    }

    /// Total number of rows currently stored.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Bytes this table holds against the budget.
    pub fn bytes(&self) -> usize {
        self.reservation.bytes()
    }

    /// O(1) consistent snapshot for scans (copy-on-write with inserts).
    pub fn snapshot(&self) -> TableSnapshot {
        TableSnapshot { chunks: Arc::clone(&self.chunks), rows: self.rows }
    }

    /// An empty typed column builder for declared type `ty` (fast lanes for
    /// `INTEGER`/`DOUBLE`; [`Column::push`] demotes on NULLs automatically).
    fn lane_for(ty: DataType) -> Column {
        match ty {
            DataType::Integer => Column::Int(Vec::new()),
            DataType::Double => Column::Float(Vec::new()),
            DataType::Text | DataType::HugeInt => Column::Generic(Vec::new()),
        }
    }

    /// Validate and coerce a row to the declared column types.
    pub fn coerce_row(&self, row: Vec<Value>) -> Result<Row> {
        if row.len() != self.columns.len() {
            return Err(Error::Plan(format!(
                "table `{}` expects {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        row.into_iter()
            .zip(self.columns.iter())
            .map(|(v, (cname, ty))| coerce(v, *ty).map_err(|e| match e {
                Error::Type(m) => Error::Type(format!("column `{cname}`: {m}")),
                other => other,
            }))
            .collect()
    }

    /// Coerce and append `rows` in one atomic step, returning the number
    /// inserted. This is the loader entry point ([`crate::db::Database`]'s
    /// `INSERT` and CTAS paths): values stream straight into the typed
    /// column builders of the tail chunk, and any coercion error or budget
    /// overrun leaves the table untouched.
    pub fn load_rows(&mut self, rows: Vec<Row>) -> Result<usize> {
        let coerced: Vec<Row> =
            rows.into_iter().map(|r| self.coerce_row(r)).collect::<Result<_>>()?;
        let n = coerced.len();
        self.insert_rows(coerced)?;
        Ok(n)
    }

    /// Append rows (already coerced), charging the memory budget. Atomic:
    /// on budget overrun nothing is inserted and nothing is charged.
    pub fn insert_rows(&mut self, rows: Vec<Row>) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        if let Some(r) = rows.iter().find(|r| r.len() != self.columns.len()) {
            return Err(Error::Plan(format!(
                "table `{}` expects {} values, got {}",
                self.name,
                self.columns.len(),
                r.len()
            )));
        }

        // Rebuild the tail + fresh chunks without touching the table,
        // reserving budget per chunk as the builders fill (streaming
        // reserve-as-you-pack): packing stops at the first chunk the budget
        // refuses, so the unaccounted transient is bounded by one open
        // chunk, not the mutation size. The replaced tail's existing charge
        // is credited against the first sealed chunk, making the staged
        // total exactly the byte delta.
        let reopen_tail = self.chunks.last().is_some_and(|tail| tail.rows < CHUNK_ROWS);
        let (open, open_rows, replaced_bytes, replaced_rows) = if reopen_tail {
            let tail = self.chunks.last().expect("tail checked above");
            // Copy-on-write: the open chunk's data is cloned once (< CHUNK_ROWS
            // rows); snapshots holding the old Arc keep the old contents.
            let cols: Vec<Column> = tail.columns.iter().map(|c| (**c).clone()).collect();
            (cols, tail.rows, tail.heap_bytes(), tail.rows)
        } else {
            (self.empty_builders(), 0, 0, 0)
        };
        let mut staged = Reservation::empty(self.reservation.budget());
        let sealed = self.pack_chunks_charged(
            open,
            open_rows,
            rows,
            ChunkCharge::Strict { staged: &mut staged, credit: replaced_bytes },
        )?;

        // All chunks packed and charged: commit. Dropping `staged` on the
        // error path above released everything, keeping inserts atomic.
        let new_rows: usize = sealed.iter().map(TableChunk::rows).sum();
        let chunks = Arc::make_mut(&mut self.chunks);
        if reopen_tail {
            chunks.pop();
        }
        chunks.extend(sealed);
        self.rows += new_rows - replaced_rows;
        self.reservation.adopt(staged);
        Ok(())
    }

    /// Pack `rows` into sealed chunks, continuing from an open builder set
    /// holding `open_rows` rows already. Each chunk charges its bytes the
    /// moment it seals, per the [`ChunkCharge`] mode: `Strict` (inserts)
    /// reserves against the limit — minus any remaining `credit` for
    /// storage it replaces — and aborts packing with
    /// [`Error::OutOfMemory`] when refused; `Overdraft` (delete re-pack)
    /// always succeeds but still lands the transient bytes on the ledger.
    fn pack_chunks_charged(
        &self,
        mut open: Vec<Column>,
        mut open_rows: usize,
        rows: Vec<Row>,
        mut charge: ChunkCharge<'_>,
    ) -> Result<Vec<TableChunk>> {
        let mut sealed: Vec<TableChunk> = Vec::new();
        let mut seal = |chunk: TableChunk, charge: &mut ChunkCharge<'_>| -> Result<()> {
            let bytes = chunk.heap_bytes();
            match charge {
                ChunkCharge::Strict { staged, credit } => {
                    let billed = bytes.saturating_sub(*credit);
                    *credit -= bytes.min(*credit);
                    if !staged.try_grow(billed) {
                        return Err(Error::OutOfMemory {
                            requested: billed,
                            budget: staged.budget().limit(),
                        });
                    }
                }
                ChunkCharge::Overdraft { staged } => staged.grow_overdraft(bytes),
            }
            sealed.push(chunk);
            Ok(())
        };
        for mut row in rows {
            for col in open.iter_mut().rev() {
                col.push(row.pop().expect("arity checked"));
            }
            open_rows += 1;
            if open_rows == CHUNK_ROWS {
                let full = std::mem::replace(&mut open, self.empty_builders());
                seal(TableChunk::from_builders(full, CHUNK_ROWS), &mut charge)?;
                open_rows = 0;
            }
        }
        if open_rows > 0 {
            seal(TableChunk::from_builders(open, open_rows), &mut charge)?;
        }
        Ok(sealed)
    }

    /// Fresh typed builders for one chunk, in schema order.
    fn empty_builders(&self) -> Vec<Column> {
        self.columns.iter().map(|(_, ty)| Self::lane_for(*ty)).collect()
    }

    /// Delete rows matching `pred`; returns the number removed. Atomic: a
    /// predicate error leaves the table unchanged. Only chunks that lose
    /// rows are re-packed — untouched sealed chunks carry over as `Arc`
    /// clones, so a selective delete costs O(matching chunks), not
    /// O(table). (Chunks may be left partially full; only the tail chunk is
    /// ever reopened by inserts.)
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> Result<bool>) -> Result<usize> {
        // Phase 1: evaluate the predicate everywhere before mutating
        // anything. `None` = chunk untouched; `Some(rows)` = its survivors.
        // A reusable scratch row keeps untouched chunks allocation-free:
        // owned rows are only built for chunks that actually lose rows.
        let mut survivors_by_chunk: Vec<Option<Vec<Row>>> =
            Vec::with_capacity(self.chunks.len());
        let mut removed = 0usize;
        let mut scratch: Row = Vec::with_capacity(self.columns.len());
        for chunk in self.chunks.iter() {
            let mut survivors: Option<Vec<Row>> = None;
            for i in 0..chunk.rows() {
                scratch.clear();
                scratch.extend(chunk.columns().iter().map(|c| c.value_at(i)));
                if pred(&scratch)? {
                    removed += 1;
                    if survivors.is_none() {
                        // First hit in this chunk: back-fill the rows kept
                        // so far.
                        survivors = Some((0..i).map(|j| chunk.row(j)).collect());
                    }
                } else if let Some(s) = survivors.as_mut() {
                    s.push(std::mem::take(&mut scratch));
                }
            }
            survivors_by_chunk.push(survivors);
        }
        if removed == 0 {
            return Ok(0);
        }

        // Phase 2: rebuild only the chunks that lost rows. Rebuilt chunks
        // charge a staged overdraft reservation as they seal (streaming
        // reserve-as-you-pack, like inserts) so the transient survivor
        // copies are visible on the ledger; overdraft mode keeps the delete
        // infallible against a full budget.
        let mut staged = Reservation::empty(self.reservation.budget());
        let mut replaced_bytes = 0usize;
        let mut rebuilt: Vec<TableChunk> = Vec::with_capacity(self.chunks.len());
        for (chunk, survivors) in self.chunks.iter().zip(survivors_by_chunk) {
            match survivors {
                None => rebuilt.push(chunk.clone()),
                Some(rows) if rows.is_empty() => replaced_bytes += chunk.heap_bytes(),
                Some(rows) => {
                    replaced_bytes += chunk.heap_bytes();
                    rebuilt.extend(self.pack_chunks_charged(
                        self.empty_builders(),
                        0,
                        rows,
                        ChunkCharge::Overdraft { staged: &mut staged },
                    )?);
                }
            }
        }
        self.rows -= removed;
        self.chunks = Arc::new(rebuilt);
        // Commit the staged charge, then release the replaced chunks'
        // bytes: the net change is `new survivor bytes − replaced bytes`,
        // which never grows the charge past what phase 1 started with.
        self.reservation.adopt(staged);
        self.reservation.shrink(replaced_bytes);
        Ok(removed)
    }

    /// Capture this table's pre-statement state in O(1) (shared chunk
    /// list). See [`TableUndo`].
    pub(crate) fn undo_state(&self) -> TableUndo {
        TableUndo {
            chunks: Arc::clone(&self.chunks),
            rows: self.rows,
            bytes: self.reservation.bytes(),
        }
    }

    /// Roll the table back to a previously captured [`TableUndo`]. The
    /// budget charge is re-aligned to the captured value — shrinking after
    /// an undone insert, growing (overdraft, infallible) after an undone
    /// delete.
    pub(crate) fn restore(&mut self, undo: TableUndo) {
        self.chunks = undo.chunks;
        self.rows = undo.rows;
        let cur = self.reservation.bytes();
        if cur > undo.bytes {
            self.reservation.shrink(cur - undo.bytes);
        } else {
            self.reservation.grow_overdraft(undo.bytes - cur);
        }
    }

    /// Release all budget held by this table and drop its chunk list early.
    /// Dropping the table frees the charge anyway (the reservation is
    /// RAII); this exists for callers that keep the `Table` value around —
    /// snapshots may still outlive both and keep the chunk data itself
    /// alive.
    pub fn release_budget(&mut self) {
        self.reservation.free();
        self.chunks = Arc::new(Vec::new());
        self.rows = 0;
    }
}

/// Coerce a value to a column type (lossless widenings only).
pub fn coerce(v: Value, ty: DataType) -> Result<Value> {
    match (ty, v) {
        (_, Value::Null) => Ok(Value::Null),
        (DataType::Integer, Value::Int(i)) => Ok(Value::Int(i)),
        (DataType::Integer, Value::Float(f)) if f.fract() == 0.0 && f.abs() < 9.2e18 => {
            Ok(Value::Int(f as i64))
        }
        (DataType::Integer, Value::Big(b)) => b
            .to_i64()
            .map(Value::Int)
            .ok_or_else(|| Error::Type("HUGEINT value does not fit INTEGER".into())),
        (DataType::HugeInt, Value::Int(i)) if i >= 0 => {
            Ok(Value::Big(crate::bigbits::BigBits::from_u64(i as u64, 64)))
        }
        (DataType::HugeInt, Value::Big(b)) => Ok(Value::Big(b)),
        (DataType::Double, Value::Float(f)) => Ok(Value::Float(f)),
        (DataType::Double, Value::Int(i)) => Ok(Value::Float(i as f64)),
        (DataType::Text, Value::Str(s)) => Ok(Value::Str(s)),
        (ty, v) => Err(Error::Type(format!("cannot store {} in {} column", v.type_name(), ty))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_table(budget: MemoryBudget) -> Table {
        Table::new(
            "T0",
            vec![
                ("s".into(), DataType::Integer),
                ("r".into(), DataType::Double),
                ("i".into(), DataType::Double),
            ],
            budget,
        )
    }

    #[test]
    fn insert_and_snapshot() {
        let mut t = state_table(MemoryBudget::unlimited());
        let row = t.coerce_row(vec![Value::Int(0), Value::Int(1), Value::Float(0.0)]).unwrap();
        // int 1 coerced to float for the DOUBLE column
        assert_eq!(row[1], Value::Float(1.0));
        t.insert_rows(vec![row]).unwrap();
        assert_eq!(t.row_count(), 1);
        let snap = t.snapshot();
        assert_eq!(snap.num_rows(), 1);
        assert_eq!(snap.to_rows()[0][0], Value::Int(0));
    }

    #[test]
    fn storage_is_columnar_with_typed_lanes() {
        let mut t = state_table(MemoryBudget::unlimited());
        let rows: Vec<Row> = (0..10)
            .map(|s| vec![Value::Int(s), Value::Float(1.0), Value::Float(0.0)])
            .collect();
        t.insert_rows(rows).unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.chunks().len(), 1);
        let chunk = &snap.chunks()[0];
        assert!(matches!(&*chunk.columns()[0], Column::Int(_)), "INTEGER fast lane");
        assert!(matches!(&*chunk.columns()[1], Column::Float(_)), "DOUBLE fast lane");
        assert_eq!(chunk.rows(), 10);
    }

    #[test]
    fn chunks_seal_at_chunk_rows() {
        let mut t = state_table(MemoryBudget::unlimited());
        let rows: Vec<Row> = (0..(CHUNK_ROWS as i64 * 2 + 5))
            .map(|s| vec![Value::Int(s), Value::Float(1.0), Value::Float(0.0)])
            .collect();
        t.insert_rows(rows).unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.chunks().len(), 3);
        assert_eq!(snap.chunks()[0].rows(), CHUNK_ROWS);
        assert_eq!(snap.chunks()[1].rows(), CHUNK_ROWS);
        assert_eq!(snap.chunks()[2].rows(), 5);
        assert_eq!(t.row_count(), CHUNK_ROWS * 2 + 5);
        // Row order is preserved across chunk boundaries.
        assert_eq!(snap.chunks()[1].row(0)[0], Value::Int(CHUNK_ROWS as i64));
    }

    #[test]
    fn budget_enforced_on_insert() {
        // 3 columns × 8 bytes × 2 rows = 48 bytes of fast-lane storage.
        let budget = MemoryBudget::with_limit(40);
        let mut t = state_table(budget.clone());
        let row = vec![Value::Int(0), Value::Float(1.0), Value::Float(0.0)];
        let e = t.insert_rows(vec![row.clone(), row]).unwrap_err();
        assert!(matches!(e, Error::OutOfMemory { .. }));
        // Atomic: the failed insert charged nothing and stored nothing.
        assert_eq!(t.row_count(), 0);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn delete_releases_budget() {
        let budget = MemoryBudget::unlimited();
        let mut t = state_table(budget.clone());
        for s in 0..10 {
            let row = t.coerce_row(vec![Value::Int(s), Value::Float(1.0), Value::Float(0.0)])
                .unwrap();
            t.insert_rows(vec![row]).unwrap();
        }
        let used_before = budget.used();
        let n = t.delete_where(|r| Ok(matches!(r[0], Value::Int(v) if v < 5))).unwrap();
        assert_eq!(n, 5);
        assert!(budget.used() < used_before);
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.snapshot().to_rows()[0][0], Value::Int(5));
    }

    #[test]
    fn snapshot_is_copy_on_write() {
        let mut t = state_table(MemoryBudget::unlimited());
        let row = t.coerce_row(vec![Value::Int(0), Value::Float(1.0), Value::Float(0.0)]).unwrap();
        t.insert_rows(vec![row.clone()]).unwrap();
        let snap = t.snapshot();
        // The second insert extends the same (open) tail chunk: the table
        // must copy it rather than mutate what `snap` sees.
        t.insert_rows(vec![row]).unwrap();
        assert_eq!(snap.num_rows(), 1, "old snapshot unchanged");
        assert_eq!(snap.chunks()[0].rows(), 1);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.snapshot().num_rows(), 2);
    }

    #[test]
    fn snapshot_survives_delete_and_drop() {
        let mut t = state_table(MemoryBudget::unlimited());
        let rows: Vec<Row> = (0..4)
            .map(|s| vec![Value::Int(s), Value::Float(1.0), Value::Float(0.0)])
            .collect();
        t.insert_rows(rows).unwrap();
        let snap = t.snapshot();
        t.delete_where(|_| Ok(true)).unwrap();
        t.release_budget();
        assert_eq!(snap.num_rows(), 4, "snapshot pins the old chunks");
        assert_eq!(snap.to_rows()[3][0], Value::Int(3));
    }

    #[test]
    fn nulls_demote_fast_lane_per_chunk_only(){
        let mut t = state_table(MemoryBudget::unlimited());
        let mut rows: Vec<Row> = (0..CHUNK_ROWS as i64)
            .map(|s| vec![Value::Int(s), Value::Float(1.0), Value::Float(0.0)])
            .collect();
        rows.push(vec![Value::Null, Value::Float(1.0), Value::Float(0.0)]);
        t.insert_rows(rows).unwrap();
        let snap = t.snapshot();
        assert!(matches!(&*snap.chunks()[0].columns()[0], Column::Int(_)),
            "sealed chunk keeps its fast lane");
        assert!(matches!(&*snap.chunks()[1].columns()[0], Column::Generic(_)),
            "NULL demotes only the chunk that holds it");
        assert!(snap.chunks()[1].row(0)[0].is_null());
    }

    #[test]
    fn coercion_rules() {
        assert!(coerce(Value::Str("x".into()), DataType::Integer).is_err());
        assert_eq!(coerce(Value::Int(3), DataType::Double).unwrap(), Value::Float(3.0));
        assert!(coerce(Value::Float(1.5), DataType::Integer).is_err());
        assert!(matches!(coerce(Value::Int(3), DataType::HugeInt).unwrap(), Value::Big(_)));
        assert!(coerce(Value::Int(-3), DataType::HugeInt).is_err());
        assert!(coerce(Value::Null, DataType::Text).unwrap().is_null());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = state_table(MemoryBudget::unlimited());
        assert!(t.coerce_row(vec![Value::Int(0)]).is_err());
        // insert_rows itself also hard-errors (not just in debug builds).
        let mut t = state_table(MemoryBudget::unlimited());
        let too_wide = vec![Value::Int(0), Value::Float(0.0), Value::Float(0.0), Value::Int(9)];
        assert!(t.insert_rows(vec![too_wide]).is_err());
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn selective_delete_keeps_untouched_chunks_shared() {
        let mut t = state_table(MemoryBudget::unlimited());
        let rows: Vec<Row> = (0..(CHUNK_ROWS as i64 * 2))
            .map(|s| vec![Value::Int(s), Value::Float(1.0), Value::Float(0.0)])
            .collect();
        t.insert_rows(rows).unwrap();
        let before = t.snapshot();
        // Delete only from the second chunk; the first must carry over
        // without a re-pack (same column allocations).
        let n = t
            .delete_where(|r| Ok(matches!(r[0], Value::Int(v) if v >= CHUNK_ROWS as i64 + 10)))
            .unwrap();
        assert_eq!(n, CHUNK_ROWS - 10);
        let after = t.snapshot();
        assert!(Arc::ptr_eq(
            &before.chunks()[0].columns()[0],
            &after.chunks()[0].columns()[0]
        ));
        assert_eq!(after.chunks()[1].rows(), 10);
        assert_eq!(t.row_count(), CHUNK_ROWS + 10);
    }

    #[test]
    fn load_rows_coerces_atomically() {
        let budget = MemoryBudget::unlimited();
        let mut t = state_table(budget.clone());
        // Second row fails coercion: nothing may be inserted or charged.
        let bad = vec![
            vec![Value::Int(0), Value::Float(1.0), Value::Float(0.0)],
            vec![Value::Int(1), Value::Str("x".into()), Value::Float(0.0)],
        ];
        assert!(t.load_rows(bad).is_err());
        assert_eq!(t.row_count(), 0);
        assert_eq!(budget.used(), 0);
        let n = t
            .load_rows(vec![vec![Value::Int(0), Value::Int(2), Value::Float(0.0)]])
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.snapshot().to_rows()[0][1], Value::Float(2.0), "coerced to DOUBLE");
    }
}
