//! In-memory base tables.
//!
//! Row storage charges the shared [`MemoryBudget`], so base tables count
//! toward the out-of-core experiment's limit exactly like operator state.
//! Qymera's state tables (`T(s, r, i)`) and gate tables
//! (`G(in_s, out_s, r, i)`) both live here.

use std::sync::Arc;

use crate::ast::DataType;
use crate::error::{Error, Result};
use crate::schema::{Field, RelSchema};
use crate::storage::budget::MemoryBudget;
use crate::storage::spill::{row_bytes, Row};
use crate::value::Value;

/// A base table: declared columns plus row storage.
#[derive(Debug)]
pub struct Table {
    name: String,
    columns: Vec<(String, DataType)>,
    /// Rows are shared with scans via `Arc` snapshots for cheap re-reads.
    rows: Arc<Vec<Row>>,
    bytes: usize,
    budget: MemoryBudget,
}

impl Table {
    pub fn new(name: &str, columns: Vec<(String, DataType)>, budget: MemoryBudget) -> Self {
        Table {
            name: name.to_string(),
            columns,
            rows: Arc::new(Vec::new()),
            bytes: 0,
            budget,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn columns(&self) -> &[(String, DataType)] {
        &self.columns
    }

    /// Schema qualified by the table's own name.
    pub fn schema(&self) -> RelSchema {
        RelSchema::new(
            self.columns
                .iter()
                .map(|(n, t)| Field::typed(Some(&self.name), n, *t))
                .collect(),
        )
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Bytes this table holds against the budget.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Cheap snapshot for scans (copy-on-write with inserts).
    pub fn snapshot(&self) -> Arc<Vec<Row>> {
        Arc::clone(&self.rows)
    }

    /// Validate and coerce a row to the declared column types.
    pub fn coerce_row(&self, row: Vec<Value>) -> Result<Row> {
        if row.len() != self.columns.len() {
            return Err(Error::Plan(format!(
                "table `{}` expects {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        row.into_iter()
            .zip(self.columns.iter())
            .map(|(v, (cname, ty))| coerce(v, *ty).map_err(|e| match e {
                Error::Type(m) => Error::Type(format!("column `{cname}`: {m}")),
                other => other,
            }))
            .collect()
    }

    /// Append rows (already coerced), charging the memory budget.
    pub fn insert_rows(&mut self, rows: Vec<Row>) -> Result<()> {
        let added: usize = rows.iter().map(|r| row_bytes(r)).sum();
        if !self.budget.try_reserve(added) {
            return Err(Error::OutOfMemory {
                requested: added,
                budget: self.budget.limit(),
            });
        }
        let storage = Arc::make_mut(&mut self.rows);
        storage.extend(rows);
        self.bytes += added;
        Ok(())
    }

    /// Delete rows matching `pred`; returns the number removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> Result<bool>) -> Result<usize> {
        let storage = Arc::make_mut(&mut self.rows);
        let before = storage.len();
        let mut err = None;
        let mut freed = 0usize;
        storage.retain(|row| {
            if err.is_some() {
                return true;
            }
            match pred(row) {
                Ok(true) => {
                    freed += row_bytes(row);
                    false
                }
                Ok(false) => true,
                Err(e) => {
                    err = Some(e);
                    true
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        self.budget.release(freed);
        self.bytes -= freed;
        Ok(before - storage.len())
    }

    /// Release all budget held by this table (called when dropped from the
    /// catalog; `Drop` can't do it because snapshots may outlive the table).
    pub fn release_budget(&mut self) {
        self.budget.release(self.bytes);
        self.bytes = 0;
        self.rows = Arc::new(Vec::new());
    }
}

/// Coerce a value to a column type (lossless widenings only).
pub fn coerce(v: Value, ty: DataType) -> Result<Value> {
    match (ty, v) {
        (_, Value::Null) => Ok(Value::Null),
        (DataType::Integer, Value::Int(i)) => Ok(Value::Int(i)),
        (DataType::Integer, Value::Float(f)) if f.fract() == 0.0 && f.abs() < 9.2e18 => {
            Ok(Value::Int(f as i64))
        }
        (DataType::Integer, Value::Big(b)) => b
            .to_i64()
            .map(Value::Int)
            .ok_or_else(|| Error::Type("HUGEINT value does not fit INTEGER".into())),
        (DataType::HugeInt, Value::Int(i)) if i >= 0 => {
            Ok(Value::Big(crate::bigbits::BigBits::from_u64(i as u64, 64)))
        }
        (DataType::HugeInt, Value::Big(b)) => Ok(Value::Big(b)),
        (DataType::Double, Value::Float(f)) => Ok(Value::Float(f)),
        (DataType::Double, Value::Int(i)) => Ok(Value::Float(i as f64)),
        (DataType::Text, Value::Str(s)) => Ok(Value::Str(s)),
        (ty, v) => Err(Error::Type(format!("cannot store {} in {} column", v.type_name(), ty))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_table(budget: MemoryBudget) -> Table {
        Table::new(
            "T0",
            vec![
                ("s".into(), DataType::Integer),
                ("r".into(), DataType::Double),
                ("i".into(), DataType::Double),
            ],
            budget,
        )
    }

    #[test]
    fn insert_and_snapshot() {
        let mut t = state_table(MemoryBudget::unlimited());
        let row = t.coerce_row(vec![Value::Int(0), Value::Int(1), Value::Float(0.0)]).unwrap();
        // int 1 coerced to float for the DOUBLE column
        assert_eq!(row[1], Value::Float(1.0));
        t.insert_rows(vec![row]).unwrap();
        assert_eq!(t.row_count(), 1);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
    }

    #[test]
    fn budget_enforced_on_insert() {
        let budget = MemoryBudget::with_limit(64);
        let mut t = state_table(budget);
        let row = vec![Value::Int(0), Value::Float(1.0), Value::Float(0.0)];
        let e = t.insert_rows(vec![row.clone(), row]).unwrap_err();
        assert!(matches!(e, Error::OutOfMemory { .. }));
    }

    #[test]
    fn delete_releases_budget() {
        let budget = MemoryBudget::unlimited();
        let mut t = state_table(budget.clone());
        for s in 0..10 {
            let row = t.coerce_row(vec![Value::Int(s), Value::Float(1.0), Value::Float(0.0)])
                .unwrap();
            t.insert_rows(vec![row]).unwrap();
        }
        let used_before = budget.used();
        let n = t.delete_where(|r| Ok(matches!(r[0], Value::Int(v) if v < 5))).unwrap();
        assert_eq!(n, 5);
        assert!(budget.used() < used_before);
        assert_eq!(t.row_count(), 5);
    }

    #[test]
    fn snapshot_is_copy_on_write() {
        let mut t = state_table(MemoryBudget::unlimited());
        let row = t.coerce_row(vec![Value::Int(0), Value::Float(1.0), Value::Float(0.0)]).unwrap();
        t.insert_rows(vec![row.clone()]).unwrap();
        let snap = t.snapshot();
        t.insert_rows(vec![row]).unwrap();
        assert_eq!(snap.len(), 1, "old snapshot unchanged");
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn coercion_rules() {
        assert!(coerce(Value::Str("x".into()), DataType::Integer).is_err());
        assert_eq!(coerce(Value::Int(3), DataType::Double).unwrap(), Value::Float(3.0));
        assert!(coerce(Value::Float(1.5), DataType::Integer).is_err());
        assert!(matches!(coerce(Value::Int(3), DataType::HugeInt).unwrap(), Value::Big(_)));
        assert!(coerce(Value::Int(-3), DataType::HugeInt).is_err());
        assert!(coerce(Value::Null, DataType::Text).unwrap().is_null());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = state_table(MemoryBudget::unlimited());
        assert!(t.coerce_row(vec![Value::Int(0)]).is_err());
    }
}
