//! SQL tokenizer.
//!
//! Covers the dialect Qymera's translator emits (Fig. 2c of the paper) plus
//! enough general SQL for hand-written queries in tests and examples.
//! Notable inclusions: the bitwise operator set of Table 1 (`&`, `|`, `~`,
//! `<<`, `>>`), `0x…` hexadecimal literals (which become `HUGEINT` when they
//! exceed 63 bits), and `--`/`/* */` comments.

use crate::bigbits::BigBits;
use crate::error::{Error, Result};

/// A lexical token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

/// Token kinds. Keywords are lexed as `Ident` and matched case-insensitively
/// by the parser, which keeps the lexer keyword-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    /// Integer literal too large for `i64` (decimal or hex) — HUGEINT.
    BigInt(BigBits),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Amp,
    Pipe,
    Tilde,
    Caret,
    Shl,
    Shr,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Eof,
}

impl TokenKind {
    /// Human-readable rendering for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::BigInt(_) => "huge integer literal".to_string(),
            TokenKind::Float(f) => format!("float `{f}`"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Comma => ",",
            TokenKind::Dot => ".",
            TokenKind::Semicolon => ";",
            TokenKind::Star => "*",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Tilde => "~",
            TokenKind::Caret => "^",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::Eq => "=",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::LtEq => "<=",
            TokenKind::Gt => ">",
            TokenKind::GtEq => ">=",
            _ => "?",
        }
    }
}

/// Tokenize `sql` fully. Returns tokens terminated by `Eof`.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Error::lex(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(Error::lex(start, "unterminated string literal"));
                    }
                    if bytes[i] == b'\'' {
                        // '' is an escaped quote
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(Token { kind: TokenKind::Str(s), pos: start });
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    let hs = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hs {
                        return Err(Error::lex(start, "empty hex literal"));
                    }
                    let hex = &sql[hs..i];
                    let big = BigBits::from_hex(hex)
                        .ok_or_else(|| Error::lex(start, "invalid hex literal"))?;
                    match big.to_i64() {
                        Some(v) if hex.len() <= 15 => {
                            tokens.push(Token { kind: TokenKind::Int(v), pos: start })
                        }
                        _ => tokens.push(Token { kind: TokenKind::BigInt(big), pos: start }),
                    }
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let mut is_float = false;
                    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                        is_float = true;
                        i += 1;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                        let mut j = i + 1;
                        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                            j += 1;
                        }
                        if j < bytes.len() && bytes[j].is_ascii_digit() {
                            is_float = true;
                            i = j;
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                i += 1;
                            }
                        }
                    }
                    let text = &sql[start..i];
                    if is_float {
                        let f: f64 = text
                            .parse()
                            .map_err(|_| Error::lex(start, format!("invalid float `{text}`")))?;
                        tokens.push(Token { kind: TokenKind::Float(f), pos: start });
                    } else {
                        match text.parse::<i64>() {
                            Ok(v) => tokens.push(Token { kind: TokenKind::Int(v), pos: start }),
                            Err(_) => {
                                let big = BigBits::from_decimal(text).ok_or_else(|| {
                                    Error::lex(start, format!("invalid integer `{text}`"))
                                })?;
                                tokens.push(Token { kind: TokenKind::BigInt(big), pos: start });
                            }
                        }
                    }
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[start..i].to_string()),
                    pos: start,
                });
            }
            b'"' => {
                // quoted identifier
                let start = i;
                i += 1;
                let id_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(Error::lex(start, "unterminated quoted identifier"));
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[id_start..i].to_string()),
                    pos: start,
                });
                i += 1;
            }
            _ => {
                let start = i;
                let two = if i + 1 < bytes.len() { &sql[i..i + 2] } else { "" };
                let kind = match two {
                    "<<" => Some((TokenKind::Shl, 2)),
                    ">>" => Some((TokenKind::Shr, 2)),
                    "<=" => Some((TokenKind::LtEq, 2)),
                    ">=" => Some((TokenKind::GtEq, 2)),
                    "!=" | "<>" => Some((TokenKind::NotEq, 2)),
                    "==" => Some((TokenKind::Eq, 2)),
                    _ => None,
                };
                let (kind, adv) = match kind {
                    Some(k) => k,
                    None => {
                        let k = match c {
                            b'(' => TokenKind::LParen,
                            b')' => TokenKind::RParen,
                            b',' => TokenKind::Comma,
                            b'.' => TokenKind::Dot,
                            b';' => TokenKind::Semicolon,
                            b'*' => TokenKind::Star,
                            b'+' => TokenKind::Plus,
                            b'-' => TokenKind::Minus,
                            b'/' => TokenKind::Slash,
                            b'%' => TokenKind::Percent,
                            b'&' => TokenKind::Amp,
                            b'|' => TokenKind::Pipe,
                            b'~' => TokenKind::Tilde,
                            b'^' => TokenKind::Caret,
                            b'=' => TokenKind::Eq,
                            b'<' => TokenKind::Lt,
                            b'>' => TokenKind::Gt,
                            other => {
                                return Err(Error::lex(
                                    start,
                                    format!("unexpected character `{}`", other as char),
                                ))
                            }
                        };
                        (k, 1)
                    }
                };
                tokens.push(Token { kind, pos: start });
                i += adv;
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, pos: bytes.len() });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn bitwise_operators_of_table1() {
        let ks = kinds("a & b | ~c << 2 >> 1");
        assert!(ks.contains(&TokenKind::Amp));
        assert!(ks.contains(&TokenKind::Pipe));
        assert!(ks.contains(&TokenKind::Tilde));
        assert!(ks.contains(&TokenKind::Shl));
        assert!(ks.contains(&TokenKind::Shr));
    }

    #[test]
    fn numbers_int_float_exponent() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("1.5")[0], TokenKind::Float(1.5));
        assert_eq!(kinds("2e3")[0], TokenKind::Float(2000.0));
        assert_eq!(kinds("2.5E-1")[0], TokenKind::Float(0.25));
    }

    #[test]
    fn oversized_decimal_becomes_bigint() {
        let ks = kinds("99999999999999999999999999");
        match &ks[0] {
            TokenKind::BigInt(b) => assert_eq!(b.to_decimal(), "99999999999999999999999999"),
            other => panic!("expected BigInt, got {other:?}"),
        }
    }

    #[test]
    fn hex_literals() {
        assert_eq!(kinds("0xff")[0], TokenKind::Int(255));
        match &kinds("0xffffffffffffffffff")[0] {
            TokenKind::BigInt(b) => assert_eq!(b.bit_len(), 72),
            other => panic!("expected BigInt, got {other:?}"),
        }
    }

    #[test]
    fn strings_with_escapes_and_comments() {
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        let ks = kinds("SELECT -- trailing comment\n 1 /* block */ , 2");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let ks = kinds("a <= b >= c <> d != e == f");
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::NotEq).count(), 2);
        assert!(ks.contains(&TokenKind::LtEq));
        assert!(ks.contains(&TokenKind::GtEq));
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(kinds("\"weird name\"")[0], TokenKind::Ident("weird name".into()));
    }

    #[test]
    fn errors_carry_position() {
        match tokenize("SELECT 'oops") {
            Err(Error::Lex { pos, .. }) => assert_eq!(pos, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("/* never closed").is_err());
    }

    #[test]
    fn fig2_query_fragment_tokenizes() {
        // Straight from Fig. 2c of the paper.
        let sql = "SELECT ((T0.s & ~1) | H.out_s) AS s FROM T0 JOIN H ON H.in_s = (T0.s & 1)";
        let ks = kinds(sql);
        assert!(ks.len() > 20);
        assert!(ks.contains(&TokenKind::Tilde));
    }
}
