//! External merge sort.
//!
//! `ORDER BY s` closes every Qymera query (the final state is rendered in
//! basis-state order), so sorting must also work when the state exceeds the
//! memory budget: rows accumulate until the reservation is exhausted, each
//! full buffer is sorted and written out as a run, and the runs are merged
//! with a k-way heap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::error::Result;
use crate::plan::logical::SortKey;
use crate::storage::budget::Reservation;
use crate::storage::spill::{row_bytes, Row, SpillReader, SpillWriter};
use crate::value::Value;

use super::{eval_values, ExecContext, RowStream};

/// Compare two key tuples under per-key ASC/DESC flags (shared with the
/// vectorized sort in [`super::vsort`], whose run-merge phase must order
/// spilled records exactly like this row-path sort does).
pub(crate) fn cmp_keys(a: &[Value], b: &[Value], desc: &[bool]) -> Ordering {
    for ((x, y), d) in a.iter().zip(b.iter()).zip(desc.iter()) {
        let ord = x.cmp_total(y);
        let ord = if *d { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// (key values, payload row) — the unit sorted and spilled.
type Keyed = (Vec<Value>, Row);

/// The row-path external merge sort operator (reference implementation; the
/// batch pipeline sorts with [`super::vsort::BatchSort`]).
pub struct ExternalSort {
    input: Option<Box<dyn RowStream>>,
    keys: Vec<SortKey>,
    desc: Rc<Vec<bool>>,
    ctx: ExecContext,
    reservation: Reservation,
    state: State,
}

enum State {
    Pending,
    /// Everything fit in memory.
    Mem(std::vec::IntoIter<Keyed>),
    /// Merging spilled runs (the in-memory residue was spilled as a run too).
    Merge(MergeState),
    Done,
}

struct MergeState {
    runs: Vec<SpillReader>,
    heap: BinaryHeap<HeapEntry>,
    key_len: usize,
}

struct HeapEntry {
    key: Vec<Value>,
    row: Row,
    src: usize,
    desc: Rc<Vec<bool>>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        cmp_keys(&self.key, &other.key, &self.desc) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for ascending merge output.
        cmp_keys(&self.key, &other.key, &self.desc).reverse()
    }
}

impl ExternalSort {
    /// Sort `input` by `keys`, spilling runs when the budget is exceeded.
    pub fn new(input: Box<dyn RowStream>, keys: Vec<SortKey>, ctx: ExecContext) -> Self {
        let desc = Rc::new(keys.iter().map(|k| k.desc).collect::<Vec<_>>());
        let reservation = Reservation::empty(&ctx.budget);
        ExternalSort { input: Some(input), keys, desc, ctx, reservation, state: State::Pending }
    }

    fn sort_buffer(&self, buf: &mut [Keyed]) {
        let desc = Rc::clone(&self.desc);
        buf.sort_unstable_by(|(ka, _), (kb, _)| cmp_keys(ka, kb, &desc));
    }

    fn spill_run(&mut self, buf: &mut Vec<Keyed>) -> Result<SpillReader> {
        self.sort_buffer(buf);
        let mut w = SpillWriter::create(&self.ctx.spill)?;
        for (key, row) in buf.drain(..) {
            let mut record = key;
            record.extend(row);
            w.write_row(&record)?;
        }
        self.reservation.free();
        w.into_reader()
    }

    fn run(&mut self) -> Result<()> {
        let mut input = self.input.take().expect("sort executed twice");
        let mut buf: Vec<Keyed> = Vec::new();
        let mut runs: Vec<SpillReader> = Vec::new();

        // When the shared budget is exhausted by upstream operators, this
        // sort may still buffer a small bounded working set uncharged so the
        // pipeline keeps making progress (rows in flight between operators
        // are uncharged anyway; this extends that allowance to a batch).
        const OVERDRAFT_ROWS: usize = 128;
        let mut uncharged_rows = 0usize;

        let key_exprs: Vec<_> = self.keys.iter().map(|k| k.expr.clone()).collect();
        while let Some(row) = input.next_row()? {
            let key = eval_values(&key_exprs, &row)?;
            let bytes = row_bytes(&row) + row_bytes(&key) + 24;
            if !self.reservation.try_grow(bytes) {
                if buf.len() >= OVERDRAFT_ROWS.max(1) {
                    let run = self.spill_run(&mut buf)?;
                    runs.push(run);
                    uncharged_rows = 0;
                }
                if !self.reservation.try_grow(bytes) {
                    uncharged_rows += 1;
                    if uncharged_rows > OVERDRAFT_ROWS {
                        // Spill the overdraft batch rather than erroring.
                        let run = self.spill_run(&mut buf)?;
                        runs.push(run);
                        uncharged_rows = 0;
                    }
                }
            }
            buf.push((key, row));
        }

        if runs.is_empty() {
            self.sort_buffer(&mut buf);
            self.state = State::Mem(buf.into_iter());
            return Ok(());
        }

        // Spill the residue so the merge phase is uniform.
        if !buf.is_empty() {
            let run = self.spill_run(&mut buf)?;
            runs.push(run);
        }

        let key_len = self.keys.len();
        let mut heap = BinaryHeap::with_capacity(runs.len());
        for (i, run) in runs.iter_mut().enumerate() {
            if let Some(mut record) = run.next_row()? {
                let row = record.split_off(key_len);
                heap.push(HeapEntry { key: record, row, src: i, desc: Rc::clone(&self.desc) });
            }
        }
        self.state = State::Merge(MergeState { runs, heap, key_len });
        Ok(())
    }
}

impl RowStream for ExternalSort {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            match &mut self.state {
                State::Pending => self.run()?,
                State::Mem(iter) => match iter.next() {
                    Some((_, row)) => return Ok(Some(row)),
                    None => {
                        self.reservation.free();
                        self.state = State::Done;
                    }
                },
                State::Merge(m) => {
                    let Some(entry) = m.heap.pop() else {
                        self.state = State::Done;
                        continue;
                    };
                    // Refill from the run the popped row came from.
                    if let Some(mut record) = m.runs[entry.src].next_row()? {
                        let row = record.split_off(m.key_len);
                        m.heap.push(HeapEntry {
                            key: record,
                            row,
                            src: entry.src,
                            desc: Rc::clone(&self.desc),
                        });
                    }
                    return Ok(Some(entry.row));
                }
                State::Done => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;
    use crate::expr::BoundExpr;

    fn sort_keys(desc: bool) -> Vec<SortKey> {
        vec![SortKey { expr: BoundExpr::Column(0), desc }]
    }

    fn run_sort(rows: Vec<Row>, keys: Vec<SortKey>, ctx: ExecContext) -> Vec<Row> {
        drain(Box::new(ExternalSort::new(stream_of(rows), keys, ctx))).unwrap()
    }

    #[test]
    fn in_memory_ascending_and_descending() {
        let rows = int_rows(&[3, 1, 2]);
        let out = run_sort(rows.clone(), sort_keys(false), ctx());
        assert_eq!(out, int_rows(&[1, 2, 3]));
        let out = run_sort(rows, sort_keys(true), ctx());
        assert_eq!(out, int_rows(&[3, 2, 1]));
    }

    #[test]
    fn multi_key_sort() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(9)],
            vec![Value::Int(0), Value::Int(5)],
            vec![Value::Int(1), Value::Int(2)],
        ];
        let keys = vec![
            SortKey { expr: BoundExpr::Column(0), desc: false },
            SortKey { expr: BoundExpr::Column(1), desc: true },
        ];
        let out = run_sort(rows, keys, ctx());
        assert_eq!(out[0], vec![Value::Int(0), Value::Int(5)]);
        assert_eq!(out[1], vec![Value::Int(1), Value::Int(9)]);
        assert_eq!(out[2], vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn nulls_sort_first() {
        let rows = vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(0)]];
        let out = run_sort(rows, sort_keys(false), ctx());
        assert!(out[0][0].is_null());
    }

    #[test]
    fn external_sort_matches_in_memory() {
        // Pseudo-random but deterministic order.
        let vals: Vec<i64> = (0..20_000).map(|i| (i * 48_271) % 65_537).collect();
        let rows = int_rows(&vals);
        let tight = ctx_with_budget(64 * 1024);
        let spill = tight.spill.clone();
        let external = run_sort(rows.clone(), sort_keys(false), tight);
        assert!(spill.files_created() > 1, "expected multiple runs");
        let in_mem = run_sort(rows, sort_keys(false), ctx());
        assert_eq!(external, in_mem);
        let mut expected = vals.clone();
        expected.sort_unstable();
        assert_eq!(external, int_rows(&expected));
    }

    #[test]
    fn tiny_budget_still_sorts_via_overdraft() {
        // Even a budget below one row must not deadlock the pipeline: the
        // sort runs with its bounded uncharged working set and stays correct.
        let vals: Vec<i64> = (0..500).map(|i| (i * 7919) % 1000).collect();
        let out = run_sort(int_rows(&vals), sort_keys(false), ctx_with_budget(10));
        let mut expected = vals.clone();
        expected.sort_unstable();
        assert_eq!(out, int_rows(&expected));
    }

    #[test]
    fn empty_input() {
        let out = run_sort(vec![], sort_keys(false), ctx());
        assert!(out.is_empty());
    }
}
