//! Vectorized sorting for the batch pipeline.
//!
//! `ORDER BY s` closes every Qymera query (states render in basis-state
//! order), so the sort is the last operator every result crosses — and it
//! was the last one still running a row implementation behind adapter shims.
//! [`BatchSort`] closes that gap:
//!
//! * **Columnar sort keys.** Key expressions evaluate per input batch with
//!   the [`BoundExpr::eval_batch`] kernels, and the comparator reads typed
//!   `i64`/`f64` fast lanes whenever every buffered batch carries a key in
//!   the same null-free lane — no per-comparison [`Value`] materialization
//!   on the hot path. Mixed/NULL/text keys fall back to
//!   [`Value::cmp_total`], bit-identical to the row sort's ordering.
//! * **Stable multi-key order.** The in-memory sort is a stable index sort,
//!   and every spilled record carries its global input ordinal, so ties
//!   always resolve to input order — sequential and parallel runs produce
//!   the same byte-for-byte output.
//! * **Spill-to-run merge.** Buffered batches charge the shared
//!   [`MemoryBudget`](crate::storage::budget::MemoryBudget) through an RAII
//!   [`Reservation`]; when the reservation cannot grow, the buffer is sorted
//!   and written out as a run (`[keys…, ordinal, row…]` records in the
//!   standard spill format), and runs merge through a k-way heap.
//! * **Top-k.** `ORDER BY … LIMIT k` (small k, pushed down by the planner)
//!   keeps a bounded k-row heap instead of buffering the input — the
//!   measurement queries' "most probable states first, LIMIT k" shape never
//!   materializes the full state.
//! * **Morsel parallelism.** When the input is a parallelizable segment
//!   (see [`super::parallel`]), workers sort their statically-strided
//!   morsels into per-worker runs (spilling privately under pressure) and
//!   the coordinator merges the runs at the breaker; the ordinal tie-break
//!   makes the merged output identical to the sequential sort's.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::expr::BoundExpr;
use crate::plan::logical::{Plan, SortKey};
use crate::storage::budget::Reservation;
use crate::storage::spill::{row_bytes, Row, SpillReader, SpillWriter};
use crate::value::Value;

use super::batch::{Column, ColumnRef, RowBatch, BATCH_SIZE};
use super::parallel::{self, Segment};
use super::sort::cmp_keys;
use super::vector::{build_batch_stream_at, BatchStream};
use super::{set_node_label, ExecContext};

/// Largest `LIMIT + OFFSET` the planner turns into a top-k heap. Beyond
/// this the full sort (with spilling) is the better strategy anyway, and
/// the bound keeps the heap's working set small enough that the best-effort
/// budget charge cannot meaningfully overshoot.
pub(crate) const TOPK_MAX_ROWS: usize = 8192;

/// Rows a worker buffers at minimum before budget pressure forces a spill
/// run (the sort's bounded uncharged working-set floor, matching the row
/// sort's overdraft policy at batch granularity).
const MIN_RUN_ROWS: usize = BATCH_SIZE;

/// Build the vectorized sort stream for a `Plan::Sort` node whose
/// instrumentation slot the caller already registered. `topk` is
/// `Some(limit + offset)` when the planner pushed a small `LIMIT` down into
/// the sort. Parallel-eligible inputs run morsel-parallel with per-worker
/// sort runs merged at the breaker.
pub(crate) fn build_sort_stream(
    input: &Plan,
    keys: &[SortKey],
    topk: Option<usize>,
    catalog: &Catalog,
    ctx: &ExecContext,
    depth: usize,
    slot: Option<usize>,
) -> Result<Box<dyn BatchStream>> {
    let label = match topk {
        Some(k) => format!("TopKSort [{} keys, k={k}]", keys.len()),
        None => format!("BatchSort [{} keys]", keys.len()),
    };
    set_node_label(ctx, slot, label);
    if parallel::parallel_eligible(input, catalog, ctx) {
        let segment = parallel::descend_segment(input, catalog, ctx, depth)?;
        let workers = ctx.parallelism.min(segment.num_morsels());
        parallel::note_parallel(ctx, slot, workers, segment.num_morsels());
        return Ok(Box::new(BatchSort::new_parallel(
            segment,
            keys.to_vec(),
            topk,
            ctx.clone(),
        )));
    }
    let child = build_batch_stream_at(input, catalog, ctx, depth + 1)?;
    Ok(Box::new(BatchSort::new(child, keys.to_vec(), topk, ctx.clone())))
}

// ---------------------------------------------------------------------------
// Keyed rows, run sources, and comparators
// ---------------------------------------------------------------------------

/// One row in sort-merge form: its evaluated key tuple, its global input
/// ordinal (the stable tie-break), and the payload row.
pub(crate) type KeyedRow = (Vec<Value>, u64, Row);

/// One worker's partial sort result: its sorted in-memory residue, any
/// spill runs it wrote under budget pressure, and the reservation charging
/// the residue (adopted by the coordinator at the merge).
pub(crate) struct WorkerSort {
    pub(crate) mem: Vec<KeyedRow>,
    pub(crate) runs: Vec<SpillReader>,
    pub(crate) reservation: Reservation,
}

/// A sorted stream of [`KeyedRow`]s feeding the k-way merge: either an
/// in-memory run (a worker's residue or a top-k result) or a spilled run.
enum RunSource {
    Mem(std::vec::IntoIter<KeyedRow>),
    Spill(SpillReader),
}

impl RunSource {
    fn next(&mut self, key_len: usize) -> Result<Option<KeyedRow>> {
        match self {
            RunSource::Mem(iter) => Ok(iter.next()),
            RunSource::Spill(reader) => match reader.next_row()? {
                Some(mut record) => {
                    // A spilled record is `key ++ [ordinal] ++ row`; a shorter
                    // record means the spill file was corrupted on disk.
                    if record.len() <= key_len {
                        return Err(Error::Internal(
                            "spilled sort record shorter than its key".into(),
                        ));
                    }
                    let row = record.split_off(key_len + 1);
                    let ord = match record.pop() {
                        Some(v) => v.as_i64()? as u64,
                        None => {
                            return Err(Error::Internal(
                                "spilled sort record missing its ordinal".into(),
                            ))
                        }
                    };
                    Ok(Some((record, ord, row)))
                }
                None => Ok(None),
            },
        }
    }
}

/// Per-key comparator lane across all buffered batches: typed when every
/// batch carries the key in the same null-free fast lane.
#[derive(Clone, Copy, PartialEq)]
enum KeyLane {
    Int,
    Float,
    Generic,
}

/// The buffered consume-phase state: input batches plus their evaluated key
/// columns, kept columnar so the comparator can read primitive slices.
struct SortBuffer {
    batches: Vec<RowBatch>,
    /// `keys[batch][key]` — evaluated key columns, aligned with `batches`.
    keys: Vec<Vec<ColumnRef>>,
    rows: usize,
}

impl SortBuffer {
    fn new() -> Self {
        SortBuffer { batches: Vec::new(), keys: Vec::new(), rows: 0 }
    }

    fn push(&mut self, batch: RowBatch, key_cols: Vec<ColumnRef>) {
        self.rows += batch.num_rows();
        self.batches.push(batch);
        self.keys.push(key_cols);
    }

    fn clear(&mut self) {
        self.batches.clear();
        self.keys.clear();
        self.rows = 0;
    }

    /// Global ordinal of each batch's first row (prefix sums of batch sizes).
    fn prefix_rows(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.batches
            .iter()
            .map(|b| {
                let start = acc;
                acc += b.num_rows() as u64;
                start
            })
            .collect()
    }

    /// Detect the comparator lane of key `j` across every buffered batch.
    fn lane_of(&self, j: usize) -> KeyLane {
        let mut lane: Option<KeyLane> = None;
        for cols in &self.keys {
            let this = match &*cols[j] {
                Column::Int(_) => KeyLane::Int,
                Column::Float(_) => KeyLane::Float,
                Column::Generic(_) => KeyLane::Generic,
            };
            match lane {
                None => lane = Some(this),
                Some(l) if l == this => {}
                Some(_) => return KeyLane::Generic,
            }
        }
        lane.unwrap_or(KeyLane::Generic)
    }

    /// Compare rows `a` and `b` (as `(batch, row)` pairs) under the per-key
    /// lanes and ASC/DESC flags. Typed lanes compare primitives directly;
    /// the generic lane matches [`Value::cmp_total`], so ordering is
    /// bit-identical to the row path's for every value class.
    fn cmp_at(&self, lanes: &[KeyLane], desc: &[bool], a: (u32, u32), b: (u32, u32)) -> Ordering {
        for (j, (&lane, &d)) in lanes.iter().zip(desc).enumerate() {
            let (ka, kb) = (&self.keys[a.0 as usize][j], &self.keys[b.0 as usize][j]);
            let ord = match lane {
                KeyLane::Int => {
                    let (Column::Int(va), Column::Int(vb)) = (&**ka, &**kb) else {
                        unreachable!("lane detection checked Int")
                    };
                    va[a.1 as usize].cmp(&vb[b.1 as usize])
                }
                KeyLane::Float => {
                    let (Column::Float(va), Column::Float(vb)) = (&**ka, &**kb) else {
                        unreachable!("lane detection checked Float")
                    };
                    va[a.1 as usize]
                        .partial_cmp(&vb[b.1 as usize])
                        .unwrap_or(Ordering::Equal)
                }
                KeyLane::Generic => {
                    ka.value_at(a.1 as usize).cmp_total(&kb.value_at(b.1 as usize))
                }
            };
            let ord = if d { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Stable sort of all buffered rows: `(batch, row)` indices in sort
    /// order, ties resolved to input order by the stable sort.
    fn sorted_indices(&self, desc: &[bool]) -> Vec<(u32, u32)> {
        let lanes: Vec<KeyLane> = (0..desc.len()).map(|j| self.lane_of(j)).collect();
        let mut order: Vec<(u32, u32)> = Vec::with_capacity(self.rows);
        for (b, batch) in self.batches.iter().enumerate() {
            for r in 0..batch.num_rows() {
                order.push((b as u32, r as u32));
            }
        }
        order.sort_by(|&a, &b| self.cmp_at(&lanes, desc, a, b));
        order
    }
}

/// Gather column `c` of the buffered batches at the (batch, row) positions
/// in `idx` — the cross-batch dual of [`Column::gather`], keeping the typed
/// lane when every source batch carries it (the sorted-output hot path
/// never boxes a [`Value`] then).
fn gather_column(batches: &[RowBatch], c: usize, idx: &[(u32, u32)]) -> Column {
    let (mut all_int, mut all_float) = (true, true);
    for b in batches {
        match b.column(c) {
            Column::Int(_) => all_float = false,
            Column::Float(_) => all_int = false,
            Column::Generic(_) => {
                all_int = false;
                all_float = false;
            }
        }
    }
    if all_int {
        return Column::Int(
            idx.iter()
                .map(|&(b, r)| {
                    let Column::Int(v) = batches[b as usize].column(c) else {
                        unreachable!("checked Int lane")
                    };
                    v[r as usize]
                })
                .collect(),
        );
    }
    if all_float {
        return Column::Float(
            idx.iter()
                .map(|&(b, r)| {
                    let Column::Float(v) = batches[b as usize].column(c) else {
                        unreachable!("checked Float lane")
                    };
                    v[r as usize]
                })
                .collect(),
        );
    }
    Column::Generic(
        idx.iter().map(|&(b, r)| batches[b as usize].column(c).value_at(r as usize)).collect(),
    )
}

/// Entry of the k-way run merge (min-heap via reversed `Ord`).
struct MergeEntry {
    key: Vec<Value>,
    ord: u64,
    row: Row,
    src: usize,
    desc: Arc<Vec<bool>>,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for MergeEntry {}

impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for ascending merge output. The
        // ordinal tie-break reproduces the stable in-memory order exactly.
        cmp_keys(&self.key, &other.key, &self.desc)
            .then(self.ord.cmp(&other.ord))
            .reverse()
    }
}

/// Entry of the bounded top-k heap (max-heap: the worst retained row on top).
struct TopEntry {
    key: Vec<Value>,
    ord: u64,
    row: Row,
    bytes: usize,
    desc: Arc<Vec<bool>>,
}

impl PartialEq for TopEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for TopEntry {}

impl PartialOrd for TopEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TopEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_keys(&self.key, &other.key, &self.desc).then(self.ord.cmp(&other.ord))
    }
}

/// Offer one row to a bounded top-k heap, evicting the worst retained entry
/// when full. The reservation charge is best-effort (bounded by `k` rows).
fn offer_topk(
    heap: &mut BinaryHeap<TopEntry>,
    k: usize,
    key: Vec<Value>,
    ord: u64,
    row: impl FnOnce() -> Row,
    desc: &Arc<Vec<bool>>,
    reservation: &mut Reservation,
) {
    if heap.len() == k {
        // Reject without materializing the row when it cannot beat the
        // current worst (the common case on mostly-sorted input).
        // SAFETY of expect: `heap.len() == k` and `k >= 1` (LIMIT 0 returns
        // before building a heap), so peek/pop cannot observe an empty heap.
        let worst = heap.peek().expect("heap is full");
        if cmp_keys(&key, &worst.key, desc).then(ord.cmp(&worst.ord)) != Ordering::Less {
            return;
        }
        let evicted = heap.pop().expect("heap is full");
        reservation.shrink(evicted.bytes);
    }
    let row = row();
    let bytes = row_bytes(&row) + row_bytes(&key) + 48;
    let _ = reservation.try_grow(bytes); // best-effort, bounded by k
    heap.push(TopEntry { key, ord, row, bytes, desc: Arc::clone(desc) });
}

// ---------------------------------------------------------------------------
// Morsel-parallel sort workers
// ---------------------------------------------------------------------------

/// Per-worker consume state for the morsel-parallel sort (driven by
/// [`parallel::run_sort_workers`]). Each worker evaluates sort keys with
/// the batch kernels over its strided morsels, tags every row with a global
/// ordinal (`morsel << 32 | position`, so merged ties still resolve to
/// sequential input order), and either accumulates a buffer that spills
/// sorted runs under budget pressure, or keeps a bounded top-k heap.
pub(crate) struct SortWorker {
    key_exprs: Vec<BoundExpr>,
    desc: Arc<Vec<bool>>,
    topk: Option<usize>,
    spill: Arc<crate::storage::spill::SpillDir>,
    mem: Vec<KeyedRow>,
    heap: BinaryHeap<TopEntry>,
    runs: Vec<SpillReader>,
    reservation: Reservation,
    /// Per-spill-run cancellation checks (the governance token is `Sync`,
    /// unlike the full context).
    query: super::govern::QueryContext,
    /// Next ordinal to assign (advanced per row, rebased per morsel).
    ord: u64,
}

impl SortWorker {
    /// A fresh worker charging `budget` and spilling into `spill` (passed
    /// individually because workers run on threads and the full
    /// [`ExecContext`] is not `Sync`).
    pub(crate) fn new(
        keys: &[SortKey],
        desc: &Arc<Vec<bool>>,
        topk: Option<usize>,
        budget: &crate::storage::budget::MemoryBudget,
        spill: &Arc<crate::storage::spill::SpillDir>,
        query: &super::govern::QueryContext,
    ) -> Self {
        SortWorker {
            key_exprs: keys.iter().map(|k| k.expr.clone()).collect(),
            desc: Arc::clone(desc),
            topk,
            spill: Arc::clone(spill),
            mem: Vec::new(),
            heap: BinaryHeap::new(),
            runs: Vec::new(),
            reservation: Reservation::empty(budget),
            query: query.clone(),
            ord: 0,
        }
    }

    /// Rebase ordinals for morsel `i` (call before its first batch). The
    /// 32-bit intra-morsel field is far beyond any reachable per-morsel
    /// output: segment admission caps the cumulative join fan-out at 64×
    /// a 1024-row chunk (see `MAX_PARALLEL_FANOUT`), i.e. 2^16 rows.
    pub(crate) fn begin_morsel(&mut self, morsel: usize) {
        self.ord = (morsel as u64) << 32;
    }

    /// Consume one batch a morsel produced: evaluate keys vectorized, then
    /// fold every row into the buffer or the top-k heap.
    pub(crate) fn consume_batch(&mut self, batch: &RowBatch) -> Result<()> {
        let key_cols: Vec<ColumnRef> = self
            .key_exprs
            .iter()
            .map(|e| e.eval_batch(batch))
            .collect::<Result<Vec<_>>>()?;
        for r in 0..batch.num_rows() {
            let key: Vec<Value> = key_cols.iter().map(|c| c.value_at(r)).collect();
            let ord = self.ord;
            self.ord += 1;
            match self.topk {
                Some(k) => {
                    offer_topk(
                        &mut self.heap,
                        k,
                        key,
                        ord,
                        || batch.row(r),
                        &self.desc,
                        &mut self.reservation,
                    );
                }
                None => {
                    let row = batch.row(r);
                    let bytes = row_bytes(&row) + row_bytes(&key) + 32;
                    if !self.reservation.try_grow(bytes) && self.mem.len() >= MIN_RUN_ROWS {
                        self.spill_worker_run()?;
                    }
                    self.mem.push((key, ord, row));
                }
            }
        }
        Ok(())
    }

    /// Sort the buffer by `(key, ordinal)` and write it out as one run.
    fn spill_worker_run(&mut self) -> Result<()> {
        // Cancel is observed before the run is sorted and written — a
        // cancelled worker never pays for (or leaks) a doomed spill file.
        self.query.check()?;
        let desc = Arc::clone(&self.desc);
        self.mem
            .sort_unstable_by(|a, b| cmp_keys(&a.0, &b.0, &desc).then(a.1.cmp(&b.1)));
        let mut w = SpillWriter::create(&self.spill)?;
        for (key, ord, row) in self.mem.drain(..) {
            let mut record = key;
            record.push(Value::Int(ord as i64));
            record.extend(row);
            w.write_row(&record)?;
        }
        self.reservation.free();
        self.runs.push(w.into_reader()?);
        Ok(())
    }

    /// Seal the worker: the residue (or the top-k result) sorted by
    /// `(key, ordinal)`, ready for the coordinator's k-way merge.
    pub(crate) fn finish(mut self) -> WorkerSort {
        let desc = Arc::clone(&self.desc);
        if self.topk.is_some() {
            self.mem = self
                .heap
                .into_sorted_vec()
                .into_iter()
                .map(|e| (e.key, e.ord, e.row))
                .collect();
        } else {
            self.mem
                .sort_unstable_by(|a, b| cmp_keys(&a.0, &b.0, &desc).then(a.1.cmp(&b.1)));
        }
        WorkerSort { mem: self.mem, runs: self.runs, reservation: self.reservation }
    }
}

// ---------------------------------------------------------------------------
// The operator
// ---------------------------------------------------------------------------

/// The vectorized sort operator (see the module docs for the design).
pub struct BatchSort {
    input: SortInput,
    keys: Vec<SortKey>,
    desc: Arc<Vec<bool>>,
    /// `Some(k)`: retain only the first `k` rows of the sorted order.
    topk: Option<usize>,
    ctx: ExecContext,
    reservation: Reservation,
    state: SortState,
}

enum SortInput {
    Stream(Box<dyn BatchStream>),
    Parallel(Segment),
    Consumed,
}

enum SortState {
    Pending,
    /// Everything fit in memory: buffered batches plus the sorted order.
    Mem { buffer: SortBuffer, order: Vec<(u32, u32)>, pos: usize },
    /// Merging sorted runs (worker residues and spilled runs alike).
    Merge { sources: Vec<RunSource>, heap: BinaryHeap<MergeEntry> },
    /// A fully materialized sorted prefix (the top-k result).
    Rows { rows: std::vec::IntoIter<Row> },
    Done,
}

impl BatchSort {
    /// Sort `input` by `keys`; `topk` caps the retained rows (planner-pushed
    /// `LIMIT + OFFSET`).
    pub fn new(
        input: Box<dyn BatchStream>,
        keys: Vec<SortKey>,
        topk: Option<usize>,
        ctx: ExecContext,
    ) -> Self {
        Self::with_input(SortInput::Stream(input), keys, topk, ctx)
    }

    /// Sort a morsel-parallel segment (per-worker runs merged here).
    pub(crate) fn new_parallel(
        segment: Segment,
        keys: Vec<SortKey>,
        topk: Option<usize>,
        ctx: ExecContext,
    ) -> Self {
        Self::with_input(SortInput::Parallel(segment), keys, topk, ctx)
    }

    fn with_input(
        input: SortInput,
        keys: Vec<SortKey>,
        topk: Option<usize>,
        ctx: ExecContext,
    ) -> Self {
        let desc = Arc::new(keys.iter().map(|k| k.desc).collect::<Vec<_>>());
        let reservation = Reservation::empty(&ctx.budget);
        BatchSort { input, keys, desc, topk, ctx, reservation, state: SortState::Pending }
    }

    fn consume(&mut self) -> Result<()> {
        match std::mem::replace(&mut self.input, SortInput::Consumed) {
            SortInput::Stream(s) => match self.topk {
                Some(k) => self.consume_topk_stream(s, k),
                None => self.consume_stream(s),
            },
            SortInput::Parallel(segment) => self.consume_parallel(segment),
            SortInput::Consumed => unreachable!("sort executed twice"),
        }
    }

    /// Full-sort consume: buffer batches columnar, spilling sorted runs when
    /// the reservation cannot grow. The batch whose charge fails is still
    /// buffered before the spill (a bounded one-batch overdraft), so a
    /// budget below one batch cannot wedge the pipeline.
    fn consume_stream(&mut self, mut input: Box<dyn BatchStream>) -> Result<()> {
        let key_exprs: Vec<BoundExpr> = self.keys.iter().map(|k| k.expr.clone()).collect();
        let mut buffer = SortBuffer::new();
        let mut runs: Vec<RunSource> = Vec::new();
        let mut base_ord = 0u64;

        while let Some(batch) = input.next_batch()? {
            let key_cols: Vec<ColumnRef> = key_exprs
                .iter()
                .map(|e| e.eval_batch(&batch))
                .collect::<Result<Vec<_>>>()?;
            let bytes = batch.columns().iter().map(|c| c.heap_bytes()).sum::<usize>()
                + key_cols.iter().map(|c| c.heap_bytes()).sum::<usize>();
            // A single batch bigger than the whole query grant can never be
            // buffered or spilled piecemeal — reject it at admission instead
            // of spinning through doomed spill runs.
            self.ctx.query.admit(bytes)?;
            let fits = self.reservation.try_grow(bytes);
            buffer.push(batch, key_cols);
            if !fits && buffer.rows >= MIN_RUN_ROWS {
                let spilled = buffer.rows as u64;
                runs.push(RunSource::Spill(self.spill_run(&mut buffer, base_ord)?));
                base_ord += spilled;
            }
        }

        if runs.is_empty() {
            let order = buffer.sorted_indices(&self.desc);
            self.state = SortState::Mem { buffer, order, pos: 0 };
            return Ok(());
        }
        // Spill the residue so the merge phase is uniform.
        if buffer.rows > 0 {
            runs.push(RunSource::Spill(self.spill_run(&mut buffer, base_ord)?));
        }
        self.start_merge(runs)
    }

    /// Top-k consume: a bounded max-heap of the best `k` rows. Memory is
    /// bounded by `k` rows ([`TOPK_MAX_ROWS`] at most); the reservation
    /// charge is best-effort — when the shared budget is exhausted the heap
    /// keeps its bounded working set uncharged rather than failing, exactly
    /// like the row sort's overdraft floor.
    fn consume_topk_stream(&mut self, mut input: Box<dyn BatchStream>, k: usize) -> Result<()> {
        let key_exprs: Vec<BoundExpr> = self.keys.iter().map(|k| k.expr.clone()).collect();
        let mut heap: BinaryHeap<TopEntry> = BinaryHeap::with_capacity(k + 1);
        let mut ord = 0u64;
        while let Some(batch) = input.next_batch()? {
            let key_cols: Vec<ColumnRef> = key_exprs
                .iter()
                .map(|e| e.eval_batch(&batch))
                .collect::<Result<Vec<_>>>()?;
            for i in 0..batch.num_rows() {
                let key: Vec<Value> = key_cols.iter().map(|c| c.value_at(i)).collect();
                offer_topk(&mut heap, k, key, ord, || batch.row(i), &self.desc, &mut self.reservation);
                ord += 1;
            }
        }
        self.finish_topk(heap);
        Ok(())
    }

    fn finish_topk(&mut self, heap: BinaryHeap<TopEntry>) {
        let rows: Vec<Row> = heap.into_sorted_vec().into_iter().map(|e| e.row).collect();
        self.state = SortState::Rows { rows: rows.into_iter() };
    }

    /// Parallel consume: workers sort their morsels into per-worker runs
    /// (see [`parallel::run_sort_workers`]); the coordinator merges every
    /// in-memory residue and spilled run by `(key, ordinal)`, which equals
    /// the sequential stable order because ordinals encode global input
    /// position.
    fn consume_parallel(&mut self, segment: Segment) -> Result<()> {
        let workers =
            parallel::run_sort_workers(segment, &self.keys, &self.desc, self.topk, &self.ctx)?;
        let mut sources: Vec<RunSource> = Vec::new();
        for w in workers {
            self.ctx.query.check()?;
            self.reservation.adopt(w.reservation);
            if !w.mem.is_empty() {
                sources.push(RunSource::Mem(w.mem.into_iter()));
            }
            for run in w.runs {
                sources.push(RunSource::Spill(run));
            }
        }
        if let Some(k) = self.topk {
            // Each worker kept its own top-k; the global top-k is the best k
            // of the merged candidates.
            let mut heap: BinaryHeap<TopEntry> = BinaryHeap::with_capacity(k + 1);
            for mut src in sources {
                self.ctx.query.check()?;
                while let Some((key, ord, row)) = src.next(self.keys.len())? {
                    offer_topk(&mut heap, k, key, ord, || row, &self.desc, &mut self.reservation);
                }
            }
            self.finish_topk(heap);
            return Ok(());
        }
        self.start_merge(sources)
    }

    /// Sort and spill the buffered rows as one run of
    /// `[keys…, ordinal, row…]` records; ordinals start at `base_ord`.
    fn spill_run(&mut self, buffer: &mut SortBuffer, base_ord: u64) -> Result<SpillReader> {
        // One spill run is one cancellation unit: observe cancel before
        // sorting/writing so no doomed run is ever created.
        self.ctx.query.check()?;
        let order = buffer.sorted_indices(&self.desc);
        let prefix = buffer.prefix_rows();
        let mut w = SpillWriter::create(&self.ctx.spill)?;
        for &(b, r) in &order {
            let mut record: Row = buffer.keys[b as usize]
                .iter()
                .map(|c| c.value_at(r as usize))
                .collect();
            record.push(Value::Int((base_ord + prefix[b as usize] + r as u64) as i64));
            let batch = &buffer.batches[b as usize];
            for c in 0..batch.num_columns() {
                record.push(batch.column(c).value_at(r as usize));
            }
            w.write_row(&record)?;
        }
        buffer.clear();
        self.reservation.free();
        w.into_reader()
    }

    /// Seed the k-way merge heap with each source's first row.
    fn start_merge(&mut self, mut sources: Vec<RunSource>) -> Result<()> {
        let key_len = self.keys.len();
        let mut heap = BinaryHeap::with_capacity(sources.len());
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some((key, ord, row)) = src.next(key_len)? {
                heap.push(MergeEntry { key, ord, row, src: i, desc: Arc::clone(&self.desc) });
            }
        }
        self.state = SortState::Merge { sources, heap };
        Ok(())
    }

    /// Emit the next output batch from whatever state the sort is in.
    fn drain_batch(&mut self) -> Result<Option<RowBatch>> {
        match &mut self.state {
            SortState::Mem { buffer, order, pos } => {
                if *pos >= order.len() {
                    return Ok(None);
                }
                let ncols = buffer.batches[0].num_columns();
                let end = (*pos + BATCH_SIZE).min(order.len());
                let slice = &order[*pos..end];
                let cols: Vec<Column> =
                    (0..ncols).map(|c| gather_column(&buffer.batches, c, slice)).collect();
                *pos = end;
                Ok(Some(RowBatch::from_columns(cols)))
            }
            SortState::Merge { sources, heap } => {
                let key_len = self.keys.len();
                let mut rows: Vec<Row> = Vec::with_capacity(BATCH_SIZE);
                while rows.len() < BATCH_SIZE {
                    let Some(entry) = heap.pop() else { break };
                    // Refill from the source the popped row came from.
                    if let Some((key, ord, row)) = sources[entry.src].next(key_len)? {
                        heap.push(MergeEntry {
                            key,
                            ord,
                            row,
                            src: entry.src,
                            desc: Arc::clone(&self.desc),
                        });
                    }
                    rows.push(entry.row);
                }
                if rows.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(RowBatch::from_owned_rows(rows)))
                }
            }
            SortState::Rows { rows } => {
                let chunk: Vec<Row> = rows.by_ref().take(BATCH_SIZE).collect();
                if chunk.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(RowBatch::from_owned_rows(chunk)))
                }
            }
            SortState::Pending | SortState::Done => Ok(None),
        }
    }
}

impl BatchStream for BatchSort {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        loop {
            match &self.state {
                SortState::Pending => self.consume()?,
                SortState::Done => return Ok(None),
                _ => match self.drain_batch()? {
                    Some(batch) => return Ok(Some(batch)),
                    None => {
                        self.reservation.free();
                        self.state = SortState::Done;
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ctx, ctx_with_budget, int_rows};
    use super::super::vector::RowToBatch;
    use super::super::VecStream;
    use super::*;

    fn sort_keys(desc: bool) -> Vec<SortKey> {
        vec![SortKey { expr: BoundExpr::Column(0), desc }]
    }

    fn batches_of(rows: Vec<Row>) -> Box<dyn BatchStream> {
        Box::new(RowToBatch::new(Box::new(VecStream::new(rows))))
    }

    fn run_sort(
        rows: Vec<Row>,
        keys: Vec<SortKey>,
        topk: Option<usize>,
        ctx: ExecContext,
    ) -> Vec<Row> {
        let mut s = BatchSort::new(batches_of(rows), keys, topk, ctx);
        let mut out = Vec::new();
        while let Some(b) = s.next_batch().unwrap() {
            out.extend(b.into_rows());
        }
        out
    }

    #[test]
    fn in_memory_ascending_and_descending() {
        let rows = int_rows(&[3, 1, 2]);
        assert_eq!(run_sort(rows.clone(), sort_keys(false), None, ctx()), int_rows(&[1, 2, 3]));
        assert_eq!(run_sort(rows, sort_keys(true), None, ctx()), int_rows(&[3, 2, 1]));
    }

    #[test]
    fn multi_key_mixed_lane_sort() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(9.0)],
            vec![Value::Int(0), Value::Float(5.0)],
            vec![Value::Int(1), Value::Float(2.0)],
        ];
        let keys = vec![
            SortKey { expr: BoundExpr::Column(0), desc: false },
            SortKey { expr: BoundExpr::Column(1), desc: true },
        ];
        let out = run_sort(rows, keys, None, ctx());
        assert_eq!(out[0], vec![Value::Int(0), Value::Float(5.0)]);
        assert_eq!(out[1], vec![Value::Int(1), Value::Float(9.0)]);
        assert_eq!(out[2], vec![Value::Int(1), Value::Float(2.0)]);
    }

    #[test]
    fn nulls_sort_first_and_ties_keep_input_order() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Null, Value::Int(20)],
            vec![Value::Int(1), Value::Int(30)],
        ];
        let out = run_sort(rows, sort_keys(false), None, ctx());
        assert!(out[0][0].is_null());
        // Stable: the two key-1 rows keep their input order.
        assert_eq!(out[1][1], Value::Int(10));
        assert_eq!(out[2][1], Value::Int(30));
    }

    #[test]
    fn external_sort_matches_in_memory() {
        let vals: Vec<i64> = (0..20_000).map(|i| (i * 48_271) % 65_537).collect();
        let rows = int_rows(&vals);
        let tight = ctx_with_budget(64 * 1024);
        let spill = tight.spill.clone();
        let external = run_sort(rows.clone(), sort_keys(false), None, tight);
        assert!(spill.files_created() > 1, "expected multiple runs");
        let in_mem = run_sort(rows, sort_keys(false), None, ctx());
        assert_eq!(external, in_mem);
        let mut expected = vals.clone();
        expected.sort_unstable();
        assert_eq!(external, int_rows(&expected));
    }

    #[test]
    fn tiny_budget_still_sorts_via_overdraft() {
        let vals: Vec<i64> = (0..5000).map(|i| (i * 7919) % 1000).collect();
        let out = run_sort(int_rows(&vals), sort_keys(false), None, ctx_with_budget(10));
        let mut expected = vals.clone();
        expected.sort_unstable();
        assert_eq!(out, int_rows(&expected));
    }

    #[test]
    fn topk_matches_full_sort_prefix() {
        let vals: Vec<i64> = (0..10_000).map(|i| (i * 48_271) % 65_537).collect();
        let rows = int_rows(&vals);
        let full = run_sort(rows.clone(), sort_keys(true), None, ctx());
        let top = run_sort(rows, sort_keys(true), Some(25), ctx());
        assert_eq!(top.len(), 25);
        assert_eq!(top, full[..25].to_vec());
    }

    #[test]
    fn topk_larger_than_input_keeps_everything() {
        let rows = int_rows(&[5, 3, 9]);
        let out = run_sort(rows, sort_keys(false), Some(100), ctx());
        assert_eq!(out, int_rows(&[3, 5, 9]));
    }

    #[test]
    fn empty_input() {
        assert!(run_sort(vec![], sort_keys(false), None, ctx()).is_empty());
        assert!(run_sort(vec![], sort_keys(false), Some(5), ctx()).is_empty());
    }
}
