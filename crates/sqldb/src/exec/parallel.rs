//! Morsel-driven parallel execution over shared columnar chunks.
//!
//! The engine's base tables already store immutable, reference-counted
//! column chunks (`Arc<Column>`, see [`crate::table`]), so parallel scans
//! need **zero copying**: morsels are chunk indices (~
//! [`super::batch::BATCH_SIZE`] rows each), assigned by *static striding*
//! — worker `w` of `N` takes morsels `w, w+N, w+2N, …` — and each worker
//! runs the pipeline stages rooted at that scan — filter, project, and
//! inner equi-join probes against a shared read-only `JoinTable` —
//! entirely on its own thread. Static assignment (chunks are uniform, so
//! it balances fine) is what makes runs reproducible: which worker
//! accumulates which rows is a pure function of the worker count.
//!
//! Three consumers drive morsel workers:
//!
//! * **Pipelines** (`spawn_pipeline`): each worker sends its results over
//!   its own *bounded* channel and the consumer reads the owning worker's
//!   channel in morsel order, so downstream operators (limits, sorts, the
//!   result collector) observe exactly the batch sequence sequential
//!   execution produces, and workers can run ahead only by their channel
//!   capacity — in-flight pipeline output is bounded by
//!   `workers × (capacity + 1)` morsels.
//! * **Hash-join build** (`build_join_table`): workers evaluate the build
//!   side's key expressions per morsel; the coordinator inserts the results
//!   in morsel order, reproducing the sequential table (and match order)
//!   bit for bit.
//! * **Hash-aggregate consume** (`run_agg_workers`): each worker owns a
//!   private partial table, reservation, and — under memory pressure — its
//!   own spill partitions, merged by
//!   [`BatchHashAggregate`](super::vector::BatchHashAggregate) at finalize.
//!
//! Error discipline is deterministic: a failure at morsel `f` lowers a
//! shared high-water mark, and workers only skip morsels *beyond* it, so
//! every earlier morsel still runs — the error that surfaces is always the
//! one at the **lowest failing morsel**, exactly the failure sequential
//! execution hits first. Budget discipline: every worker charges the
//! shared [`MemoryBudget`](crate::storage::budget::MemoryBudget) through
//! its own RAII [`Reservation`], so the ledger (and spill decisions) see
//! the true total; transiently, merging per-worker state can double-charge
//! shared groups for at most one merge step before the donor reservation
//! frees.
//!
//! `parallelism = 1`, single-chunk tables, and non-segment plans never reach
//! this module — the sequential operators in [`super::vector`] run
//! unchanged, which is what makes the single-threaded configuration exactly
//! reproduce historical behavior.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use crate::ast::JoinKind;
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::expr::BoundExpr;
use crate::plan::logical::{Plan, SortKey};
use crate::plan::optimizer::extract_equi_keys;
use crate::storage::budget::Reservation;
use crate::table::TableSnapshot;

use super::batch::{ColumnRef, RowBatch};
use super::vector::{
    build_batch_stream_at, truthy_selection, AggCore, BatchStream, JoinTable,
    JoinTableBuilder, WorkerAgg,
};
use super::govern::QueryContext;
use super::vsort::{SortWorker, WorkerSort};
use super::{instrument_slot, ExecContext};

// ---------------------------------------------------------------------------
// Segments: the parallelizable pipeline fragment
// ---------------------------------------------------------------------------

/// One stage of a morsel pipeline, applied to every batch a morsel yields.
enum MorselStage {
    /// Alias nodes: no-op (kept so instrumentation sees the plan shape).
    Pass,
    /// `WHERE` predicate → selection vector → gather.
    Filter(BoundExpr),
    /// Projection expressions → fresh (or forwarded) columns.
    Project(Vec<BoundExpr>),
    /// Equi-join probe against a shared, read-only build table. The flag
    /// marks LEFT OUTER probes: their null-pads are computed per probe
    /// batch (the match bitmap never crosses a morsel), which is what makes
    /// outer pipelines morsel-parallel without any cross-worker state.
    Probe(Arc<JoinTable>, bool),
}

/// The `Send + Sync` heart of a segment: the pinned snapshot whose chunks
/// are the morsels, the stage chain, and per-node row/batch counters.
pub(crate) struct SegmentCore {
    snapshot: TableSnapshot,
    stages: Vec<MorselStage>,
    /// `[rows, batches]` emitted per node, aligned `[scan, stage 0, ...]`.
    /// Workers bump these; the coordinator folds them into `EXPLAIN
    /// ANALYZE` slots when the segment completes.
    stats: Vec<[AtomicU64; 2]>,
}

impl SegmentCore {
    /// Run the whole stage chain over chunk `idx`, returning its output
    /// batches (empty batches are dropped, matching the stream operators).
    pub(crate) fn run_morsel(&self, idx: usize) -> Result<Vec<RowBatch>> {
        let chunk = &self.snapshot.chunks()[idx];
        let mut batches = vec![RowBatch::from_shared(chunk.columns().to_vec())];
        self.stats[0][0].fetch_add(chunk.rows() as u64, Ordering::Relaxed);
        self.stats[0][1].fetch_add(1, Ordering::Relaxed);
        for (si, stage) in self.stages.iter().enumerate() {
            let mut next = Vec::with_capacity(batches.len());
            for batch in batches {
                match stage {
                    MorselStage::Pass => next.push(batch),
                    MorselStage::Filter(pred) => {
                        let mask = pred.eval_batch(&batch)?;
                        let sel = truthy_selection(&mask)?;
                        if sel.is_empty() {
                            continue;
                        }
                        if sel.len() == batch.num_rows() {
                            next.push(batch);
                        } else {
                            next.push(batch.gather(&sel));
                        }
                    }
                    MorselStage::Project(exprs) => {
                        let cols = exprs
                            .iter()
                            .map(|e| e.eval_batch(&batch))
                            .collect::<Result<Vec<_>>>()?;
                        next.push(RowBatch::from_shared(cols));
                    }
                    MorselStage::Probe(table, outer) => {
                        next.extend(table.probe_batch(&batch, *outer)?)
                    }
                }
            }
            let rows: usize = next.iter().map(RowBatch::num_rows).sum();
            self.stats[si + 1][0].fetch_add(rows as u64, Ordering::Relaxed);
            self.stats[si + 1][1].fetch_add(next.len() as u64, Ordering::Relaxed);
            batches = next;
        }
        Ok(batches)
    }
}

/// A fully built, ready-to-run segment. Owns the coordinator-side pieces the
/// workers must not touch: instrumentation slot ids and the reservations
/// pinning any probe build tables.
pub(crate) struct Segment {
    pub(crate) core: Arc<SegmentCore>,
    /// Instrumentation slots aligned with `core.stats`; `None` entries are
    /// not reported (e.g. a pipeline root counted by its stream wrapper).
    slots: Vec<Option<usize>>,
    /// Budget charges for probe-stage build tables (freed on drop).
    reservations: Vec<Reservation>,
}

impl Segment {
    /// Number of morsels (scan chunks) the segment covers.
    pub(crate) fn num_morsels(&self) -> usize {
        self.core.snapshot.chunks().len()
    }

    /// Forget the root node's stats slot (used by pipelines, whose root
    /// counts flow through the stream instrumentation wrapper instead).
    fn clear_root_slot(&mut self) {
        if let Some(last) = self.slots.last_mut() {
            *last = None;
        }
    }

    /// Fold the workers' per-node counters into the `EXPLAIN ANALYZE` slots.
    /// Call after the workers are done; folding twice would double count.
    /// The counters report work the workers *performed*: when a consumer
    /// abandons the pipeline early (a satisfied `LIMIT`), run-ahead morsels
    /// are included even though nothing downstream consumed them — so
    /// interior-node `rows=` can legitimately exceed the sequential plan's.
    fn flush_stats(&self, ctx: &ExecContext) {
        if let Some(stats) = &ctx.instrument {
            let mut v = stats.borrow_mut();
            for (slot, stat) in self.slots.iter().zip(&self.core.stats) {
                if let Some(id) = slot {
                    v[*id].rows_out += stat[0].load(Ordering::Relaxed);
                    v[*id].batches_out += stat[1].load(Ordering::Relaxed);
                }
            }
        }
    }
}

/// Record worker/morsel counts on an operator's `EXPLAIN ANALYZE` slot.
pub(crate) fn note_parallel(
    ctx: &ExecContext,
    slot: Option<usize>,
    workers: usize,
    morsels: usize,
) {
    if let (Some(id), Some(stats)) = (slot, &ctx.instrument) {
        let mut v = stats.borrow_mut();
        v[id].workers = workers as u64;
        v[id].morsels = morsels as u64;
    }
}

// ---------------------------------------------------------------------------
// Plan-shape checks
// ---------------------------------------------------------------------------

/// Upper bound on a segment's *cumulative* join fan-out: the product of
/// every probe stage's build-side row count. A morsel worker materializes
/// its whole per-morsel output before handing it over, so the worst-case
/// blow-up must stay bounded: with the product ≤ this, one morsel yields
/// at most `BATCH_SIZE × MAX_PARALLEL_FANOUT` joined rows (~64 batches)
/// even under total key skew across chained joins. Gate tables (4–64 rows
/// for 1–3-qubit gates, fused included) are far below it; larger or
/// unbounded build sides keep the streaming sequential probe, which emits
/// one bounded batch at a time.
const MAX_PARALLEL_FANOUT: usize = 64;

/// Conservative upper bound on the rows `plan` can produce, when one can be
/// read straight off the catalog (scan-rooted chains and limits only).
fn plan_rows_bound(plan: &Plan, catalog: &Catalog) -> Option<usize> {
    match plan {
        Plan::Scan { table, .. } => catalog.get(table).ok().map(|t| t.row_count()),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Alias { input, .. } => plan_rows_bound(input, catalog),
        Plan::Limit { input, limit, .. } => {
            let inner = plan_rows_bound(input, catalog);
            match (limit, inner) {
                (Some(l), Some(i)) => Some((*l as usize).min(i)),
                (Some(l), None) => Some(*l as usize),
                (None, i) => i,
            }
        }
        _ => None,
    }
}

/// Is `plan` a morsel-parallelizable segment: a chain of filter / project /
/// alias nodes (with inner equi-joins probing on the left) rooted in a
/// base-table scan, whose cumulative join fan-out is provably bounded?
fn is_segment(plan: &Plan, catalog: &Catalog) -> bool {
    segment_fanout(plan, catalog).is_some()
}

/// Worst-case per-input-row fan-out multiplier of the segment (the product
/// of the probe stages' build-side row bounds — chained joins multiply), or
/// `None` when `plan` is not an admissible segment: wrong shape, an
/// unboundable build side, or a product beyond [`MAX_PARALLEL_FANOUT`].
fn segment_fanout(plan: &Plan, catalog: &Catalog) -> Option<usize> {
    match plan {
        Plan::Scan { .. } => Some(1),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Alias { input, .. } => segment_fanout(input, catalog),
        // Inner and LEFT OUTER equi-probes both qualify: an outer probe's
        // null-pads are computed within each probe batch, so the stage stays
        // morsel-local (per-row output is bounded by max(build, 1) either
        // way — every probe row yields its matches or one pad).
        Plan::Join {
            left,
            right,
            kind: JoinKind::Inner | JoinKind::Left,
            on: Some(cond),
            ..
        } => {
            let left_cols = left.schema().len();
            let (lk, _, _) = extract_equi_keys(cond.clone(), left_cols);
            if lk.is_empty() {
                return None;
            }
            let inner = segment_fanout(left, catalog)?;
            let build = plan_rows_bound(right, catalog)?;
            let total = inner.saturating_mul(build.max(1));
            (total <= MAX_PARALLEL_FANOUT).then_some(total)
        }
        _ => None,
    }
}

/// Chunk count of the segment's base scan (0 when the shape doesn't match).
fn scan_chunks(plan: &Plan, catalog: &Catalog) -> usize {
    match plan {
        Plan::Scan { table, .. } => catalog
            .get(table)
            .map(|t| t.snapshot().chunks().len())
            .unwrap_or(0),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Alias { input, .. } => scan_chunks(input, catalog),
        Plan::Join { left, .. } => scan_chunks(left, catalog),
        _ => 0,
    }
}

/// Should `plan` run as a parallel pipeline / aggregate input? Requires a
/// worker budget, a segment shape, and at least two chunks to share out.
pub(crate) fn parallel_eligible(plan: &Plan, catalog: &Catalog, ctx: &ExecContext) -> bool {
    ctx.parallelism > 1 && is_segment(plan, catalog) && scan_chunks(plan, catalog) >= 2
}

/// Aggregate-input variant of [`parallel_eligible`] (same rule; a bare scan
/// qualifies because the per-worker aggregation itself is the payoff).
pub(crate) fn agg_input_eligible(input: &Plan, catalog: &Catalog, ctx: &ExecContext) -> bool {
    parallel_eligible(input, catalog, ctx)
}

// ---------------------------------------------------------------------------
// Segment construction
// ---------------------------------------------------------------------------

/// Build the segment for `plan`, whose instrumentation slot (`slot`) the
/// caller already registered. Descendants register their slots here in the
/// same pre-order the sequential builder uses, so the `EXPLAIN ANALYZE`
/// tree keeps its shape; join build sides are built (and drained) eagerly
/// as ordinary batch streams.
pub(crate) fn build_segment(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &ExecContext,
    depth: usize,
    slot: Option<usize>,
) -> Result<Segment> {
    let descend = |input: &Plan| -> Result<Segment> {
        let child_slot = instrument_slot(ctx, input, depth + 1);
        build_segment(input, catalog, ctx, depth + 1, child_slot)
    };
    Ok(match plan {
        Plan::Scan { table, .. } => {
            let snapshot = catalog.get(table)?.snapshot();
            Segment {
                core: Arc::new(SegmentCore {
                    snapshot,
                    stages: Vec::new(),
                    stats: vec![[AtomicU64::new(0), AtomicU64::new(0)]],
                }),
                slots: vec![slot],
                reservations: Vec::new(),
            }
        }
        Plan::Alias { input, .. } => {
            let seg = descend(input)?;
            push_stage(seg, MorselStage::Pass, slot)?
        }
        Plan::Filter { input, predicate } => {
            let seg = descend(input)?;
            push_stage(seg, MorselStage::Filter(predicate.clone()), slot)?
        }
        Plan::Project { input, exprs, .. } => {
            let seg = descend(input)?;
            push_stage(seg, MorselStage::Project(exprs.clone()), slot)?
        }
        Plan::Join {
            left,
            right,
            kind: kind @ (JoinKind::Inner | JoinKind::Left),
            on: Some(cond),
            ..
        } => {
            let left_cols = left.schema().len();
            let right_cols = right.schema().len();
            let (lk, rk, residual) = extract_equi_keys(cond.clone(), left_cols);
            debug_assert!(!lk.is_empty(), "caller checked is_segment");
            super::set_node_label(ctx, slot, format!("HashJoin {kind:?}"));
            let mut seg = descend(left)?;
            let (table, reservations) =
                build_join_table(right, catalog, ctx, depth + 1, lk, rk, residual, right_cols)?;
            seg.reservations.extend(reservations);
            push_stage(seg, MorselStage::Probe(table, *kind == JoinKind::Left), slot)?
        }
        other => {
            return Err(Error::Plan(format!(
                "internal: plan node {other:?} is not a parallel segment"
            )))
        }
    })
}

/// Append a stage (and its stats slot) to a segment under construction.
/// The core `Arc` is shared with worker threads only once execution
/// starts, so during build it is uniquely owned; a violation is an engine
/// bug surfaced as a typed error rather than a panic.
fn push_stage(mut seg: Segment, stage: MorselStage, slot: Option<usize>) -> Result<Segment> {
    let core = Arc::get_mut(&mut seg.core).ok_or_else(|| {
        Error::Internal("segment core aliased during plan build".into())
    })?;
    core.stages.push(stage);
    core.stats.push([AtomicU64::new(0), AtomicU64::new(0)]);
    seg.slots.push(slot);
    Ok(seg)
}

/// Build the segment for an aggregate's input plan, registering the input's
/// own instrumentation slot first (the aggregate node's slot is the
/// caller's).
pub(crate) fn descend_segment(
    input: &Plan,
    catalog: &Catalog,
    ctx: &ExecContext,
    depth: usize,
) -> Result<Segment> {
    let slot = instrument_slot(ctx, input, depth + 1);
    build_segment(input, catalog, ctx, depth + 1, slot)
}

// ---------------------------------------------------------------------------
// The worker pool: statically strided morsels with ordered collection
// ---------------------------------------------------------------------------

type Job<T> = Arc<dyn Fn(usize) -> Result<T> + Send + Sync>;

/// Per-worker channel capacity: how many finished morsels a worker may
/// queue before it blocks (backpressure). Total in-flight results are
/// bounded by `workers × (QUEUE_DEPTH + 1)` morsels.
const QUEUE_DEPTH: usize = 2;

/// Results of a morsel fan-out, yielded strictly in morsel order no matter
/// which worker finished first. Worker `w` owns morsels `w, w+N, …` and
/// sends each result over its own bounded channel; the consumer reads the
/// owning worker's channel at each position, so no reorder buffering is
/// needed and run-ahead is capped by the channel depth. Early drop (e.g. a
/// satisfied `LIMIT`) disconnects the channels, which stops the workers
/// after their in-flight morsel.
struct OrderedResults<T> {
    rxs: Vec<mpsc::Receiver<(usize, Result<T>)>>,
    handles: Vec<thread::JoinHandle<()>>,
    next: usize,
    total: usize,
}

/// Fan `total` morsels over `workers` threads running `job` with static
/// striding. On failure at morsel `f`, workers only skip morsels *beyond*
/// `f` (shared high-water mark), so the lowest failing morsel always
/// computes and its error is the one the consumer surfaces —
/// deterministically, and identical to sequential execution's first error.
/// Every worker polls `query` before each morsel, so a cancel/timeout rides
/// the same high-water-mark abort protocol as any other morsel error and
/// surfaces as the typed governance error at the lowest affected morsel.
fn run_ordered<T: Send + 'static>(
    total: usize,
    workers: usize,
    query: &QueryContext,
    job: Job<T>,
) -> OrderedResults<T> {
    let abort_at = Arc::new(AtomicUsize::new(usize::MAX));
    let mut rxs = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let job = Arc::clone(&job);
        let abort_at = Arc::clone(&abort_at);
        let query = query.clone();
        let (tx, rx) = mpsc::sync_channel(QUEUE_DEPTH);
        handles.push(thread::spawn(move || {
            let mut i = w;
            while i < total && i <= abort_at.load(Ordering::Relaxed) {
                let result = query.check().and_then(|()| job(i));
                let failed = result.is_err();
                if failed {
                    abort_at.fetch_min(i, Ordering::Relaxed);
                } else {
                    // Morsel finished: feed the cancellation-latency meter.
                    query.note_unit();
                }
                if tx.send((i, result)).is_err() || failed {
                    break;
                }
                i += workers;
            }
        }));
        rxs.push(rx);
    }
    OrderedResults { rxs, handles, next: 0, total }
}

impl<T> OrderedResults<T> {
    /// The next morsel's result in order, `None` when all are delivered.
    fn next(&mut self) -> Result<Option<T>> {
        if self.next >= self.total {
            self.finish();
            return Ok(None);
        }
        match self.rxs[self.next % self.rxs.len()].recv() {
            Ok((i, Ok(v))) => {
                debug_assert_eq!(i, self.next, "worker delivered out of order");
                self.next += 1;
                Ok(Some(v))
            }
            Ok((_, Err(e))) => {
                // First error in morsel order (everything before it was
                // consumed successfully above).
                self.next = self.total;
                self.finish();
                Err(e)
            }
            Err(_) => {
                // This worker's channel closed before delivering the morsel
                // the consumer needs. Workers only stop early past a failed
                // morsel — which the consumer would have reached first — so
                // this means the worker panicked; joining resurfaces it.
                self.next = self.total;
                self.finish();
                Err(Error::Eval("parallel worker terminated unexpectedly".into()))
            }
        }
    }

    /// Disconnect the channels and join the workers (propagating panics).
    fn finish(&mut self) {
        self.rxs.clear();
        for h in self.handles.drain(..) {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl<T> Drop for OrderedResults<T> {
    fn drop(&mut self) {
        self.finish();
    }
}

// ---------------------------------------------------------------------------
// Consumer 1: order-preserving parallel pipelines
// ---------------------------------------------------------------------------

/// A [`BatchStream`] over a morsel-parallel segment. Emits exactly the batch
/// sequence the sequential operators would, because morsel results are
/// released in morsel order.
struct ParallelPipelineStream {
    ordered: OrderedResults<(Vec<RowBatch>, Reservation)>,
    current: VecDeque<RowBatch>,
    /// Ledger charge for the morsel currently draining through `current`
    /// (queued morsels carry their own inside the channel messages); freed
    /// when the next morsel replaces it or the stream drops.
    current_charge: Option<Reservation>,
    segment: Segment,
    ctx: ExecContext,
    stats_flushed: bool,
    done: bool,
}

impl ParallelPipelineStream {
    fn flush_stats_once(&mut self) {
        if !self.stats_flushed {
            self.stats_flushed = true;
            self.segment.flush_stats(&self.ctx);
        }
    }
}

impl BatchStream for ParallelPipelineStream {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        loop {
            if let Some(batch) = self.current.pop_front() {
                return Ok(Some(batch));
            }
            if self.done {
                return Ok(None);
            }
            match self.ordered.next() {
                Ok(Some((batches, charge))) => {
                    self.current.extend(batches);
                    self.current_charge = Some(charge);
                }
                Ok(None) => {
                    self.done = true;
                    self.current_charge = None;
                    self.flush_stats_once();
                    return Ok(None);
                }
                Err(e) => {
                    self.done = true;
                    self.current_charge = None;
                    self.flush_stats_once();
                    return Err(e);
                }
            }
        }
    }
}

impl Drop for ParallelPipelineStream {
    fn drop(&mut self) {
        // Stop and join the workers *before* folding their counters, so an
        // abandoned stream (satisfied LIMIT) still reports consistent stats.
        self.ordered.finish();
        self.flush_stats_once();
    }
}

/// Launch `segment` as an order-preserving parallel pipeline. `slot` is the
/// root node's instrumentation slot (its row counts come from the stream
/// wrapper; here it only receives the `workers=`/`morsels=` annotation).
pub(crate) fn spawn_pipeline(
    mut segment: Segment,
    ctx: &ExecContext,
    slot: Option<usize>,
) -> Result<Box<dyn BatchStream>> {
    segment.clear_root_slot();
    let total = segment.num_morsels();
    let workers = ctx.parallelism.min(total);
    note_parallel(ctx, slot, workers, total);
    let core = Arc::clone(&segment.core);
    let budget = ctx.budget.clone();
    // Each morsel's output is charged to the ledger (as a bounded
    // overdraft — the memory already exists) while it sits in flight, so
    // run-ahead is visible to budget/spill decisions instead of being
    // unaccounted; the charge travels with the message and frees as the
    // consumer finishes the morsel.
    let job: Job<(Vec<RowBatch>, Reservation)> = Arc::new(move |i| {
        let batches = core.run_morsel(i)?;
        let bytes: usize = batches
            .iter()
            .flat_map(|b| b.columns().iter())
            .map(|c| c.heap_bytes())
            .sum();
        Ok((batches, Reservation::overdraft(&budget, bytes)))
    });
    let ordered = run_ordered(total, workers, &ctx.query, job);
    Ok(Box::new(ParallelPipelineStream {
        ordered,
        current: VecDeque::new(),
        current_charge: None,
        segment,
        ctx: ctx.clone(),
        stats_flushed: false,
        done: false,
    }))
}

// ---------------------------------------------------------------------------
// Consumer 2: parallel hash-join build
// ---------------------------------------------------------------------------

/// Build the hash table for an inner equi-join's build side. When the build
/// plan is a multi-chunk segment and workers are available, key expressions
/// evaluate morsel-parallel and the coordinator inserts the results in
/// morsel order (identical table and match order to the sequential build);
/// otherwise the plan runs as an ordinary batch stream.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_join_table(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &ExecContext,
    depth: usize,
    left_keys: Vec<BoundExpr>,
    right_keys: Vec<BoundExpr>,
    residual: Option<BoundExpr>,
    build_cols: usize,
) -> Result<(Arc<JoinTable>, Vec<Reservation>)> {
    if !parallel_eligible(plan, catalog, ctx) {
        let stream = build_batch_stream_at(plan, catalog, ctx, depth)?;
        let (table, reservation) = JoinTable::build_from_stream(
            stream, left_keys, right_keys, residual, build_cols, ctx,
        )?;
        return Ok((Arc::new(table), vec![reservation]));
    }

    let slot = instrument_slot(ctx, plan, depth);
    let segment = build_segment(plan, catalog, ctx, depth, slot)?;
    let total = segment.num_morsels();
    let workers = ctx.parallelism.min(total);
    note_parallel(ctx, slot, workers, total);

    let core = Arc::clone(&segment.core);
    let keys = Arc::new(right_keys);
    let job_keys = Arc::clone(&keys);
    let job: Job<Vec<(RowBatch, Vec<ColumnRef>)>> = Arc::new(move |i| {
        core.run_morsel(i)?
            .into_iter()
            .map(|batch| {
                let key_cols = job_keys
                    .iter()
                    .map(|e| e.eval_batch(&batch))
                    .collect::<Result<Vec<_>>>()?;
                Ok((batch, key_cols))
            })
            .collect()
    });
    let mut ordered = run_ordered(total, workers, &ctx.query, job);

    let mut builder = JoinTableBuilder::new(keys.len());
    let mut reservation = Reservation::empty(&ctx.budget);
    while let Some(items) = ordered.next()? {
        for (batch, key_cols) in items {
            // Same fail-fast grant admission as the sequential build path.
            let est: usize = batch.columns().iter().map(|c| c.heap_bytes()).sum();
            ctx.query.admit(reservation.bytes().saturating_add(est))?;
            builder.insert_batch(&batch, &key_cols, &mut reservation, &ctx.budget)?;
        }
    }
    segment.flush_stats(ctx);
    let mut reservations = segment.reservations;
    reservations.push(reservation);
    Ok((Arc::new(builder.finish(left_keys, residual, build_cols)), reservations))
}

// ---------------------------------------------------------------------------
// Consumers 3 & 4: fold-style breakers (aggregate consume, sort consume)
// ---------------------------------------------------------------------------

/// Fan a segment's morsels over statically strided workers that *fold*
/// per-worker state (unlike [`run_ordered`], which streams every morsel's
/// result back over a channel). Worker `w` consumes morsels `w, w+N, …`
/// into a private state built by `init`; the sealed states are returned in
/// worker order. The shared protocol of both fold-style breakers:
///
/// * **Static striding** — which worker sees which rows (and therefore any
///   floating-point accumulation order) is a pure function of the worker
///   count, so repeated runs at a fixed count are bit-for-bit reproducible
///   (chunks are uniform, so striding balances fine).
/// * **Deterministic errors** — a failure at morsel `f` lowers a shared
///   high-water mark and workers only skip morsels *beyond* it, so the
///   lowest failing morsel always computes and its error is the one
///   surfaced: exactly the failure sequential execution hits first.
/// * **Panic propagation** — a panicking worker resurfaces on the caller.
///
/// NOTE: [`run_ordered`] implements the same striding / high-water-mark /
/// panic-join protocol around its streaming channels — change the two
/// together.
fn run_fold_workers<S: Send, T: Send>(
    segment: &Segment,
    ctx: &ExecContext,
    init: impl Fn() -> S + Sync,
    consume: impl Fn(&mut S, usize) -> Result<()> + Sync,
    finish: impl Fn(S) -> T + Sync,
) -> Result<Vec<T>> {
    let total = segment.num_morsels();
    let workers = ctx.parallelism.min(total).max(1);
    let abort_at = AtomicUsize::new(usize::MAX);
    // Shared governance token (the full context is not `Sync`): polled
    // before every morsel, exactly like `run_ordered`'s workers.
    let query = ctx.query.clone();
    let results: Vec<(usize, Result<T>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (abort_at, init, consume, finish) = (&abort_at, &init, &consume, &finish);
                let query = &query;
                scope.spawn(move || -> (usize, Result<T>) {
                    let mut state = init();
                    let mut i = w;
                    while i < total {
                        if i > abort_at.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Err(e) = query.check().and_then(|()| consume(&mut state, i)) {
                            abort_at.fetch_min(i, Ordering::Relaxed);
                            return (i, Err(e));
                        }
                        query.note_unit();
                        i += workers;
                    }
                    (usize::MAX, Ok(finish(state)))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    });
    segment.flush_stats(ctx);
    // Deterministic error discipline: report the failure at the lowest
    // morsel index, regardless of which worker hit it first.
    let mut out = Vec::with_capacity(results.len());
    let mut first_err: Option<(usize, Error)> = None;
    for (i, r) in results {
        match r {
            Ok(t) => out.push(t),
            Err(e) if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) => {
                first_err = Some((i, e));
            }
            Err(_) => {}
        }
    }
    match first_err {
        Some((_, e)) => Err(e),
        None => Ok(out),
    }
}

/// Run the aggregate consume phase morsel-parallel: each worker aggregates
/// its morsels into a private table under its own reservation, spilling
/// into its own partition files when the shared budget runs dry; the
/// partial tables merge at finalize in
/// [`BatchHashAggregate`](super::vector::BatchHashAggregate). Striding,
/// error, and reproducibility semantics per [`run_fold_workers`].
pub(crate) fn run_agg_workers(
    core: &Arc<AggCore>,
    segment: Segment,
    ctx: &ExecContext,
) -> Result<Vec<WorkerAgg>> {
    let budget = ctx.budget.clone();
    let spill = Arc::clone(&ctx.spill);
    let query = ctx.query.clone();
    run_fold_workers(
        &segment,
        ctx,
        || WorkerAgg {
            table: core.new_table(),
            writers: None,
            reservation: Reservation::empty(&budget),
            rows_seen: 0,
        },
        |worker, i| {
            for batch in segment.core.run_morsel(i)? {
                worker.rows_seen += batch.num_rows() as u64;
                let over =
                    core.update_batch(&batch, &mut worker.table, &mut worker.reservation)?;
                if over {
                    // Observe cancel before paying for a doomed spill run.
                    query.check()?;
                    core.flush(
                        &mut worker.table,
                        &mut worker.writers,
                        0,
                        &spill,
                        &mut worker.reservation,
                    )?;
                }
            }
            Ok(())
        },
        |worker| worker,
    )
}

/// Run a sort's consume phase morsel-parallel: each worker evaluates sort
/// keys over its strided morsels and accumulates a private buffer —
/// spilling sorted runs under budget pressure, or keeping a bounded top-k
/// heap — via [`SortWorker`]. The per-worker results merge at the breaker
/// in [`super::vsort::BatchSort`]; because every row carries a global
/// ordinal, the merged output is byte-identical to the sequential sort at
/// every worker count. Striding, error, and reproducibility semantics per
/// [`run_fold_workers`].
pub(crate) fn run_sort_workers(
    segment: Segment,
    keys: &[SortKey],
    desc: &Arc<Vec<bool>>,
    topk: Option<usize>,
    ctx: &ExecContext,
) -> Result<Vec<WorkerSort>> {
    let budget = ctx.budget.clone();
    let spill = Arc::clone(&ctx.spill);
    let query = ctx.query.clone();
    run_fold_workers(
        &segment,
        ctx,
        || SortWorker::new(keys, desc, topk, &budget, &spill, &query),
        |worker, i| {
            worker.begin_morsel(i);
            for batch in segment.core.run_morsel(i)? {
                worker.consume_batch(&batch)?;
            }
            Ok(())
        },
        SortWorker::finish,
    )
}
