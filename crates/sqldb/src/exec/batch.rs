//! Columnar row batches — the unit of data flow in the vectorized executor.
//!
//! A [`RowBatch`] holds up to ~[`BATCH_SIZE`] rows decomposed into columns.
//! Columns containing only non-null `INTEGER` or only non-null `DOUBLE`
//! values ride a null-free fast lane ([`Column::Int`] / [`Column::Float`])
//! so the expression kernels in [`crate::vexpr`] can run tight loops over
//! primitive slices; any mixed/null/text/`HUGEINT` column falls back to
//! [`Column::Generic`].
//!
//! Ownership rules: a batch's columns are immutable, reference-counted
//! [`ColumnRef`]s. Scans hand out batches whose columns **are** the base
//! table's chunks (zero-copy; see [`crate::table`]), projections of bare
//! column references forward the same `Arc`s, and gathering (join probe,
//! filter selection) produces fresh columns. The rare in-place mutations
//! ([`RowBatch::truncate`]/[`RowBatch::skip`]) copy-on-write via
//! [`Arc::make_mut`], so nothing an operator does to a batch can be observed
//! through another reference — batches can always be buffered, spilled, or
//! reordered freely.

use std::sync::Arc;

use crate::storage::spill::Row;
use crate::value::{GroupKey, Value};

/// A shared, immutable reference to a column. Cloning is one atomic
/// refcount bump; mutation goes through [`Arc::make_mut`] (copy-on-write).
pub type ColumnRef = Arc<Column>;

/// Target number of rows per batch. Chosen so a three-column state batch
/// (`s`, `r`, `i`) stays comfortably inside L2 while amortizing per-batch
/// dispatch overhead to noise.
pub const BATCH_SIZE: usize = 1024;

/// One column of a [`RowBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Null-free `INTEGER` fast lane.
    Int(Vec<i64>),
    /// Null-free `DOUBLE` fast lane.
    Float(Vec<f64>),
    /// Everything else: nulls, text, `HUGEINT`, or mixed types.
    Generic(Vec<Value>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Generic(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty column ready to receive values of any type.
    pub fn new() -> Column {
        Column::Generic(Vec::new())
    }

    /// A column holding `n` copies of `v` (constant/literal splat).
    pub fn splat(v: &Value, n: usize) -> Column {
        match v {
            Value::Int(i) => Column::Int(vec![*i; n]),
            Value::Float(f) => Column::Float(vec![*f; n]),
            other => Column::Generic(vec![other.clone(); n]),
        }
    }

    /// Owned [`Value`] at row `i`.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Generic(v) => v[i].clone(),
        }
    }

    /// Canonical grouping/join key of row `i` (see [`Value::group_key`]).
    pub fn group_key_at(&self, i: usize) -> GroupKey {
        match self {
            Column::Int(v) => GroupKey::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]).group_key(),
            Column::Generic(v) => v[i].group_key(),
        }
    }

    /// Demote a typed lane to [`Column::Generic`] in place.
    fn make_generic(&mut self) -> &mut Vec<Value> {
        match self {
            Column::Int(v) => {
                *self = Column::Generic(v.iter().map(|&i| Value::Int(i)).collect());
            }
            Column::Float(v) => {
                *self = Column::Generic(v.iter().map(|&f| Value::Float(f)).collect());
            }
            Column::Generic(_) => {}
        }
        match self {
            Column::Generic(v) => v,
            _ => unreachable!("just demoted"),
        }
    }

    /// Append one value, demoting the lane if the type no longer fits.
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (Column::Int(col), Value::Int(i)) => col.push(i),
            (Column::Float(col), Value::Float(f)) => col.push(f),
            (Column::Generic(col), v) => col.push(v),
            (col @ Column::Int(_), v) | (col @ Column::Float(_), v) => {
                col.make_generic().push(v)
            }
        }
    }

    /// Build from owned values, detecting a uniform fast lane.
    pub fn from_values(values: Vec<Value>) -> Column {
        if !values.is_empty() && values.iter().all(|v| matches!(v, Value::Int(_))) {
            return Column::Int(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Int(i) => i,
                        _ => unreachable!("checked above"),
                    })
                    .collect(),
            );
        }
        if !values.is_empty() && values.iter().all(|v| matches!(v, Value::Float(_))) {
            return Column::Float(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Float(f) => f,
                        _ => unreachable!("checked above"),
                    })
                    .collect(),
            );
        }
        Column::Generic(values)
    }

    /// Approximate in-memory footprint of the column's row data in bytes
    /// (fast lanes are 8 bytes/row; generic lanes charge per [`Value`]).
    /// Base-table chunks charge this against the shared memory budget.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Column::Int(v) => 8 * v.len(),
            Column::Float(v) => 8 * v.len(),
            Column::Generic(v) => v.iter().map(Value::heap_bytes).sum(),
        }
    }

    /// Copy out a contiguous row range (types preserved).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Column {
        match self {
            Column::Int(v) => Column::Int(v[range].to_vec()),
            Column::Float(v) => Column::Float(v[range].to_vec()),
            Column::Generic(v) => Column::Generic(v[range].to_vec()),
        }
    }

    /// Copy out the rows at `indices` (types preserved).
    pub fn gather(&self, indices: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i as usize]).collect()),
            Column::Float(v) => {
                Column::Float(indices.iter().map(|&i| v[i as usize]).collect())
            }
            Column::Generic(v) => {
                Column::Generic(indices.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// Append every row of `other`, keeping the typed lane when both sides
    /// share it and demoting to [`Column::Generic`] otherwise (vertical
    /// concatenation — the batch-assembly dual of [`Column::gather`]).
    pub fn extend_from(&mut self, other: &Column) {
        match (&mut *self, other) {
            (Column::Int(dst), Column::Int(src)) => dst.extend_from_slice(src),
            (Column::Float(dst), Column::Float(src)) => dst.extend_from_slice(src),
            (Column::Generic(dst), src) => {
                dst.reserve(src.len());
                for i in 0..src.len() {
                    dst.push(src.value_at(i));
                }
            }
            (dst, src) => {
                let vals = dst.make_generic();
                vals.reserve(src.len());
                for i in 0..src.len() {
                    vals.push(src.value_at(i));
                }
            }
        }
    }

    /// Append `n` copies of `v` (the splat dual of [`Column::extend_from`];
    /// join operators use it to repeat one probe value across a build block
    /// or to null-pad the non-preserved side of an outer join).
    pub fn push_n(&mut self, v: &Value, n: usize) {
        match (&mut *self, v) {
            (Column::Int(dst), Value::Int(i)) => dst.extend(std::iter::repeat_n(*i, n)),
            (Column::Float(dst), Value::Float(f)) => dst.extend(std::iter::repeat_n(*f, n)),
            (Column::Generic(dst), v) => dst.extend(std::iter::repeat_n(v, n).cloned()),
            (dst, v) => {
                let vals = dst.make_generic();
                vals.extend(std::iter::repeat_n(v, n).cloned());
            }
        }
    }
}

impl Default for Column {
    fn default() -> Self {
        Column::new()
    }
}

/// A batch of rows in columnar layout. All columns have equal length and are
/// shared [`ColumnRef`]s — cloning a batch never copies row data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowBatch {
    columns: Vec<ColumnRef>,
    rows: usize,
}

impl RowBatch {
    /// Assemble from freshly built owned columns (must share a length).
    pub fn from_columns(columns: Vec<Column>) -> RowBatch {
        Self::from_shared(columns.into_iter().map(Arc::new).collect())
    }

    /// Assemble from already-shared columns (must share a length). This is
    /// the zero-copy path: scans pass base-table chunk columns through
    /// unchanged, and projections forward the `Arc`s of bare column
    /// references.
    pub fn from_shared(columns: Vec<ColumnRef>) -> RowBatch {
        let rows = columns.first().map_or(0, |c| c.len());
        debug_assert!(columns.iter().all(|c| c.len() == rows), "ragged batch");
        RowBatch { columns, rows }
    }

    /// Transpose a row slice into a columnar batch.
    pub fn from_rows(rows: &[Row]) -> RowBatch {
        let ncols = rows.first().map_or(0, Row::len);
        let mut columns: Vec<ColumnRef> = Vec::with_capacity(ncols);
        for c in 0..ncols {
            columns.push(Arc::new(Column::from_values(
                rows.iter().map(|r| r[c].clone()).collect(),
            )));
        }
        RowBatch { columns, rows: rows.len() }
    }

    /// Transpose owned rows into a columnar batch without cloning values
    /// (lanes still detected, one [`Column::push`] per value).
    pub fn from_owned_rows(rows: Vec<Row>) -> RowBatch {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Row::len);
        let mut columns: Vec<ColumnRef> = Vec::with_capacity(ncols);
        let mut rows = rows;
        for c in 0..ncols {
            let mut col = match rows.first() {
                Some(r) => match &r[c] {
                    Value::Int(_) => Column::Int(Vec::with_capacity(nrows)),
                    Value::Float(_) => Column::Float(Vec::with_capacity(nrows)),
                    _ => Column::Generic(Vec::with_capacity(nrows)),
                },
                None => Column::new(),
            };
            for r in &mut rows {
                col.push(std::mem::replace(&mut r[c], Value::Null));
            }
            columns.push(Arc::new(col));
        }
        RowBatch { columns, rows: nrows }
    }

    /// A batch of `n` zero-column rows (the `One` operator / `SELECT 1`).
    pub fn zero_columns(n: usize) -> RowBatch {
        RowBatch { columns: Vec::new(), rows: n }
    }

    /// Number of rows in the batch.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the batch.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[ColumnRef] {
        &self.columns
    }

    /// Column `i` of the batch.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Shared handle to column `i` (refcount bump, no copy). This is how
    /// [`crate::vexpr`] resolves bare column references without cloning the
    /// underlying data.
    pub fn column_shared(&self, i: usize) -> ColumnRef {
        Arc::clone(&self.columns[i])
    }

    /// Materialize row `i` as an owned [`Row`].
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value_at(i)).collect()
    }

    /// Materialize every row (the batch → row compatibility shim).
    pub fn into_rows(self) -> Vec<Row> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Copy out the rows at `indices` (join/filter selection).
    pub fn gather(&self, indices: &[u32]) -> RowBatch {
        RowBatch {
            columns: self.columns.iter().map(|c| Arc::new(c.gather(indices))).collect(),
            rows: indices.len(),
        }
    }

    /// Keep the first `n` rows (LIMIT). Owned columns shorten in place;
    /// shared columns (e.g. base-table chunks) copy only the `n` survivors
    /// instead of cloning the whole chunk first.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.rows {
            return;
        }
        for c in &mut self.columns {
            match Arc::get_mut(c) {
                Some(Column::Int(v)) => v.truncate(n),
                Some(Column::Float(v)) => v.truncate(n),
                Some(Column::Generic(v)) => v.truncate(n),
                None => *c = Arc::new(c.slice(0..n)),
            }
        }
        self.rows = n;
    }

    /// Drop the first `n` rows (OFFSET). Shared columns copy only the
    /// surviving suffix, like [`truncate`](RowBatch::truncate).
    pub fn skip(&mut self, n: usize) {
        let n = n.min(self.rows);
        if n == 0 {
            return;
        }
        for c in &mut self.columns {
            match Arc::get_mut(c) {
                Some(Column::Int(v)) => {
                    v.drain(..n);
                }
                Some(Column::Float(v)) => {
                    v.drain(..n);
                }
                Some(Column::Generic(v)) => {
                    v.drain(..n);
                }
                None => *c = Arc::new(c.slice(n..c.len())),
            }
        }
        self.rows -= n;
    }

    /// Glue two batches side by side (join output: left ++ right columns).
    pub fn hstack(left: RowBatch, right: RowBatch) -> RowBatch {
        debug_assert_eq!(left.rows, right.rows, "hstack row mismatch");
        let rows = left.rows;
        let mut columns = left.columns;
        columns.extend(right.columns);
        RowBatch { columns, rows }
    }
}

/// Incremental columnar batch assembly: operators that produce output rows
/// from multiple sources (nested-loop joins combining probe values with
/// gathered build blocks, sorts emitting rows drawn from many buffered
/// batches) append into per-column builders and take a [`RowBatch`] once
/// enough rows accumulate. Lanes stay typed as long as the appended pieces
/// agree ([`Column::extend_from`] / [`Column::push_n`] demote on mismatch).
#[derive(Debug)]
pub struct BatchBuilder {
    cols: Vec<Column>,
    rows: usize,
}

impl BatchBuilder {
    /// A builder for batches of `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        BatchBuilder { cols: (0..ncols).map(|_| Column::new()).collect(), rows: 0 }
    }

    /// Rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Mutable access to column `i` for direct appends. Callers must keep
    /// all columns the same length before [`BatchBuilder::add_rows`].
    pub fn column_mut(&mut self, i: usize) -> &mut Column {
        &mut self.cols[i]
    }

    /// Record that `n` complete rows were appended across all columns.
    pub fn add_rows(&mut self, n: usize) {
        self.rows += n;
        debug_assert!(
            self.cols.iter().all(|c| c.len() == self.rows),
            "ragged BatchBuilder: a column is missing values"
        );
    }

    /// Append one whole row.
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        for (c, v) in self.cols.iter_mut().zip(row) {
            c.push(v.clone());
        }
        self.rows += 1;
    }

    /// Take the accumulated rows as a batch, resetting the builder.
    pub fn take(&mut self) -> RowBatch {
        let ncols = self.cols.len();
        let cols = std::mem::replace(
            &mut self.cols,
            (0..ncols).map(|_| Column::new()).collect(),
        );
        self.rows = 0;
        RowBatch::from_columns(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Float(0.5), Value::Str("a".into())],
            vec![Value::Int(2), Value::Float(1.5), Value::Null],
        ]
    }

    #[test]
    fn from_rows_detects_fast_lanes() {
        let b = RowBatch::from_rows(&mixed_rows());
        assert!(matches!(b.column(0), Column::Int(_)));
        assert!(matches!(b.column(1), Column::Float(_)));
        assert!(matches!(b.column(2), Column::Generic(_)));
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.row(1), vec![Value::Int(2), Value::Float(1.5), Value::Null]);
    }

    #[test]
    fn round_trip_rows() {
        let rows = mixed_rows();
        assert_eq!(RowBatch::from_rows(&rows).into_rows(), rows);
    }

    #[test]
    fn push_demotes_lane_on_type_change() {
        let mut c = Column::Int(vec![1, 2]);
        c.push(Value::Null);
        assert!(matches!(c, Column::Generic(_)));
        assert_eq!(c.value_at(0), Value::Int(1));
        assert!(c.value_at(2).is_null());
    }

    #[test]
    fn gather_preserves_types_and_order() {
        let b = RowBatch::from_rows(&mixed_rows());
        let g = b.gather(&[1, 0, 1]);
        assert_eq!(g.num_rows(), 3);
        assert!(matches!(g.column(0), Column::Int(_)));
        assert_eq!(g.row(0)[0], Value::Int(2));
        assert_eq!(g.row(1)[0], Value::Int(1));
    }

    #[test]
    fn truncate_and_skip() {
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let mut b = RowBatch::from_rows(&rows);
        b.skip(3);
        b.truncate(4);
        assert_eq!(b.num_rows(), 4);
        assert_eq!(b.row(0), vec![Value::Int(3)]);
        assert_eq!(b.row(3), vec![Value::Int(6)]);
    }

    #[test]
    fn hstack_joins_columns() {
        let l = RowBatch::from_rows(&[vec![Value::Int(1)], vec![Value::Int(2)]]);
        let r = RowBatch::from_rows(&[vec![Value::Float(0.1)], vec![Value::Float(0.2)]]);
        let j = RowBatch::hstack(l, r);
        assert_eq!(j.num_columns(), 2);
        assert_eq!(j.row(1), vec![Value::Int(2), Value::Float(0.2)]);
    }

    #[test]
    fn group_keys_unify_int_and_integral_float() {
        let int_col = Column::Int(vec![3]);
        let float_col = Column::Float(vec![3.0]);
        assert_eq!(int_col.group_key_at(0), float_col.group_key_at(0));
    }
}
