//! Physical execution: pull-based row streams over the bound [`Plan`], plus
//! the vectorized batch path in [`vector`].
//!
//! Simple operators (scan, filter, project, limit, union) live here; the
//! blocking operators with out-of-core behaviour get their own modules:
//! [`join`], [`aggregate`], [`sort`], [`vsort`]. The columnar [`batch`]
//! chunks and the batch-at-a-time operator set in [`vector`] form the
//! engine's default execution path and cover every plan shape the planner
//! emits (including sorts, outer/cross/non-equi joins, and DISTINCT
//! aggregates); the row streams below remain as the independent reference
//! implementation against which row/batch equivalence is tested.

pub mod aggregate;
pub mod batch;
pub mod govern;
pub mod join;
pub mod parallel;
pub mod sort;
pub mod vector;
pub mod vsort;

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use crate::catalog::Catalog;
use crate::error::Result;
use crate::expr::BoundExpr;
use crate::plan::logical::Plan;
use crate::plan::optimizer;
use crate::storage::budget::MemoryBudget;
use crate::storage::spill::{Row, SpillDir};
use crate::table::TableSnapshot;
use crate::value::Value;

/// A pull-based row iterator. `next_row` returns `Ok(None)` at end of stream.
pub trait RowStream {
    /// Pull the next row, or `None` at end of stream.
    fn next_row(&mut self) -> Result<Option<Row>>;
}

/// Per-operator metrics collected under `EXPLAIN ANALYZE`.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// Operator label as rendered in the plan tree.
    pub label: String,
    /// Nesting depth in the plan tree (for indentation).
    pub depth: usize,
    /// Total rows this operator emitted.
    pub rows_out: u64,
    /// Batches emitted on the vectorized path; 0 under row execution.
    pub batches_out: u64,
    /// Inclusive wall time spent inside this operator's `next_row` /
    /// `next_batch` calls (children included, since execution is pull-based).
    pub nanos: u128,
    /// Worker threads a morsel-parallel operator ran with; 0 when the
    /// operator executed sequentially.
    pub workers: u64,
    /// Morsels (scan-chunk work units) the parallel operator processed.
    pub morsels: u64,
}

/// Shared execution environment.
#[derive(Clone)]
pub struct ExecContext {
    /// The memory ledger every operator and base table charges.
    pub budget: MemoryBudget,
    /// Directory receiving the spill files of out-of-core operators.
    pub spill: Arc<SpillDir>,
    /// Worker threads morsel-parallel operators may use. `1` disables
    /// parallel execution entirely (the sequential operators run unchanged).
    pub parallelism: usize,
    /// When set, every operator is wrapped with row/time instrumentation.
    pub instrument: Option<Rc<RefCell<Vec<NodeStats>>>>,
    /// Governance token for the statement this context executes: cancel
    /// flag, deadline, and memory grant. Operators call
    /// [`govern::QueryContext::check`] at every batch/morsel/spill-run
    /// boundary (the builders wrap each node with a cancel guard, so plain
    /// streaming operators need no explicit checks).
    pub query: govern::QueryContext,
}

/// Build an executable stream for `plan`. Base-table snapshots are taken
/// here, so the stream sees a consistent state even if tables change later.
pub fn build_stream(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &ExecContext,
) -> Result<Box<dyn RowStream>> {
    build_stream_at(plan, catalog, ctx, 0)
}

fn node_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table, .. } => format!("Scan {table}"),
        Plan::One => "One".into(),
        Plan::Filter { .. } => "Filter".into(),
        Plan::Project { exprs, .. } => format!("Project [{}]", exprs.len()),
        Plan::Join { kind, .. } => format!("Join {kind:?}"),
        Plan::Aggregate { group_by, aggs, .. } => {
            format!("Aggregate [{} keys, {} aggs]", group_by.len(), aggs.len())
        }
        Plan::Sort { keys, .. } => format!("Sort [{}]", keys.len()),
        Plan::Limit { limit, offset, .. } => format!("Limit {limit:?}+{offset}"),
        Plan::UnionAll { inputs } => format!("UnionAll [{}]", inputs.len()),
        Plan::Alias { .. } => "Alias".into(),
    }
}

/// Replace an operator's `EXPLAIN ANALYZE` label with its physical-operator
/// name. The batch planner calls this when it picks a strategy the logical
/// label cannot express (`HashJoin Left` vs `NestedLoopJoin Cross`,
/// `BatchSort` vs `TopKSort`), so plans show exactly which vectorized
/// operator ran; the row path keeps the logical labels.
pub(crate) fn set_node_label(ctx: &ExecContext, slot: Option<usize>, label: String) {
    if let (Some(id), Some(stats)) = (slot, &ctx.instrument) {
        stats.borrow_mut()[id].label = label;
    }
}

/// Reserve a `NodeStats` slot for `plan` when instrumentation is on (shared
/// by both executors so the `EXPLAIN ANALYZE` slot protocol lives here only).
pub(crate) fn instrument_slot(ctx: &ExecContext, plan: &Plan, depth: usize) -> Option<usize> {
    ctx.instrument.as_ref().map(|stats| {
        let mut v = stats.borrow_mut();
        v.push(NodeStats {
            label: node_label(plan),
            depth,
            rows_out: 0,
            batches_out: 0,
            nanos: 0,
            workers: 0,
            morsels: 0,
        });
        v.len() - 1
    })
}

fn build_stream_at(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &ExecContext,
    depth: usize,
) -> Result<Box<dyn RowStream>> {
    // Reserve this node's stats slot before recursing (pre-order render).
    let slot = instrument_slot(ctx, plan, depth);
    let stream = build_stream_inner(plan, catalog, ctx, depth)?;
    let stream: Box<dyn RowStream> = match (slot, &ctx.instrument) {
        (Some(id), Some(stats)) => Box::new(Instrumented {
            inner: stream,
            id,
            stats: Rc::clone(stats),
        }),
        _ => stream,
    };
    Ok(Box::new(CancelGuard {
        inner: stream,
        query: ctx.query.clone(),
        pulls: 0,
    }))
}

/// Per-node cancellation guard on the row path. A batch-equivalent unit of
/// row work is `BATCH_ROWS` pulls, so the guard polls
/// [`govern::QueryContext::check`] once per unit rather than per row —
/// blocking operators that drain their (guarded) children inside one
/// `next_row` call still observe cancel within one unit of input.
struct CancelGuard {
    inner: Box<dyn RowStream>,
    query: govern::QueryContext,
    pulls: u64,
}

impl CancelGuard {
    /// One governance unit of row work (matches the batch size).
    const BATCH_ROWS: u64 = 1024;
}

impl RowStream for CancelGuard {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.pulls.is_multiple_of(Self::BATCH_ROWS) {
            if self.pulls > 0 {
                self.query.note_unit();
            }
            self.query.check()?;
        }
        self.pulls += 1;
        self.inner.next_row()
    }
}

fn build_stream_inner(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &ExecContext,
    depth: usize,
) -> Result<Box<dyn RowStream>> {
    Ok(match plan {
        Plan::Scan { table, .. } => {
            let snapshot = catalog.get(table)?.snapshot();
            Box::new(ScanStream { snapshot, chunk: 0, row: 0 })
        }
        Plan::One => Box::new(OneStream { emitted: false }),
        Plan::Filter { input, predicate } => Box::new(FilterStream {
            input: build_stream_at(input, catalog, ctx, depth + 1)?,
            predicate: predicate.clone(),
        }),
        Plan::Project { input, exprs, .. } => Box::new(ProjectStream {
            input: build_stream_at(input, catalog, ctx, depth + 1)?,
            exprs: exprs.clone(),
        }),
        Plan::Join { left, right, kind, on, .. } => {
            let left_cols = left.schema().len();
            let right_cols = right.schema().len();
            let l = build_stream_at(left, catalog, ctx, depth + 1)?;
            let r = build_stream_at(right, catalog, ctx, depth + 1)?;
            join::build_join(l, r, left_cols, right_cols, *kind, on.clone(), ctx)?
        }
        Plan::Aggregate { input, group_by, aggs, .. } => Box::new(aggregate::HashAggregate::new(
            build_stream_at(input, catalog, ctx, depth + 1)?,
            group_by.clone(),
            aggs.clone(),
            ctx.clone(),
        )),
        Plan::Sort { input, keys } => Box::new(sort::ExternalSort::new(
            build_stream_at(input, catalog, ctx, depth + 1)?,
            keys.clone(),
            ctx.clone(),
        )),
        Plan::Limit { input, limit, offset } => Box::new(LimitStream {
            input: build_stream_at(input, catalog, ctx, depth + 1)?,
            remaining: limit.unwrap_or(u64::MAX),
            to_skip: *offset,
        }),
        Plan::UnionAll { inputs } => {
            let streams = inputs
                .iter()
                .map(|p| build_stream_at(p, catalog, ctx, depth + 1))
                .collect::<Result<Vec<_>>>()?;
            Box::new(UnionStream { streams, current: 0 })
        }
        Plan::Alias { input, .. } => build_stream_at(input, catalog, ctx, depth + 1)?,
    })
}

/// Row/time instrumentation wrapper (EXPLAIN ANALYZE).
struct Instrumented {
    inner: Box<dyn RowStream>,
    id: usize,
    stats: Rc<RefCell<Vec<NodeStats>>>,
}

impl RowStream for Instrumented {
    fn next_row(&mut self) -> Result<Option<Row>> {
        let start = Instant::now();
        let out = self.inner.next_row();
        let elapsed = start.elapsed().as_nanos();
        let mut stats = self.stats.borrow_mut();
        let node = &mut stats[self.id];
        node.nanos += elapsed;
        if let Ok(Some(_)) = &out {
            node.rows_out += 1;
        }
        out
    }
}

/// Optimize and fully materialize a plan's output.
pub fn execute_plan(plan: Plan, catalog: &Catalog, ctx: &ExecContext) -> Result<Vec<Row>> {
    let plan = optimizer::optimize(plan);
    let mut stream = build_stream(&plan, catalog, ctx)?;
    let mut rows = Vec::new();
    while let Some(row) = stream.next_row()? {
        rows.push(row);
    }
    Ok(rows)
}

/// Chunk→row adapter over columnar base-table storage: materializes one
/// [`Row`] per pull from the snapshot's column chunks, so every row-only
/// operator works against [`crate::table::Table`] unchanged.
struct ScanStream {
    snapshot: TableSnapshot,
    chunk: usize,
    row: usize,
}

impl RowStream for ScanStream {
    fn next_row(&mut self) -> Result<Option<Row>> {
        let chunks = self.snapshot.chunks();
        while self.chunk < chunks.len() {
            let c = &chunks[self.chunk];
            if self.row < c.rows() {
                let row = c.row(self.row);
                self.row += 1;
                return Ok(Some(row));
            }
            self.chunk += 1;
            self.row = 0;
        }
        Ok(None)
    }
}

struct OneStream {
    emitted: bool,
}

impl RowStream for OneStream {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.emitted {
            Ok(None)
        } else {
            self.emitted = true;
            Ok(Some(Vec::new()))
        }
    }
}

struct FilterStream {
    input: Box<dyn RowStream>,
    predicate: BoundExpr,
}

impl RowStream for FilterStream {
    fn next_row(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next_row()? {
            if self.predicate.eval(&row)?.as_bool()? == Some(true) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct ProjectStream {
    input: Box<dyn RowStream>,
    exprs: Vec<BoundExpr>,
}

impl RowStream for ProjectStream {
    fn next_row(&mut self) -> Result<Option<Row>> {
        match self.input.next_row()? {
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(e.eval(&row)?);
                }
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }
}

struct LimitStream {
    input: Box<dyn RowStream>,
    remaining: u64,
    to_skip: u64,
}

impl RowStream for LimitStream {
    fn next_row(&mut self) -> Result<Option<Row>> {
        while self.to_skip > 0 {
            if self.input.next_row()?.is_none() {
                return Ok(None);
            }
            self.to_skip -= 1;
        }
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next_row()? {
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }
}

struct UnionStream {
    streams: Vec<Box<dyn RowStream>>,
    current: usize,
}

impl RowStream for UnionStream {
    fn next_row(&mut self) -> Result<Option<Row>> {
        while self.current < self.streams.len() {
            if let Some(row) = self.streams[self.current].next_row()? {
                return Ok(Some(row));
            }
            self.current += 1;
        }
        Ok(None)
    }
}

/// A stream over an owned row buffer (used by operators that materialize).
pub struct VecStream {
    rows: std::vec::IntoIter<Row>,
}

impl VecStream {
    /// Stream the given rows in order.
    pub fn new(rows: Vec<Row>) -> Self {
        VecStream { rows: rows.into_iter() }
    }
}

impl RowStream for VecStream {
    fn next_row(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }
}

/// Evaluate a list of key expressions into group keys for hashing.
pub fn eval_keys(exprs: &[BoundExpr], row: &Row) -> Result<Vec<crate::value::GroupKey>> {
    let mut keys = Vec::with_capacity(exprs.len());
    for e in exprs {
        keys.push(e.eval(row)?.group_key());
    }
    Ok(keys)
}

/// Evaluate key expressions into raw values (ordering-based operators).
pub fn eval_values(exprs: &[BoundExpr], row: &Row) -> Result<Vec<Value>> {
    let mut vals = Vec::with_capacity(exprs.len());
    for e in exprs {
        vals.push(e.eval(row)?);
    }
    Ok(vals)
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Wrap literal rows in a stream for operator unit tests.
    pub fn stream_of(rows: Vec<Row>) -> Box<dyn RowStream> {
        Box::new(VecStream::new(rows))
    }

    pub fn ctx() -> ExecContext {
        ExecContext {
            budget: MemoryBudget::unlimited(),
            spill: SpillDir::new().unwrap(),
            parallelism: 1,
            instrument: None,
            query: govern::QueryContext::unbounded(),
        }
    }

    pub fn ctx_with_budget(bytes: usize) -> ExecContext {
        ExecContext {
            budget: MemoryBudget::with_limit(bytes),
            spill: SpillDir::new().unwrap(),
            parallelism: 1,
            instrument: None,
            query: govern::QueryContext::unbounded(),
        }
    }

    pub fn drain(mut s: Box<dyn RowStream>) -> Result<Vec<Row>> {
        let mut rows = Vec::new();
        while let Some(r) = s.next_row()? {
            rows.push(r);
        }
        Ok(rows)
    }

    pub fn int_rows(vals: &[i64]) -> Vec<Row> {
        vals.iter().map(|&v| vec![Value::Int(v)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;
    use crate::ast::BinaryOp;

    #[test]
    fn filter_project_limit_pipeline() {
        let rows = int_rows(&[1, 2, 3, 4, 5]);
        let filter = FilterStream {
            input: stream_of(rows),
            predicate: BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op: BinaryOp::Gt,
                right: Box::new(BoundExpr::Literal(Value::Int(1))),
            },
        };
        let project = ProjectStream {
            input: Box::new(filter),
            exprs: vec![BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op: BinaryOp::Mul,
                right: Box::new(BoundExpr::Literal(Value::Int(10))),
            }],
        };
        let limit = LimitStream { input: Box::new(project), remaining: 2, to_skip: 1 };
        let out = drain(Box::new(limit)).unwrap();
        assert_eq!(out, vec![vec![Value::Int(30)], vec![Value::Int(40)]]);
    }

    #[test]
    fn union_concatenates() {
        let u = UnionStream {
            streams: vec![stream_of(int_rows(&[1])), stream_of(vec![]), stream_of(int_rows(&[2, 3]))],
            current: 0,
        };
        let out = drain(Box::new(u)).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn one_stream_emits_single_empty_row() {
        let out = drain(Box::new(OneStream { emitted: false })).unwrap();
        assert_eq!(out, vec![Vec::<Value>::new()]);
    }
}
