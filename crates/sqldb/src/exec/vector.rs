//! Vectorized (batch-at-a-time) physical execution.
//!
//! This is the default execution path of the engine: instead of pulling one
//! row per virtual call through [`RowStream`], operators exchange columnar
//! [`RowBatch`]es of ~[`BATCH_SIZE`] rows, amortizing dispatch and running
//! the expression kernels of [`crate::vexpr`] over primitive slices. The
//! operator set covers **every plan shape the planner emits**: scan, filter,
//! project, hash join (inner and LEFT OUTER), nested-loop join (cross and
//! non-equi), hash aggregate (including DISTINCT), sort/top-k (see
//! [`super::vsort`]), limit, union, and alias. There is no row-operator
//! fallback left in this pipeline; the row executor survives purely as the
//! reference implementation ([`BatchToRow`]/[`RowToBatch`] remain only as
//! boundary adapters — the result collector in [`crate::db`] and tests).
//! One caveat, standard for vectorized
//! engines: **error detection is batch-granular**. Expressions evaluate over
//! a whole batch before downstream operators see any of it, so a failing row
//! (say `10 / x` with `x = 0`) raises its error even when a downstream
//! `LIMIT` would have stopped the row path before reaching that row.
//!
//! Memory discipline matches the row path: join builds and aggregation
//! tables charge the shared [`MemoryBudget`](crate::storage::budget), and the
//! vectorized aggregate spills partial rows in the same partition format as
//! [`aggregate::HashAggregate`](super::aggregate::HashAggregate), including
//! the recursive re-partition merge. The one deliberate difference: budget
//! checks happen per batch rather than per row, so a table may transiently
//! overshoot its reservation by at most one batch of new groups before it
//! flushes.
//!
//! When [`ExecContext::parallelism`] is greater than one, eligible pipeline
//! segments (scan → filter/project/equi-join-probe chains over a base table,
//! outer probes included) execute morsel-parallel on a worker pool — see
//! [`super::parallel`] — and every pipeline breaker parallelizes its heavy
//! phase: the hash-join build merges per-morsel key evaluations in morsel
//! order, the hash aggregate merges per-worker partial tables (including
//! per-worker spill partitions) at finalize, and the sort merges per-worker
//! sorted runs at the breaker ([`super::vsort`]). `parallelism = 1` takes
//! exactly the sequential code paths below.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use crate::ast::JoinKind;
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::expr::BoundExpr;
use crate::plan::logical::{AggExpr, AggFunc, Plan};
use crate::plan::optimizer::extract_equi_keys;
use crate::storage::budget::{MemoryBudget, Reservation};
use crate::storage::spill::{row_bytes, Row, SpillDir, SpillReader, SpillWriter};
use crate::table::TableSnapshot;
use crate::value::{GroupKey, Value};

use super::aggregate::{Acc, GroupState, HashAggregate, MAX_DEPTH, PARTITIONS};
use super::batch::{BatchBuilder, Column, ColumnRef, RowBatch, BATCH_SIZE};
use super::join::BUILD_OVERDRAFT_ROWS;
use super::parallel::{self, Segment};
use super::{instrument_slot, set_node_label, vsort, ExecContext, NodeStats, RowStream};

/// A pull-based batch iterator. `next_batch` returns `Ok(None)` at end of
/// stream; emitted batches are never empty.
pub trait BatchStream {
    /// Pull the next batch, or `None` at end of stream.
    fn next_batch(&mut self) -> Result<Option<RowBatch>>;
}

/// Build an executable batch stream for `plan`. Base-table snapshots are
/// taken here, so the stream sees a consistent state even if tables change.
pub fn build_batch_stream(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &ExecContext,
) -> Result<Box<dyn BatchStream>> {
    build_batch_stream_at(plan, catalog, ctx, 0)
}

pub(crate) fn build_batch_stream_at(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &ExecContext,
    depth: usize,
) -> Result<Box<dyn BatchStream>> {
    // Reserve this node's stats slot before recursing (pre-order render).
    let slot = instrument_slot(ctx, plan, depth);
    let stream = build_batch_stream_inner(plan, catalog, ctx, depth, slot)?;
    Ok(Box::new(BatchCancelGuard {
        inner: instrument_wrap(stream, slot, ctx),
        query: ctx.query.clone(),
        pulled: false,
    }))
}

/// Per-node cancellation guard: polls [`ExecContext::query`] before every
/// batch this node produces, so a cancel/timeout is observed within one
/// batch at every level of the plan even when a blocking child (sort,
/// aggregate, join build) drains its whole input inside one `next_batch`.
struct BatchCancelGuard {
    inner: Box<dyn BatchStream>,
    query: super::govern::QueryContext,
    pulled: bool,
}

impl BatchStream for BatchCancelGuard {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.pulled {
            self.query.note_unit();
        }
        self.query.check()?;
        self.pulled = true;
        self.inner.next_batch()
    }
}

/// Wrap `stream` with the `EXPLAIN ANALYZE` counter shim when a stats slot
/// was reserved for it.
pub(crate) fn instrument_wrap(
    stream: Box<dyn BatchStream>,
    slot: Option<usize>,
    ctx: &ExecContext,
) -> Box<dyn BatchStream> {
    match (slot, &ctx.instrument) {
        (Some(id), Some(stats)) => Box::new(InstrumentedBatch {
            inner: stream,
            id,
            stats: Rc::clone(stats),
        }),
        _ => stream,
    }
}

fn build_batch_stream_inner(
    plan: &Plan,
    catalog: &Catalog,
    ctx: &ExecContext,
    depth: usize,
    slot: Option<usize>,
) -> Result<Box<dyn BatchStream>> {
    // Morsel-parallel pipelines: a filter/project/equi-join chain rooted in
    // a base-table scan runs on a worker pool, with output batches gathered
    // back in morsel order (so downstream consumers see the sequential
    // order). Single chunks and `parallelism = 1` use the operators below.
    if matches!(plan, Plan::Filter { .. } | Plan::Project { .. } | Plan::Join { .. })
        && parallel::parallel_eligible(plan, catalog, ctx)
    {
        let segment = parallel::build_segment(plan, catalog, ctx, depth, slot)?;
        return parallel::spawn_pipeline(segment, ctx, slot);
    }
    Ok(match plan {
        Plan::Scan { table, .. } => {
            let snapshot = catalog.get(table)?.snapshot();
            Box::new(BatchScan { snapshot, next_chunk: 0 })
        }
        Plan::One => Box::new(OneBatch { emitted: false }),
        Plan::Filter { input, predicate } => Box::new(BatchFilter {
            input: build_batch_stream_at(input, catalog, ctx, depth + 1)?,
            predicate: predicate.clone(),
        }),
        Plan::Project { input, exprs, .. } => Box::new(BatchProject {
            input: build_batch_stream_at(input, catalog, ctx, depth + 1)?,
            exprs: exprs.clone(),
        }),
        Plan::Join { left, right, kind, on, .. } => {
            if *kind == JoinKind::Right {
                return Err(Error::Plan(
                    "internal: RIGHT JOIN must be rewritten at plan time".into(),
                ));
            }
            let left_cols = left.schema().len();
            let right_cols = right.schema().len();
            let outer = *kind == JoinKind::Left;
            // Decide the strategy before building children (each child
            // registers exactly one instrumentation slot).
            let equi = match (kind, on) {
                (JoinKind::Inner | JoinKind::Left, Some(cond)) => {
                    let (lk, rk, residual) = extract_equi_keys(cond.clone(), left_cols);
                    if lk.is_empty() {
                        None
                    } else {
                        Some((lk, rk, residual))
                    }
                }
                _ => None,
            };
            match equi {
                // Equi-keys (inner or left outer) take the vectorized probe.
                Some((lk, rk, residual)) => {
                    set_node_label(ctx, slot, format!("HashJoin {kind:?}"));
                    let l = build_batch_stream_at(left, catalog, ctx, depth + 1)?;
                    let (table, reservations) = parallel::build_join_table(
                        right,
                        catalog,
                        ctx,
                        depth + 1,
                        lk,
                        rk,
                        residual,
                        right_cols,
                    )?;
                    Box::new(BatchHashJoin::new(l, table, reservations, outer))
                }
                // Cross and non-equi conditions run the vectorized nested
                // loop with batched predicate evaluation.
                None => {
                    if outer && on.is_none() {
                        return Err(Error::Unsupported(
                            "LEFT JOIN requires an ON condition".into(),
                        ));
                    }
                    set_node_label(ctx, slot, format!("NestedLoopJoin {kind:?}"));
                    let l = build_batch_stream_at(left, catalog, ctx, depth + 1)?;
                    let r = build_batch_stream_at(right, catalog, ctx, depth + 1)?;
                    Box::new(BatchNestedLoopJoin::new(
                        l,
                        r,
                        left_cols,
                        right_cols,
                        on.clone(),
                        outer,
                        ctx,
                    )?)
                }
            }
        }
        Plan::Aggregate { input, group_by, aggs, .. } => {
            set_node_label(
                ctx,
                slot,
                format!("HashAggregate [{} keys, {} aggs]", group_by.len(), aggs.len()),
            );
            if parallel::agg_input_eligible(input, catalog, ctx) {
                // Morsel-parallel consume: workers run the input segment and
                // build per-worker partial tables, merged at finalize.
                // DISTINCT aggregates participate: per-worker distinct sets
                // merge by union, and their spill partials carry the sets.
                let segment = parallel::descend_segment(input, catalog, ctx, depth)?;
                let workers = ctx.parallelism.min(segment.num_morsels());
                parallel::note_parallel(ctx, slot, workers, segment.num_morsels());
                return Ok(Box::new(BatchHashAggregate::new_parallel(
                    segment,
                    group_by.clone(),
                    aggs.clone(),
                    ctx.clone(),
                )));
            }
            let child = build_batch_stream_at(input, catalog, ctx, depth + 1)?;
            Box::new(BatchHashAggregate::new(
                child,
                group_by.clone(),
                aggs.clone(),
                ctx.clone(),
            ))
        }
        Plan::Sort { input, keys } => {
            return vsort::build_sort_stream(input, keys, None, catalog, ctx, depth, slot);
        }
        Plan::Limit { input, limit, offset } => {
            // `ORDER BY … LIMIT k`: a small k turns the sort into a top-k
            // heap — the limit node stays (it applies the offset), but the
            // sort below only ever retains k rows.
            if let (Some(l), Plan::Sort { input: sort_input, keys }) =
                (*limit, input.as_ref())
            {
                let k = l.saturating_add(*offset);
                if k > 0 && k <= vsort::TOPK_MAX_ROWS as u64 {
                    let sort_slot = instrument_slot(ctx, input, depth + 1);
                    let sorted = vsort::build_sort_stream(
                        sort_input,
                        keys,
                        Some(k as usize),
                        catalog,
                        ctx,
                        depth + 1,
                        sort_slot,
                    )?;
                    return Ok(Box::new(BatchLimit {
                        input: instrument_wrap(sorted, sort_slot, ctx),
                        remaining: l,
                        to_skip: *offset,
                    }));
                }
            }
            Box::new(BatchLimit {
                input: build_batch_stream_at(input, catalog, ctx, depth + 1)?,
                remaining: limit.unwrap_or(u64::MAX),
                to_skip: *offset,
            })
        }
        Plan::UnionAll { inputs } => {
            let streams = inputs
                .iter()
                .map(|p| build_batch_stream_at(p, catalog, ctx, depth + 1))
                .collect::<Result<Vec<_>>>()?;
            Box::new(BatchUnion { streams, current: 0 })
        }
        Plan::Alias { input, .. } => build_batch_stream_at(input, catalog, ctx, depth + 1)?,
    })
}

/// Batch/row/time instrumentation wrapper (`EXPLAIN ANALYZE`).
struct InstrumentedBatch {
    inner: Box<dyn BatchStream>,
    id: usize,
    stats: Rc<std::cell::RefCell<Vec<NodeStats>>>,
}

impl BatchStream for InstrumentedBatch {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        let start = Instant::now();
        let out = self.inner.next_batch();
        let elapsed = start.elapsed().as_nanos();
        let mut stats = self.stats.borrow_mut();
        let node = &mut stats[self.id];
        node.nanos += elapsed;
        if let Ok(Some(batch)) = &out {
            node.rows_out += batch.num_rows() as u64;
            node.batches_out += 1;
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Boundary adapters (pipeline edges only — no operator runs behind these)
// ---------------------------------------------------------------------------

/// Expose a [`BatchStream`] as a [`RowStream`]. Since every operator now has
/// a vectorized implementation, this survives only at the pipeline boundary:
/// the result collector in [`crate::db`] materializes rows through it, and
/// tests use it to compare paths.
pub struct BatchToRow {
    input: Box<dyn BatchStream>,
    current: std::vec::IntoIter<Row>,
}

impl BatchToRow {
    /// Wrap `input` for row-at-a-time consumption.
    pub fn new(input: Box<dyn BatchStream>) -> Self {
        BatchToRow { input, current: Vec::new().into_iter() }
    }
}

impl RowStream for BatchToRow {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.current.next() {
                return Ok(Some(row));
            }
            match self.input.next_batch()? {
                Some(batch) => self.current = batch.into_rows().into_iter(),
                None => return Ok(None),
            }
        }
    }
}

/// Expose a [`RowStream`] as a [`BatchStream`] (test harnesses feed literal
/// row sets into batch operators through this; the planner never emits it).
pub struct RowToBatch {
    input: Box<dyn RowStream>,
    done: bool,
}

impl RowToBatch {
    /// Wrap `input` for batch-at-a-time consumption.
    pub fn new(input: Box<dyn RowStream>) -> Self {
        RowToBatch { input, done: false }
    }
}

impl BatchStream for RowToBatch {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.done {
            return Ok(None);
        }
        let mut rows = Vec::with_capacity(BATCH_SIZE);
        while rows.len() < BATCH_SIZE {
            match self.input.next_row()? {
                Some(row) => rows.push(row),
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBatch::from_owned_rows(rows)))
        }
    }
}

// ---------------------------------------------------------------------------
// Leaf and stateless operators
// ---------------------------------------------------------------------------

/// Zero-copy base-table scan: each stored chunk becomes one [`RowBatch`]
/// whose columns **are** the table's chunk columns (`Arc` clones — no
/// row→column transpose, no per-value copy). The snapshot pins the chunks,
/// so scans stay consistent under concurrent inserts/deletes.
struct BatchScan {
    snapshot: TableSnapshot,
    next_chunk: usize,
}

impl BatchStream for BatchScan {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        let chunks = self.snapshot.chunks();
        if self.next_chunk >= chunks.len() {
            return Ok(None);
        }
        let chunk = &chunks[self.next_chunk];
        self.next_chunk += 1;
        Ok(Some(RowBatch::from_shared(chunk.columns().to_vec())))
    }
}

struct OneBatch {
    emitted: bool,
}

impl BatchStream for OneBatch {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.emitted {
            Ok(None)
        } else {
            self.emitted = true;
            Ok(Some(RowBatch::zero_columns(1)))
        }
    }
}

/// Row indices of `col` whose truthiness is exactly `TRUE` (NULL filters out).
pub(crate) fn truthy_selection(col: &Column) -> Result<Vec<u32>> {
    Ok(match col {
        Column::Int(v) => v
            .iter()
            .enumerate()
            .filter(|(_, &x)| x != 0)
            .map(|(i, _)| i as u32)
            .collect(),
        Column::Float(v) => v
            .iter()
            .enumerate()
            .filter(|(_, &x)| x != 0.0)
            .map(|(i, _)| i as u32)
            .collect(),
        Column::Generic(vals) => {
            let mut sel = Vec::new();
            for (i, v) in vals.iter().enumerate() {
                if v.as_bool()? == Some(true) {
                    sel.push(i as u32);
                }
            }
            sel
        }
    })
}

struct BatchFilter {
    input: Box<dyn BatchStream>,
    predicate: BoundExpr,
}

impl BatchStream for BatchFilter {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        while let Some(batch) = self.input.next_batch()? {
            let mask = self.predicate.eval_batch(&batch)?;
            let sel = truthy_selection(&mask)?;
            if sel.is_empty() {
                continue;
            }
            if sel.len() == batch.num_rows() {
                return Ok(Some(batch));
            }
            return Ok(Some(batch.gather(&sel)));
        }
        Ok(None)
    }
}

struct BatchProject {
    input: Box<dyn BatchStream>,
    exprs: Vec<BoundExpr>,
}

impl BatchStream for BatchProject {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        match self.input.next_batch()? {
            Some(batch) => {
                let cols = self
                    .exprs
                    .iter()
                    .map(|e| e.eval_batch(&batch))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Some(RowBatch::from_shared(cols)))
            }
            None => Ok(None),
        }
    }
}

struct BatchLimit {
    input: Box<dyn BatchStream>,
    remaining: u64,
    to_skip: u64,
}

impl BatchStream for BatchLimit {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        while let Some(mut batch) = self.input.next_batch()? {
            if self.to_skip > 0 {
                let skip = (self.to_skip).min(batch.num_rows() as u64) as usize;
                batch.skip(skip);
                self.to_skip -= skip as u64;
            }
            if batch.is_empty() {
                continue;
            }
            if (batch.num_rows() as u64) > self.remaining {
                batch.truncate(self.remaining as usize);
            }
            self.remaining -= batch.num_rows() as u64;
            return Ok(Some(batch));
        }
        Ok(None)
    }
}

struct BatchUnion {
    streams: Vec<Box<dyn BatchStream>>,
    current: usize,
}

impl BatchStream for BatchUnion {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        while self.current < self.streams.len() {
            if let Some(batch) = self.streams[self.current].next_batch()? {
                return Ok(Some(batch));
            }
            self.current += 1;
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// Vectorized hash join (inner, equi-keys)
// ---------------------------------------------------------------------------

/// Join-key hash table, specialized for the single-key case (the gate join
/// `H.in_s = (T0.s & mask)` has exactly one key) to skip a `Vec` allocation
/// per probed row.
enum KeyMap {
    Single(HashMap<GroupKey, Vec<u32>>),
    Multi(HashMap<Vec<GroupKey>, Vec<u32>>),
}

/// The immutable result of a hash-join build: the kept build rows plus the
/// key → row-index table, with the probe-side key expressions and residual
/// predicate attached. Once built it is read-only, so morsel workers probe
/// it concurrently through a plain `Arc` (see [`super::parallel`]).
pub(crate) struct JoinTable {
    build: RowBatch,
    /// Width of the build side's schema. Carried explicitly because an empty
    /// build produces a zero-column `RowBatch`, and outer-join null padding
    /// must still widen unmatched probe rows by the full build arity.
    build_cols: usize,
    table: KeyMap,
    left_keys: Vec<BoundExpr>,
    residual: Option<BoundExpr>,
}

/// Accumulates build rows into a [`JoinTable`]. Insertion order defines the
/// match order probes observe, so the parallel build feeds per-morsel
/// results through this in morsel order — reproducing the sequential
/// structure exactly.
pub(crate) struct JoinTableBuilder {
    kept: Vec<Row>,
    table: KeyMap,
    overdraft_rows: usize,
}

impl JoinTableBuilder {
    /// An empty builder for `num_keys` join keys.
    pub(crate) fn new(num_keys: usize) -> Self {
        JoinTableBuilder {
            kept: Vec::new(),
            table: if num_keys == 1 {
                KeyMap::Single(HashMap::new())
            } else {
                KeyMap::Multi(HashMap::new())
            },
            overdraft_rows: 0,
        }
    }

    /// Insert every non-NULL-key row of `batch` (whose join keys are already
    /// evaluated in `key_cols`), charging `reservation` per kept row. A
    /// bounded overdraft is tolerated, matching the row join's build phase.
    pub(crate) fn insert_batch(
        &mut self,
        batch: &RowBatch,
        key_cols: &[ColumnRef],
        reservation: &mut Reservation,
        budget: &MemoryBudget,
    ) -> Result<()> {
        for i in 0..batch.num_rows() {
            let keys: Vec<GroupKey> = key_cols.iter().map(|c| c.group_key_at(i)).collect();
            // SQL semantics: NULL keys never match.
            if keys.iter().any(|k| matches!(k, GroupKey::Null)) {
                continue;
            }
            let row = batch.row(i);
            let bytes =
                row_bytes(&row) + keys.iter().map(GroupKey::heap_bytes).sum::<usize>();
            if !reservation.try_grow(bytes) {
                self.overdraft_rows += 1;
                if self.overdraft_rows > BUILD_OVERDRAFT_ROWS {
                    return Err(Error::OutOfMemory {
                        requested: bytes,
                        budget: budget.limit(),
                    });
                }
            }
            let idx = self.kept.len() as u32;
            self.kept.push(row);
            match &mut self.table {
                // SAFETY of expect: `KeyMap::Single` is only constructed for
                // one-column join keys, and every caller builds `keys` with
                // exactly one entry per key column.
                KeyMap::Single(m) => m
                    .entry(keys.into_iter().next().expect("single key"))
                    .or_default()
                    .push(idx),
                KeyMap::Multi(m) => m.entry(keys).or_default().push(idx),
            }
        }
        Ok(())
    }

    /// Seal the builder into an immutable, probe-ready [`JoinTable`].
    pub(crate) fn finish(
        self,
        left_keys: Vec<BoundExpr>,
        residual: Option<BoundExpr>,
        build_cols: usize,
    ) -> JoinTable {
        JoinTable {
            build: RowBatch::from_owned_rows(self.kept),
            build_cols,
            table: self.table,
            left_keys,
            residual,
        }
    }
}

impl JoinTable {
    /// Sequential build: drain `build_input` into the table. Returns the
    /// table plus the reservation holding its memory charge.
    pub(crate) fn build_from_stream(
        mut build_input: Box<dyn BatchStream>,
        left_keys: Vec<BoundExpr>,
        right_keys: Vec<BoundExpr>,
        residual: Option<BoundExpr>,
        build_cols: usize,
        ctx: &ExecContext,
    ) -> Result<(JoinTable, Reservation)> {
        let mut builder = JoinTableBuilder::new(right_keys.len());
        let mut reservation = Reservation::empty(&ctx.budget);
        while let Some(batch) = build_input.next_batch()? {
            let key_cols = right_keys
                .iter()
                .map(|e| e.eval_batch(&batch))
                .collect::<Result<Vec<_>>>()?;
            // Fail grant admission up front when this build batch could not
            // fit the query's memory grant (satellite of the bounded
            // build-overdraft rule: the grant is a hard ceiling, not a floor
            // to overdraft toward).
            let est: usize = batch.columns().iter().map(|c| c.heap_bytes()).sum();
            ctx.query.admit(reservation.bytes().saturating_add(est))?;
            builder.insert_batch(&batch, &key_cols, &mut reservation, &ctx.budget)?;
        }
        Ok((builder.finish(left_keys, residual, build_cols), reservation))
    }

    /// Evaluate the probe-side key expressions over a probe batch.
    pub(crate) fn eval_probe_keys(&self, batch: &RowBatch) -> Result<Vec<ColumnRef>> {
        self.left_keys.iter().map(|e| e.eval_batch(batch)).collect()
    }

    fn matches_of(&self, key_cols: &[ColumnRef], i: usize) -> Option<&[u32]> {
        match &self.table {
            KeyMap::Single(m) => {
                let k = key_cols[0].group_key_at(i);
                if matches!(k, GroupKey::Null) {
                    return None;
                }
                m.get(&k).map(Vec::as_slice)
            }
            KeyMap::Multi(m) => {
                let keys: Vec<GroupKey> =
                    key_cols.iter().map(|c| c.group_key_at(i)).collect();
                if keys.iter().any(|k| matches!(k, GroupKey::Null)) {
                    return None;
                }
                m.get(&keys).map(Vec::as_slice)
            }
        }
    }

    /// Probe one whole batch, emitting joined batches bounded near
    /// [`BATCH_SIZE`] pairs each (the morsel workers' probe entry point —
    /// same pair order and batch boundaries as the streaming operator).
    /// With `outer` set, probe rows that never produce a residual-passing
    /// pair are appended as one null-padded batch — the left-outer match
    /// bitmap lives entirely within the probe batch, which is what makes
    /// outer probes safe to run morsel-parallel.
    pub(crate) fn probe_batch(&self, batch: &RowBatch, outer: bool) -> Result<Vec<RowBatch>> {
        let key_cols = self.eval_probe_keys(batch)?;
        let mut matched = vec![false; if outer { batch.num_rows() } else { 0 }];
        let mut out = Vec::new();
        let mut i = 0;
        while i < batch.num_rows() {
            let mut probe_sel: Vec<u32> = Vec::new();
            let mut build_sel: Vec<u32> = Vec::new();
            while i < batch.num_rows() && probe_sel.len() < BATCH_SIZE {
                if let Some(matches) = self.matches_of(&key_cols, i) {
                    for &b in matches {
                        probe_sel.push(i as u32);
                        build_sel.push(b);
                    }
                }
                i += 1;
            }
            if probe_sel.is_empty() {
                continue;
            }
            let joined =
                RowBatch::hstack(batch.gather(&probe_sel), self.build.gather(&build_sel));
            match self.residual_selection(&joined)? {
                None => {
                    if outer {
                        for &p in &probe_sel {
                            matched[p as usize] = true;
                        }
                    }
                    out.push(joined);
                }
                Some(sel) => {
                    if outer {
                        for &j in &sel {
                            matched[probe_sel[j as usize] as usize] = true;
                        }
                    }
                    if sel.len() == joined.num_rows() {
                        out.push(joined);
                    } else if !sel.is_empty() {
                        out.push(joined.gather(&sel));
                    }
                }
            }
        }
        if outer {
            let unmatched: Vec<u32> = (0..batch.num_rows() as u32)
                .filter(|&p| !matched[p as usize])
                .collect();
            if !unmatched.is_empty() {
                out.push(self.null_pad(batch, &unmatched));
            }
        }
        Ok(out)
    }

    /// Row indices of `joined` passing the residual predicate, or `None`
    /// when there is no residual (every row passes).
    fn residual_selection(&self, joined: &RowBatch) -> Result<Option<Vec<u32>>> {
        match &self.residual {
            Some(pred) => {
                let mask = pred.eval_batch(joined)?;
                Ok(Some(truthy_selection(&mask)?))
            }
            None => Ok(None),
        }
    }

    /// The probe rows at `unmatched`, each widened with NULL for every build
    /// column (left-outer non-match output).
    fn null_pad(&self, probe: &RowBatch, unmatched: &[u32]) -> RowBatch {
        let pad = RowBatch::from_columns(
            (0..self.build_cols)
                .map(|_| Column::splat(&Value::Null, unmatched.len()))
                .collect(),
        );
        RowBatch::hstack(probe.gather(unmatched), pad)
    }
}

/// Hash join over equi-keys: builds on the right input, probes
/// batch-at-a-time with the left. Covers inner and LEFT OUTER semantics
/// (RIGHT OUTER arrives as a planner-rewritten left join); under an outer
/// probe the operator keeps a per-probe-batch match bitmap and emits one
/// null-padded batch of never-matched probe rows after each batch drains.
struct BatchHashJoin {
    probe: Box<dyn BatchStream>,
    table: Arc<JoinTable>,
    /// LEFT OUTER: unmatched probe rows survive, null-padded.
    outer: bool,
    pending: Option<PendingProbe>,
    /// Memory charges for the build table (freed when the join drops).
    _reservations: Vec<Reservation>,
}

/// A probe batch still being drained (skewed keys can fan one probe batch
/// out into many output batches): the batch, its evaluated key columns, the
/// next probe row to resume from, and — for outer joins — which probe rows
/// have produced at least one residual-passing pair so far.
struct PendingProbe {
    batch: RowBatch,
    key_cols: Vec<ColumnRef>,
    next: usize,
    matched: Vec<bool>,
}

impl BatchHashJoin {
    fn new(
        probe: Box<dyn BatchStream>,
        table: Arc<JoinTable>,
        reservations: Vec<Reservation>,
        outer: bool,
    ) -> Self {
        BatchHashJoin { probe, table, outer, pending: None, _reservations: reservations }
    }
}

impl BatchStream for BatchHashJoin {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        loop {
            // Get a probe batch: resume a partially drained one, else pull.
            let mut p = match self.pending.take() {
                Some(p) => p,
                None => match self.probe.next_batch()? {
                    Some(batch) => {
                        let key_cols = self.table.eval_probe_keys(&batch)?;
                        let matched =
                            vec![false; if self.outer { batch.num_rows() } else { 0 }];
                        PendingProbe { batch, key_cols, next: 0, matched }
                    }
                    None => return Ok(None),
                },
            };
            // Fully scanned: under outer semantics the batch still owes its
            // null-padded non-matches, emitted as one final batch.
            if p.next >= p.batch.num_rows() {
                if self.outer {
                    let unmatched: Vec<u32> = (0..p.batch.num_rows() as u32)
                        .filter(|&i| !p.matched[i as usize])
                        .collect();
                    if !unmatched.is_empty() {
                        return Ok(Some(self.table.null_pad(&p.batch, &unmatched)));
                    }
                }
                continue;
            }
            // Selection vectors pairing probe rows with matching build rows.
            // Stop at ~BATCH_SIZE output pairs so a skewed many-to-many key
            // cannot make one output batch arbitrarily large; the probe
            // position is saved and resumed on the next call.
            let mut probe_sel: Vec<u32> = Vec::new();
            let mut build_sel: Vec<u32> = Vec::new();
            let mut i = p.next;
            while i < p.batch.num_rows() && probe_sel.len() < BATCH_SIZE {
                if let Some(matches) = self.table.matches_of(&p.key_cols, i) {
                    for &b in matches {
                        probe_sel.push(i as u32);
                        build_sel.push(b);
                    }
                }
                i += 1;
            }
            p.next = i;
            let out = if probe_sel.is_empty() {
                None
            } else {
                let joined = RowBatch::hstack(
                    p.batch.gather(&probe_sel),
                    self.table.build.gather(&build_sel),
                );
                match self.table.residual_selection(&joined)? {
                    None => {
                        if self.outer {
                            for &pi in &probe_sel {
                                p.matched[pi as usize] = true;
                            }
                        }
                        Some(joined)
                    }
                    Some(sel) => {
                        if self.outer {
                            for &j in &sel {
                                p.matched[probe_sel[j as usize] as usize] = true;
                            }
                        }
                        if sel.len() == joined.num_rows() {
                            Some(joined)
                        } else if sel.is_empty() {
                            None
                        } else {
                            Some(joined.gather(&sel))
                        }
                    }
                }
            };
            // Keep the batch pending while rows remain to scan, or while an
            // outer batch still owes its pad pass.
            if p.next < p.batch.num_rows() || self.outer {
                self.pending = Some(p);
            }
            if let Some(b) = out {
                return Ok(Some(b));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized nested-loop join (cross, non-equi, outer non-equi)
// ---------------------------------------------------------------------------

/// Nested-loop join for the shapes the hash join cannot take: cross joins
/// and non-equi `ON` conditions, inner or LEFT OUTER. The right side is
/// materialized once as columnar blocks; for each probe row the condition is
/// evaluated with the [`BoundExpr::eval_batch`] kernels over one whole block
/// at a time (the probe row's values splatted across the block), so the
/// predicate runs vectorized along the build dimension. Output accumulates
/// columnar in a [`BatchBuilder`] and emits near-[`BATCH_SIZE`] batches.
struct BatchNestedLoopJoin {
    probe: Box<dyn BatchStream>,
    /// The materialized right side, kept in its original batch blocks.
    blocks: Vec<RowBatch>,
    /// `None` for cross joins (every pair passes).
    condition: Option<BoundExpr>,
    /// LEFT OUTER: probe rows with no passing pair survive, null-padded.
    outer: bool,
    left_cols: usize,
    right_cols: usize,
    /// Probe batch being drained, resumable at *block* granularity so a
    /// single probe row joining a large build side still emits bounded
    /// batches: (batch, probe row, next build block, row matched so far).
    pending: Option<(RowBatch, usize, usize, bool)>,
    out: BatchBuilder,
    done: bool,
    /// Per-block cancellation checks: one probe row crossing a huge build
    /// side must observe cancel without finishing the whole sweep.
    query: super::govern::QueryContext,
    /// Memory charge for the materialized right side.
    _reservation: Reservation,
}

impl BatchNestedLoopJoin {
    fn new(
        probe: Box<dyn BatchStream>,
        mut build: Box<dyn BatchStream>,
        left_cols: usize,
        right_cols: usize,
        condition: Option<BoundExpr>,
        outer: bool,
        ctx: &ExecContext,
    ) -> Result<Self> {
        // Materialize the build side under the shared budget, with the same
        // bounded working-set floor as every other build phase (batch
        // granularity: the batch that overflows the floor fails the build).
        let mut blocks = Vec::new();
        let mut reservation = Reservation::empty(&ctx.budget);
        let mut overdraft_rows = 0usize;
        while let Some(batch) = build.next_batch()? {
            let bytes: usize = batch.columns().iter().map(|c| c.heap_bytes()).sum();
            // Fail grant admission before touching the ledger: a build side
            // that could never fit this query's memory grant is rejected
            // outright instead of overdrafting toward it.
            ctx.query.admit(reservation.bytes().saturating_add(bytes))?;
            if !reservation.try_grow(bytes) {
                overdraft_rows += batch.num_rows();
                if overdraft_rows > BUILD_OVERDRAFT_ROWS {
                    return Err(Error::OutOfMemory {
                        requested: bytes,
                        budget: ctx.budget.limit(),
                    });
                }
            }
            blocks.push(batch);
        }
        Ok(BatchNestedLoopJoin {
            probe,
            blocks,
            condition,
            outer,
            left_cols,
            right_cols,
            pending: None,
            out: BatchBuilder::new(left_cols + right_cols),
            done: false,
            query: ctx.query.clone(),
            _reservation: reservation,
        })
    }

    /// Join probe row `i` of `batch` against build blocks starting at
    /// `*block`, appending passing pairs (and the outer pad once all blocks
    /// are done and none passed) to the output. Stops early — returning
    /// `false` with `*block`/`*matched` positioned for resumption — once
    /// the output builder reaches [`BATCH_SIZE`], so one probe row joining
    /// a large build side cannot balloon a single output batch.
    fn join_row(
        &mut self,
        batch: &RowBatch,
        i: usize,
        block: &mut usize,
        matched: &mut bool,
    ) -> Result<bool> {
        let probe_vals: Vec<Value> =
            (0..self.left_cols).map(|c| batch.column(c).value_at(i)).collect();
        while *block < self.blocks.len() {
            if self.out.num_rows() >= BATCH_SIZE {
                return Ok(false);
            }
            self.query.check()?;
            let bi = *block;
            *block += 1;
            let n = self.blocks[bi].num_rows();
            match &self.condition {
                Some(cond) => {
                    // Splat the probe row across the block and run the
                    // batched kernels over the combined schema.
                    let mut cols: Vec<ColumnRef> =
                        Vec::with_capacity(self.left_cols + self.right_cols);
                    for v in &probe_vals {
                        cols.push(Arc::new(Column::splat(v, n)));
                    }
                    cols.extend(self.blocks[bi].columns().iter().cloned());
                    let combined = RowBatch::from_shared(cols);
                    let mask = cond.eval_batch(&combined)?;
                    let sel = truthy_selection(&mask)?;
                    if sel.is_empty() {
                        continue;
                    }
                    *matched = true;
                    for (c, v) in probe_vals.iter().enumerate() {
                        self.out.column_mut(c).push_n(v, sel.len());
                    }
                    for c in 0..self.right_cols {
                        let gathered = self.blocks[bi].column(c).gather(&sel);
                        self.out.column_mut(self.left_cols + c).extend_from(&gathered);
                    }
                    self.out.add_rows(sel.len());
                }
                None => {
                    // Cross join: every pair passes, no gather needed.
                    *matched = true;
                    for (c, v) in probe_vals.iter().enumerate() {
                        self.out.column_mut(c).push_n(v, n);
                    }
                    for c in 0..self.right_cols {
                        let dst = self.out.column_mut(self.left_cols + c);
                        dst.extend_from(self.blocks[bi].column(c));
                    }
                    self.out.add_rows(n);
                }
            }
        }
        if self.outer && !*matched {
            for (c, v) in probe_vals.iter().enumerate() {
                self.out.column_mut(c).push_n(v, 1);
            }
            for c in 0..self.right_cols {
                self.out.column_mut(self.left_cols + c).push_n(&Value::Null, 1);
            }
            self.out.add_rows(1);
        }
        Ok(true)
    }
}

impl BatchStream for BatchNestedLoopJoin {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        loop {
            if self.out.num_rows() >= BATCH_SIZE || (self.done && !self.out.is_empty()) {
                return Ok(Some(self.out.take()));
            }
            if self.done {
                return Ok(None);
            }
            let (batch, mut row, mut block, mut matched) = match self.pending.take() {
                Some(p) => p,
                None => match self.probe.next_batch()? {
                    Some(b) => (b, 0, 0, false),
                    None => {
                        self.done = true;
                        continue;
                    }
                },
            };
            while row < batch.num_rows() && self.out.num_rows() < BATCH_SIZE {
                if self.join_row(&batch, row, &mut block, &mut matched)? {
                    row += 1;
                    block = 0;
                    matched = false;
                }
            }
            if row < batch.num_rows() {
                self.pending = Some((batch, row, block, matched));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized hash aggregate
// ---------------------------------------------------------------------------

/// In-memory aggregation table. `Fast` is the gate-application specialization
/// — single `INTEGER` group key, all aggregates `SUM` over `DOUBLE` lanes —
/// which keeps accumulators in flat `f64` arrays; anything else (or any batch
/// whose lanes don't qualify) lives in the generic [`Acc`] table.
pub(crate) enum AggTable {
    Fast {
        map: HashMap<i64, u32>,
        keys: Vec<i64>,
        /// `sums[agg][group]` running totals.
        sums: Vec<Vec<f64>>,
    },
    Generic(HashMap<Vec<GroupKey>, GroupState>),
}

/// The shareable (`Send + Sync`) description of one aggregation: group-by
/// keys, aggregate expressions, and the consume-phase update/flush machinery.
/// The sequential operator uses it directly; morsel workers run the same
/// methods against per-worker tables, writers, and reservations.
pub(crate) struct AggCore {
    group_by: Vec<BoundExpr>,
    aggs: Vec<AggExpr>,
    /// Static eligibility for the fast table (per-batch lanes still checked).
    fast_eligible: bool,
    /// Bytes one fast-table group charges (mirrors `entry_bytes` for a
    /// one-`INTEGER`-key entry with plain accumulators).
    fast_bytes: usize,
}

/// One worker's partial aggregation result: its in-memory table, any spill
/// partitions it wrote, the reservation charging its memory, and how many
/// input rows it saw (for the empty-input global-aggregate rule).
pub(crate) struct WorkerAgg {
    pub(crate) table: AggTable,
    pub(crate) writers: Option<Vec<SpillWriter>>,
    pub(crate) reservation: Reservation,
    pub(crate) rows_seen: u64,
}

impl AggCore {
    pub(crate) fn new(group_by: Vec<BoundExpr>, aggs: Vec<AggExpr>) -> Self {
        let fast_eligible = group_by.len() == 1
            && !aggs.is_empty()
            && aggs
                .iter()
                .all(|a| a.func == AggFunc::Sum && !a.distinct && a.arg.is_some());
        let fast_bytes = HashAggregate::entry_bytes(
            &[Value::Int(0)],
            &aggs.iter().map(Acc::new).collect::<Vec<_>>(),
        );
        AggCore { group_by, aggs, fast_eligible, fast_bytes }
    }

    pub(crate) fn new_table(&self) -> AggTable {
        if self.fast_eligible {
            AggTable::Fast {
                map: HashMap::new(),
                keys: Vec::new(),
                sums: vec![Vec::new(); self.aggs.len()],
            }
        } else {
            AggTable::Generic(HashMap::new())
        }
    }

    /// Demote the fast table into generic [`Acc`] form (a batch arrived whose
    /// lanes don't qualify — e.g. `HUGEINT` indices past 63 qubits).
    fn demote(table: &mut AggTable) {
        if let AggTable::Fast { keys, sums, .. } = table {
            let mut map: HashMap<Vec<GroupKey>, GroupState> = HashMap::new();
            for (g, &k) in keys.iter().enumerate() {
                let accs: Vec<Acc> = sums
                    .iter()
                    .map(|per_agg| Acc::Sum(Some(Value::Float(per_agg[g]))))
                    .collect();
                map.insert(vec![GroupKey::Int(k)], (vec![Value::Int(k)], accs));
            }
            *table = AggTable::Generic(map);
        }
    }

    /// Aggregate one input batch into `table`, charging `reservation` per new
    /// group. Returns `true` when the reservation could not cover every new
    /// group (the caller should flush).
    pub(crate) fn update_batch(
        &self,
        batch: &RowBatch,
        table: &mut AggTable,
        reservation: &mut Reservation,
    ) -> Result<bool> {
        let key_cols = self
            .group_by
            .iter()
            .map(|e| e.eval_batch(batch))
            .collect::<Result<Vec<_>>>()?;
        let arg_cols: Vec<Option<ColumnRef>> = self
            .aggs
            .iter()
            .map(|a| a.arg.as_ref().map(|e| e.eval_batch(batch)).transpose())
            .collect::<Result<Vec<_>>>()?;

        // Fast lane: single Int key column, every argument a Float lane.
        let fast_ok = matches!(&table, AggTable::Fast { .. })
            && matches!(&*key_cols[0], Column::Int(_))
            && arg_cols.iter().all(|c| matches!(c.as_deref(), Some(Column::Float(_))));

        if fast_ok {
            let AggTable::Fast { map, keys, sums } = table else {
                unreachable!("fast_ok checked the variant");
            };
            let Column::Int(kv) = &*key_cols[0] else { unreachable!() };
            let argv: Vec<&[f64]> = arg_cols
                .iter()
                .map(|c| match c.as_deref() {
                    Some(Column::Float(v)) => v.as_slice(),
                    _ => unreachable!("fast_ok checked the lanes"),
                })
                .collect();
            let mut over = false;
            for i in 0..kv.len() {
                let g = match map.entry(kv[i]) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let g = keys.len() as u32;
                        e.insert(g);
                        keys.push(kv[i]);
                        for per_agg in sums.iter_mut() {
                            per_agg.push(0.0);
                        }
                        over |= !reservation.try_grow(self.fast_bytes);
                        g
                    }
                };
                for (a, vals) in argv.iter().enumerate() {
                    sums[a][g as usize] += vals[i];
                }
            }
            Ok(over)
        } else {
            Self::demote(table);
            self.update_generic(batch, &key_cols, &arg_cols, table, reservation)
        }
    }

    /// Generic per-row update through the shared [`Acc`] machinery. Returns
    /// `true` when the reservation could not cover every new group.
    fn update_generic(
        &self,
        batch: &RowBatch,
        key_cols: &[ColumnRef],
        arg_cols: &[Option<ColumnRef>],
        table: &mut AggTable,
        reservation: &mut Reservation,
    ) -> Result<bool> {
        let AggTable::Generic(map) = table else {
            unreachable!("caller demoted the table");
        };
        let mut over = false;
        for i in 0..batch.num_rows() {
            let keys: Vec<GroupKey> = key_cols.iter().map(|c| c.group_key_at(i)).collect();
            let args: Vec<Option<Value>> =
                arg_cols.iter().map(|c| c.as_ref().map(|col| col.value_at(i))).collect();
            match map.entry(keys) {
                Entry::Occupied(mut e) => {
                    let (_, accs) = e.get_mut();
                    for (acc, arg) in accs.iter_mut().zip(args) {
                        acc.update(arg)?;
                    }
                }
                Entry::Vacant(e) => {
                    let reps: Vec<Value> = key_cols.iter().map(|c| c.value_at(i)).collect();
                    let mut accs: Vec<Acc> = self.aggs.iter().map(Acc::new).collect();
                    for (acc, arg) in accs.iter_mut().zip(args) {
                        acc.update(arg)?;
                    }
                    let bytes = HashAggregate::entry_bytes(&reps, &accs);
                    e.insert((reps, accs));
                    over |= !reservation.try_grow(bytes);
                }
            }
        }
        Ok(over)
    }

    /// Flush the in-memory table into partition spill files as partial rows
    /// (same format the row aggregate writes, via [`Acc::write_partial`]),
    /// releasing `reservation`.
    pub(crate) fn flush(
        &self,
        table: &mut AggTable,
        writers: &mut Option<Vec<SpillWriter>>,
        depth: u32,
        spill: &Arc<SpillDir>,
        reservation: &mut Reservation,
    ) -> Result<()> {
        if writers.is_none() {
            let mut ws = Vec::with_capacity(PARTITIONS);
            for _ in 0..PARTITIONS {
                ws.push(SpillWriter::create(spill)?);
            }
            *writers = Some(ws);
        }
        // SAFETY of expect: the branch above installs `Some` when absent.
        let ws = writers.as_mut().expect("just initialized");
        match table {
            AggTable::Fast { map, keys, sums } => {
                for (g, &k) in keys.iter().enumerate() {
                    let mut row = vec![Value::Int(k)];
                    for per_agg in sums.iter() {
                        row.push(Value::Float(per_agg[g]));
                    }
                    let part = HashAggregate::partition_of(&[GroupKey::Int(k)], depth);
                    ws[part].write_row(&row)?;
                }
                map.clear();
                keys.clear();
                for per_agg in sums.iter_mut() {
                    per_agg.clear();
                }
            }
            AggTable::Generic(map) => {
                for (keys, (reps, accs)) in map.drain() {
                    let mut row = reps;
                    for a in &accs {
                        a.write_partial(&mut row)?;
                    }
                    ws[HashAggregate::partition_of(&keys, depth)].write_row(&row)?;
                }
            }
        }
        reservation.free();
        Ok(())
    }

    fn table_into_groups(table: AggTable) -> Vec<GroupState> {
        match table {
            AggTable::Fast { keys, sums, .. } => keys
                .iter()
                .enumerate()
                .map(|(g, &k)| {
                    let accs: Vec<Acc> = sums
                        .iter()
                        .map(|per_agg| Acc::Sum(Some(Value::Float(per_agg[g]))))
                        .collect();
                    (vec![Value::Int(k)], accs)
                })
                .collect(),
            AggTable::Generic(map) => map.into_values().collect(),
        }
    }

    /// Turn a table into a generic group map (for cross-worker merging).
    fn into_generic(table: AggTable) -> HashMap<Vec<GroupKey>, GroupState> {
        match table {
            AggTable::Generic(map) => map,
            fast @ AggTable::Fast { .. } => {
                let mut t = fast;
                Self::demote(&mut t);
                let AggTable::Generic(map) = t else { unreachable!("just demoted") };
                map
            }
        }
    }
}

/// The vectorized aggregation operator. Same two-phase hybrid hash/grace
/// scheme as the row `HashAggregate` — consume (spilling partial rows into
/// `PARTITIONS` hash partitions under memory pressure), then merge each
/// partition recursively — with batched input and expression evaluation.
///
/// With a `Segment` input the consume phase runs morsel-parallel: every
/// worker aggregates its morsels into a private table (spilling privately
/// under pressure), and the coordinator merges the partial tables — and any
/// per-worker spill partitions, matched up by partition index, which is
/// sound because `HashAggregate::partition_of` is a deterministic salted
/// hash — exactly as if they were one run.
pub struct BatchHashAggregate {
    input: AggInput,
    core: Arc<AggCore>,
    ctx: ExecContext,
    reservation: Reservation,
    state: AggState,
}

enum AggInput {
    /// Sequential: pull batches from an input stream.
    Stream(Box<dyn BatchStream>),
    /// Morsel-parallel: run the segment on a worker pool.
    Parallel(Segment),
    Consumed,
}

enum AggState {
    Pending,
    Draining {
        groups: Vec<GroupState>,
        /// Spilled partitions still to merge: the readers covering one
        /// partition's key space (several under parallel consume — one per
        /// worker that spilled — plus the coordinator's), and the depth.
        pending: Vec<(Vec<SpillReader>, u32)>,
    },
    Done,
}

impl BatchHashAggregate {
    /// Create the operator over a sequential input stream.
    pub fn new(
        input: Box<dyn BatchStream>,
        group_by: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        ctx: ExecContext,
    ) -> Self {
        Self::with_input(AggInput::Stream(input), group_by, aggs, ctx)
    }

    /// Create the operator over a morsel-parallel input segment.
    pub(crate) fn new_parallel(
        segment: Segment,
        group_by: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        ctx: ExecContext,
    ) -> Self {
        Self::with_input(AggInput::Parallel(segment), group_by, aggs, ctx)
    }

    fn with_input(
        input: AggInput,
        group_by: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        ctx: ExecContext,
    ) -> Self {
        let reservation = Reservation::empty(&ctx.budget);
        BatchHashAggregate {
            input,
            core: Arc::new(AggCore::new(group_by, aggs)),
            ctx,
            reservation,
            state: AggState::Pending,
        }
    }

    /// Phase 1: consume the input batch-at-a-time. Budget checks run per
    /// batch: if the reservation could not cover the batch's new groups, the
    /// whole table flushes to partitions afterwards.
    fn consume(&mut self) -> Result<()> {
        match std::mem::replace(&mut self.input, AggInput::Consumed) {
            AggInput::Stream(input) => self.consume_stream(input),
            AggInput::Parallel(segment) => {
                let results = parallel::run_agg_workers(&self.core, segment, &self.ctx)?;
                self.merge_workers(results)
            }
            AggInput::Consumed => unreachable!("consume called twice"),
        }
    }

    fn consume_stream(&mut self, mut input: Box<dyn BatchStream>) -> Result<()> {
        let core = Arc::clone(&self.core);
        let mut table = core.new_table();
        let mut writers: Option<Vec<SpillWriter>> = None;
        let mut saw_rows = false;

        while let Some(batch) = input.next_batch()? {
            if batch.is_empty() {
                continue;
            }
            saw_rows = true;
            let over_budget = core.update_batch(&batch, &mut table, &mut self.reservation)?;
            if over_budget {
                // Budget exhausted: spill the whole table (including the
                // entries just inserted — partials merge in phase 2). A
                // cancel arriving here is observed before the spill run
                // starts, so no run is written just to be deleted.
                self.ctx.query.check()?;
                core.flush(
                    &mut table,
                    &mut writers,
                    0,
                    &self.ctx.spill,
                    &mut self.reservation,
                )?;
            }
        }

        // Global aggregate over empty input produces one all-default row.
        if !saw_rows && core.group_by.is_empty() {
            self.set_default_row();
            return Ok(());
        }

        let mut pending = Vec::new();
        if writers.is_some() {
            // Route the residue through the partitions as well, so the merge
            // phase sees every group exactly once per partition.
            core.flush(&mut table, &mut writers, 0, &self.ctx.spill, &mut self.reservation)?;
            // SAFETY of expect: guarded by `writers.is_some()` above, and
            // `flush` never clears an already-installed writer set.
            for w in writers.expect("writers present") {
                if w.rows() > 0 {
                    pending.push((vec![w.into_reader()?], 1));
                }
            }
        }
        let groups = AggCore::table_into_groups(table);
        self.state = AggState::Draining { groups, pending };
        Ok(())
    }

    fn set_default_row(&mut self) {
        let accs: Vec<Acc> = self.core.aggs.iter().map(Acc::new).collect();
        self.state = AggState::Draining {
            groups: vec![(Vec::new(), accs)],
            pending: Vec::new(),
        };
    }

    /// Merge per-worker partial aggregation results into the operator's
    /// final state. Worker tables merge in worker order into one table
    /// (flushing to partitions if the budget runs out mid-merge); per-worker
    /// spill partitions are matched up by partition index and merged
    /// together in phase 2, so every group still surfaces exactly once.
    fn merge_workers(&mut self, results: Vec<WorkerAgg>) -> Result<()> {
        let core = Arc::clone(&self.core);
        let mut total_rows = 0u64;
        let mut table = core.new_table();
        let mut writers: Option<Vec<SpillWriter>> = None;
        let mut worker_writers: Vec<Vec<SpillWriter>> = Vec::new();

        for (w, worker) in results.into_iter().enumerate() {
            // One check per worker merge: breaker merges are the only
            // aggregate phase not already covered by the per-batch guards.
            self.ctx.query.check()?;
            total_rows += worker.rows_seen;
            if w == 0 {
                // The first worker's table seeds the merge wholesale — its
                // groups keep their existing charge (adopted below) instead
                // of being re-inserted one by one.
                table = worker.table;
                self.reservation.adopt(worker.reservation);
            } else {
                let over = self.merge_table(&mut table, worker.table)?;
                // The worker's charge is released now that its entries
                // moved into the coordinator table (re-charged above).
                drop(worker.reservation);
                if over {
                    core.flush(
                        &mut table,
                        &mut writers,
                        0,
                        &self.ctx.spill,
                        &mut self.reservation,
                    )?;
                }
            }
            if let Some(ws) = worker.writers {
                worker_writers.push(ws);
            }
        }

        if total_rows == 0 && core.group_by.is_empty() {
            self.set_default_row();
            return Ok(());
        }

        let mut pending: Vec<(Vec<SpillReader>, u32)> = Vec::new();
        if writers.is_some() || !worker_writers.is_empty() {
            // Someone spilled: route every in-memory group through the
            // partitions too, then merge each partition's readers (from all
            // workers plus the coordinator) as one key space.
            core.flush(&mut table, &mut writers, 0, &self.ctx.spill, &mut self.reservation)?;
            let mut per_part: Vec<Vec<SpillReader>> =
                (0..PARTITIONS).map(|_| Vec::new()).collect();
            for ws in worker_writers.into_iter().chain(writers) {
                for (p, w) in ws.into_iter().enumerate() {
                    if w.rows() > 0 {
                        per_part[p].push(w.into_reader()?);
                    }
                }
            }
            for readers in per_part {
                if !readers.is_empty() {
                    pending.push((readers, 1));
                }
            }
        }
        let groups = AggCore::table_into_groups(table);
        self.state = AggState::Draining { groups, pending };
        Ok(())
    }

    /// Merge one worker's table into the coordinator table, charging the
    /// operator reservation per new group. Returns `true` on budget
    /// exhaustion (caller flushes).
    fn merge_table(&mut self, dst: &mut AggTable, src: AggTable) -> Result<bool> {
        let mut over = false;
        match (&mut *dst, src) {
            (
                AggTable::Fast { map, keys, sums },
                AggTable::Fast { keys: src_keys, sums: src_sums, .. },
            ) => {
                for (g, &k) in src_keys.iter().enumerate() {
                    let d = match map.entry(k) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            let d = keys.len() as u32;
                            e.insert(d);
                            keys.push(k);
                            for per_agg in sums.iter_mut() {
                                per_agg.push(0.0);
                            }
                            over |= !self.reservation.try_grow(self.core.fast_bytes);
                            d
                        }
                    };
                    for (a, src_per_agg) in src_sums.iter().enumerate() {
                        sums[a][d as usize] += src_per_agg[g];
                    }
                }
            }
            (_, src) => {
                // Mixed or generic: merge through the shared Acc machinery.
                AggCore::demote(dst);
                let AggTable::Generic(dst_map) = dst else { unreachable!("just demoted") };
                for (keys, (reps, accs)) in AggCore::into_generic(src) {
                    match dst_map.entry(keys) {
                        Entry::Occupied(mut e) => {
                            let (_, dst_accs) = e.get_mut();
                            for (d, s) in dst_accs.iter_mut().zip(&accs) {
                                d.merge_from(s)?;
                            }
                        }
                        Entry::Vacant(e) => {
                            let bytes = HashAggregate::entry_bytes(&reps, &accs);
                            e.insert((reps, accs));
                            over |= !self.reservation.try_grow(bytes);
                        }
                    }
                }
            }
        }
        Ok(over)
    }

    /// Merge one spilled partition of partial rows (possibly split over
    /// several readers under parallel consume); partitions that still exceed
    /// the budget re-partition one level deeper (depth-salted hash).
    fn merge_partition(&mut self, readers: Vec<SpillReader>, depth: u32) -> Result<()> {
        let core = Arc::clone(&self.core);
        let k = core.group_by.len();
        let mut map: HashMap<Vec<GroupKey>, GroupState> = HashMap::new();
        let mut writers: Option<Vec<SpillWriter>> = None;

        for mut reader in readers {
            // One spilled run is one cancellation unit: check before each
            // reader, and count the drained run against the latency meter.
            self.ctx.query.check()?;
            while let Some(row) = reader.next_row()? {
                let reps: Vec<Value> = row[..k].to_vec();
                let keys: Vec<GroupKey> = reps.iter().map(Value::group_key).collect();
                let is_new = !map.contains_key(&keys);
                let (_, accs) = map
                    .entry(keys)
                    .or_insert_with(|| (reps, core.aggs.iter().map(Acc::new).collect()));
                let mut pos = k;
                for acc in accs.iter_mut() {
                    acc.consume_partial(&row, &mut pos)?;
                }
                if is_new {
                    let est = row_bytes(&row) + 64 + 48 * core.aggs.len();
                    if !self.reservation.try_grow(est) {
                        if depth >= MAX_DEPTH {
                            // A partition at maximum depth is 16^MAX_DEPTH-fold
                            // smaller than the input; finish it with a bounded
                            // uncharged working set rather than fail.
                            continue;
                        }
                        let mut tmp = AggTable::Generic(std::mem::take(&mut map));
                        core.flush(
                            &mut tmp,
                            &mut writers,
                            depth,
                            &self.ctx.spill,
                            &mut self.reservation,
                        )?;
                        let AggTable::Generic(flushed) = tmp else { unreachable!() };
                        map = flushed;
                    }
                }
            }
            self.ctx.query.note_unit();
        }

        let mut extra_pending = Vec::new();
        if writers.is_some() {
            let mut tmp = AggTable::Generic(std::mem::take(&mut map));
            core.flush(&mut tmp, &mut writers, depth, &self.ctx.spill, &mut self.reservation)?;
            let AggTable::Generic(flushed) = tmp else { unreachable!() };
            map = flushed;
            // SAFETY of expect: guarded by `writers.is_some()` above, and
            // `flush` never clears an already-installed writer set.
            for w in writers.expect("writers present") {
                if w.rows() > 0 {
                    extra_pending.push((vec![w.into_reader()?], depth + 1));
                }
            }
        }
        let groups: Vec<GroupState> = map.into_values().collect();
        let AggState::Draining { groups: current, pending } = &mut self.state else {
            unreachable!("merge_partition outside draining state");
        };
        *current = groups;
        pending.extend(extra_pending);
        Ok(())
    }

    /// Finalize up to [`BATCH_SIZE`] groups into one output batch.
    fn drain_batch(&mut self) -> Result<Option<RowBatch>> {
        let take: Vec<GroupState> = {
            let AggState::Draining { groups, .. } = &mut self.state else {
                unreachable!("drain outside draining state");
            };
            if groups.is_empty() {
                return Ok(None);
            }
            let n = groups.len().min(BATCH_SIZE);
            groups.drain(..n).collect()
        };
        let mut rows: Vec<Row> = Vec::with_capacity(take.len());
        for (reps, accs) in take {
            // Release this entry's memory as it leaves the operator, so
            // downstream operators (e.g. the final sort) can reserve it.
            self.reservation.shrink(HashAggregate::entry_bytes(&reps, &accs));
            let mut row = reps;
            row.reserve(accs.len());
            for a in accs {
                row.push(a.finalize()?);
            }
            rows.push(row);
        }
        Ok(Some(RowBatch::from_owned_rows(rows)))
    }
}

impl BatchStream for BatchHashAggregate {
    fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        loop {
            match &self.state {
                AggState::Pending => self.consume()?,
                AggState::Draining { .. } => {
                    if let Some(batch) = self.drain_batch()? {
                        return Ok(Some(batch));
                    }
                    let next_part = {
                        let AggState::Draining { pending, .. } = &mut self.state else {
                            unreachable!();
                        };
                        pending.pop()
                    };
                    self.reservation.free();
                    match next_part {
                        Some((readers, depth)) => self.merge_partition(readers, depth)?,
                        None => self.state = AggState::Done,
                    }
                }
                AggState::Done => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ctx, ctx_with_budget, int_rows};
    use super::*;
    use crate::ast::BinaryOp;

    fn batches_of(rows: Vec<Row>) -> Box<dyn BatchStream> {
        Box::new(RowToBatch::new(Box::new(super::super::VecStream::new(rows))))
    }

    fn drain_batches(mut s: Box<dyn BatchStream>) -> Vec<Row> {
        let mut out = Vec::new();
        while let Some(b) = s.next_batch().unwrap() {
            out.extend(b.into_rows());
        }
        out
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column(i)
    }

    fn bin(a: BoundExpr, op: BinaryOp, b: BoundExpr) -> BoundExpr {
        BoundExpr::Binary { left: Box::new(a), op, right: Box::new(b) }
    }

    fn hash_join(
        probe: Box<dyn BatchStream>,
        build: Box<dyn BatchStream>,
        lk: Vec<BoundExpr>,
        rk: Vec<BoundExpr>,
        ctx: &ExecContext,
    ) -> BatchHashJoin {
        let (table, reservation) =
            JoinTable::build_from_stream(build, lk, rk, None, 2, ctx).unwrap();
        BatchHashJoin::new(probe, Arc::new(table), vec![reservation], false)
    }

    #[test]
    fn filter_selects_and_preserves_order() {
        let f = BatchFilter {
            input: batches_of(int_rows(&[1, -2, 3, -4, 5])),
            predicate: bin(col(0), BinaryOp::Gt, BoundExpr::Literal(Value::Int(0))),
        };
        let out = drain_batches(Box::new(f));
        assert_eq!(out, int_rows(&[1, 3, 5]));
    }

    #[test]
    fn limit_spans_batches() {
        let rows = int_rows(&(0..3000).collect::<Vec<_>>());
        let l = BatchLimit { input: batches_of(rows), remaining: 1500, to_skip: 1000 };
        let out = drain_batches(Box::new(l));
        assert_eq!(out.len(), 1500);
        assert_eq!(out[0], vec![Value::Int(1000)]);
        assert_eq!(out[1499], vec![Value::Int(2499)]);
    }

    #[test]
    fn hash_join_matches_row_semantics() {
        let left: Vec<Row> = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Null, Value::Int(30)],
        ];
        let right: Vec<Row> = vec![
            vec![Value::Int(2), Value::Int(200)],
            vec![Value::Int(2), Value::Int(201)],
            vec![Value::Null, Value::Int(202)],
        ];
        let j = hash_join(batches_of(left), batches_of(right), vec![col(0)], vec![col(0)], &ctx());
        let out = drain_batches(Box::new(j));
        assert_eq!(out.len(), 2, "NULL keys never match");
        assert_eq!(out[0][3], Value::Int(200));
        assert_eq!(out[1][3], Value::Int(201));
    }

    #[test]
    fn skewed_join_emits_bounded_batches() {
        // 2000 probe rows all hitting a 5-row match list fan out into
        // 10 000 output pairs; each emitted batch must stay near BATCH_SIZE
        // instead of materializing the whole cross product at once.
        let probe: Vec<Row> = (0..2000).map(|i| vec![Value::Int(1), Value::Int(i)]).collect();
        let build: Vec<Row> = (0..5).map(|j| vec![Value::Int(1), Value::Int(j)]).collect();
        let mut j =
            hash_join(batches_of(probe), batches_of(build), vec![col(0)], vec![col(0)], &ctx());
        let mut total = 0;
        while let Some(b) = j.next_batch().unwrap() {
            assert!(b.num_rows() <= BATCH_SIZE + 5, "oversized batch: {}", b.num_rows());
            total += b.num_rows();
        }
        assert_eq!(total, 10_000);
    }

    #[test]
    fn nested_loop_cross_join_emits_bounded_batches() {
        // A single probe row crossing a build side much larger than
        // BATCH_SIZE must still emit bounded batches: join_row resumes at
        // block granularity, so no batch exceeds BATCH_SIZE + one block.
        let probe: Vec<Row> = (0..3).map(|i| vec![Value::Int(i)]).collect();
        let build: Vec<Row> = (0..3000).map(|j| vec![Value::Int(j)]).collect();
        let mut j = BatchNestedLoopJoin::new(
            batches_of(probe),
            batches_of(build),
            1,
            1,
            None,
            false,
            &ctx(),
        )
        .unwrap();
        let mut total = 0;
        while let Some(b) = j.next_batch().unwrap() {
            assert!(
                b.num_rows() <= 2 * BATCH_SIZE,
                "oversized nested-loop batch: {}",
                b.num_rows()
            );
            total += b.num_rows();
        }
        assert_eq!(total, 9000);
    }

    #[test]
    fn nested_loop_left_outer_pads_across_resume() {
        // Outer pad decisions must survive block-granular resumption: the
        // matching probe row fans out over >BATCH_SIZE pairs (forcing
        // mid-row suspension), the other row matches nothing and pads.
        let probe: Vec<Row> = vec![vec![Value::Int(1)], vec![Value::Int(-1)]];
        let build: Vec<Row> = (0..2000).map(|j| vec![Value::Int(j)]).collect();
        let cond = bin(col(0), BinaryOp::Gt, BoundExpr::Literal(Value::Int(-1)));
        let j = BatchNestedLoopJoin::new(
            batches_of(probe),
            batches_of(build),
            1,
            1,
            Some(cond),
            true,
            &ctx(),
        )
        .unwrap();
        let out = drain_batches(Box::new(j));
        assert_eq!(out.len(), 2001, "2000 pairs for row 1, one pad for row -1");
        let pads: Vec<_> = out.iter().filter(|r| r[1].is_null()).collect();
        assert_eq!(pads.len(), 1);
        assert_eq!(pads[0][0], Value::Int(-1));
    }

    #[test]
    fn fast_aggregate_sums_per_group() {
        let rows: Vec<Row> =
            (0..4000).map(|i| vec![Value::Int(i % 7), Value::Float(0.5)]).collect();
        let agg = BatchHashAggregate::new(
            batches_of(rows),
            vec![col(0)],
            vec![AggExpr { func: AggFunc::Sum, arg: Some(col(1)), distinct: false }],
            ctx(),
        );
        let mut out = drain_batches(Box::new(agg));
        out.sort_by(|a, b| a[0].cmp_total(&b[0]));
        assert_eq!(out.len(), 7);
        // 4000 rows over 7 groups: groups 0..=3 get 572 rows, 4..=6 get 571.
        assert_eq!(out[0][1], Value::Float(572.0 * 0.5));
        assert_eq!(out[6][1], Value::Float(571.0 * 0.5));
    }

    #[test]
    fn aggregate_spills_under_budget_and_stays_correct() {
        let rows: Vec<Row> = (0..40_000)
            .map(|i| vec![Value::Int(i % 10_000), Value::Float(1.0)])
            .collect();
        let tight = ctx_with_budget(200 * 1024);
        let spill_dir = tight.spill.clone();
        let agg = BatchHashAggregate::new(
            batches_of(rows),
            vec![col(0)],
            vec![AggExpr { func: AggFunc::Sum, arg: Some(col(1)), distinct: false }],
            tight,
        );
        let mut out = drain_batches(Box::new(agg));
        assert!(spill_dir.files_created() > 0, "expected spilling to occur");
        out.sort_by(|a, b| a[0].cmp_total(&b[0]));
        assert_eq!(out.len(), 10_000);
        for row in &out {
            assert_eq!(row[1], Value::Float(4.0));
        }
    }

    #[test]
    fn generic_aggregate_handles_count_min_max() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Float(3.0)],
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Float(-1.0)],
        ];
        let aggs = vec![
            AggExpr { func: AggFunc::CountStar, arg: None, distinct: false },
            AggExpr { func: AggFunc::Min, arg: Some(col(1)), distinct: false },
            AggExpr { func: AggFunc::Max, arg: Some(col(1)), distinct: false },
        ];
        let agg = BatchHashAggregate::new(batches_of(rows), vec![col(0)], aggs, ctx());
        let mut out = drain_batches(Box::new(agg));
        out.sort_by(|a, b| a[0].cmp_total(&b[0]));
        assert_eq!(
            out[0],
            vec![Value::Int(1), Value::Int(2), Value::Float(3.0), Value::Float(3.0)]
        );
        assert_eq!(
            out[1],
            vec![Value::Int(2), Value::Int(1), Value::Float(-1.0), Value::Float(-1.0)]
        );
    }

    #[test]
    fn global_aggregate_on_empty_input_emits_defaults() {
        let agg = BatchHashAggregate::new(
            batches_of(vec![]),
            vec![],
            vec![
                AggExpr { func: AggFunc::Sum, arg: Some(col(0)), distinct: false },
                AggExpr { func: AggFunc::CountStar, arg: None, distinct: false },
            ],
            ctx(),
        );
        let out = drain_batches(Box::new(agg));
        assert_eq!(out, vec![vec![Value::Null, Value::Int(0)]]);
    }

    #[test]
    fn adapters_round_trip() {
        let rows = int_rows(&(0..2500).collect::<Vec<_>>());
        let b = batches_of(rows.clone());
        let r = BatchToRow::new(b);
        let back = RowToBatch::new(Box::new(r));
        assert_eq!(drain_batches(Box::new(back)), rows);
    }
}
