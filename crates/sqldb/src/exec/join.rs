//! Join operators: hash join (preferred) and nested-loop fallback.
//!
//! In Qymera's generated queries the build side is always a gate table with
//! 2–16 rows, so the hash join build fits trivially in any realistic budget;
//! the probe side (the quantum state) streams through unmaterialized. That
//! asymmetry is exactly why the RDBMS approach scales on sparse circuits.

use std::collections::HashMap;

use crate::ast::JoinKind;
use crate::error::{Error, Result};
use crate::expr::BoundExpr;
use crate::plan::optimizer::extract_equi_keys;
use crate::storage::budget::Reservation;
use crate::storage::spill::{row_bytes, Row};
use crate::value::{GroupKey, Value};

use super::{eval_keys, ExecContext, RowStream};

/// Uncharged rows a join build side may hold when the shared budget is
/// exhausted (the per-operator working-set floor). Shared with the
/// vectorized join in [`super::vector`] so both paths enforce one policy.
pub(crate) const BUILD_OVERDRAFT_ROWS: usize = 256;

/// Choose a join strategy for the given condition.
pub fn build_join(
    left: Box<dyn RowStream>,
    right: Box<dyn RowStream>,
    left_cols: usize,
    right_cols: usize,
    kind: JoinKind,
    on: Option<BoundExpr>,
    ctx: &ExecContext,
) -> Result<Box<dyn RowStream>> {
    match kind {
        JoinKind::Cross => Ok(Box::new(NestedLoopJoin::new(
            left, right, right_cols, None, false, ctx,
        )?)),
        // The planner rewrites RIGHT JOIN into a swapped LEFT JOIN plus a
        // reordering projection before execution (see `plan_select`).
        JoinKind::Right => Err(Error::Plan(
            "internal: RIGHT JOIN must be rewritten at plan time".into(),
        )),
        JoinKind::Inner | JoinKind::Left => {
            let outer = kind == JoinKind::Left;
            match on {
                Some(cond) => {
                    let (lk, rk, residual) = extract_equi_keys(cond, left_cols);
                    if lk.is_empty() {
                        Ok(Box::new(NestedLoopJoin::new(
                            left, right, right_cols, residual, outer, ctx,
                        )?))
                    } else {
                        Ok(Box::new(HashJoin::new(
                            left, right, right_cols, lk, rk, residual, outer, ctx,
                        )?))
                    }
                }
                None => {
                    if outer {
                        return Err(Error::Unsupported(
                            "LEFT JOIN requires an ON condition".into(),
                        ));
                    }
                    Ok(Box::new(NestedLoopJoin::new(
                        left, right, right_cols, None, false, ctx,
                    )?))
                }
            }
        }
    }
}

/// Hash join: builds on the right input, probes with the left.
struct HashJoin {
    probe: Box<dyn RowStream>,
    table: HashMap<Vec<GroupKey>, Vec<Row>>,
    left_keys: Vec<BoundExpr>,
    residual: Option<BoundExpr>,
    outer: bool,
    right_cols: usize,
    /// Pending matches for the current probe row.
    current: Option<(Row, Vec<Row>, usize, bool)>,
    _reservation: Reservation,
}

impl HashJoin {
    #[allow(clippy::too_many_arguments)]
    fn new(
        probe: Box<dyn RowStream>,
        mut build: Box<dyn RowStream>,
        right_cols: usize,
        left_keys: Vec<BoundExpr>,
        right_keys: Vec<BoundExpr>,
        residual: Option<BoundExpr>,
        outer: bool,
        ctx: &ExecContext,
    ) -> Result<Self> {
        let mut table: HashMap<Vec<GroupKey>, Vec<Row>> = HashMap::new();
        let mut reservation = Reservation::empty(&ctx.budget);
        // Every operator is guaranteed a small uncharged working-set floor
        // (cf. work_mem minimums in conventional engines); Qymera's build
        // sides are gate tables of 2–64 rows, so they always fit the floor
        // even when the shared budget is exhausted by the state pipeline.
        let mut overdraft_rows = 0usize;
        while let Some(row) = build.next_row()? {
            let keys = eval_keys(&right_keys, &row)?;
            // SQL semantics: NULL keys never match.
            if keys.iter().any(|k| matches!(k, GroupKey::Null)) {
                continue;
            }
            let bytes = row_bytes(&row) + keys.iter().map(GroupKey::heap_bytes).sum::<usize>();
            if !reservation.try_grow(bytes) {
                overdraft_rows += 1;
                if overdraft_rows > BUILD_OVERDRAFT_ROWS {
                    return Err(Error::OutOfMemory {
                        requested: bytes,
                        budget: ctx.budget.limit(),
                    });
                }
            }
            table.entry(keys).or_default().push(row);
        }
        Ok(HashJoin {
            probe,
            table,
            left_keys,
            residual,
            outer,
            right_cols,
            current: None,
            _reservation: reservation,
        })
    }

    fn combine(left: &Row, right: &Row) -> Row {
        let mut out = Vec::with_capacity(left.len() + right.len());
        out.extend(left.iter().cloned());
        out.extend(right.iter().cloned());
        out
    }

    fn null_padded(&self, left: &Row) -> Row {
        let mut out = Vec::with_capacity(left.len() + self.right_cols);
        out.extend(left.iter().cloned());
        out.extend(std::iter::repeat_n(Value::Null, self.right_cols));
        out
    }
}

impl RowStream for HashJoin {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            // Drain pending matches for the current probe row.
            if let Some((left, matches, idx, emitted)) = &mut self.current {
                while *idx < matches.len() {
                    let candidate = Self::combine(left, &matches[*idx]);
                    *idx += 1;
                    let pass = match &self.residual {
                        Some(p) => p.eval(&candidate)?.as_bool()? == Some(true),
                        None => true,
                    };
                    if pass {
                        *emitted = true;
                        return Ok(Some(candidate));
                    }
                }
                let need_pad = self.outer && !*emitted;
                let left_row = left.clone();
                self.current = None;
                if need_pad {
                    return Ok(Some(self.null_padded(&left_row)));
                }
            }
            // Advance the probe side.
            let Some(left) = self.probe.next_row()? else { return Ok(None) };
            let keys = eval_keys(&self.left_keys, &left)?;
            let matches = if keys.iter().any(|k| matches!(k, GroupKey::Null)) {
                Vec::new()
            } else {
                self.table.get(&keys).cloned().unwrap_or_default()
            };
            if matches.is_empty() {
                if self.outer {
                    return Ok(Some(self.null_padded(&left)));
                }
                continue;
            }
            self.current = Some((left, matches, 0, false));
        }
    }
}

/// Nested-loop join: materializes the right side, scans it per probe row.
struct NestedLoopJoin {
    probe: Box<dyn RowStream>,
    right_rows: Vec<Row>,
    right_cols: usize,
    condition: Option<BoundExpr>,
    outer: bool,
    current: Option<(Row, usize, bool)>,
    _reservation: Reservation,
}

impl NestedLoopJoin {
    fn new(
        probe: Box<dyn RowStream>,
        mut right: Box<dyn RowStream>,
        right_cols: usize,
        condition: Option<BoundExpr>,
        outer: bool,
        ctx: &ExecContext,
    ) -> Result<Self> {
        let mut right_rows = Vec::new();
        let mut reservation = Reservation::empty(&ctx.budget);
        let mut overdraft_rows = 0usize;
        while let Some(row) = right.next_row()? {
            let bytes = row_bytes(&row);
            if !reservation.try_grow(bytes) {
                overdraft_rows += 1;
                if overdraft_rows > BUILD_OVERDRAFT_ROWS {
                    return Err(Error::OutOfMemory {
                        requested: bytes,
                        budget: ctx.budget.limit(),
                    });
                }
            }
            right_rows.push(row);
        }
        Ok(NestedLoopJoin {
            probe,
            right_rows,
            right_cols,
            condition,
            outer,
            current: None,
            _reservation: reservation,
        })
    }
}

impl RowStream for NestedLoopJoin {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some((left, idx, emitted)) = &mut self.current {
                while *idx < self.right_rows.len() {
                    let right = &self.right_rows[*idx];
                    *idx += 1;
                    let mut candidate = Vec::with_capacity(left.len() + right.len());
                    candidate.extend(left.iter().cloned());
                    candidate.extend(right.iter().cloned());
                    let pass = match &self.condition {
                        Some(c) => c.eval(&candidate)?.as_bool()? == Some(true),
                        None => true,
                    };
                    if pass {
                        *emitted = true;
                        return Ok(Some(candidate));
                    }
                }
                let need_pad = self.outer && !*emitted;
                let left_row = left.clone();
                self.current = None;
                if need_pad {
                    let mut out = left_row;
                    out.extend(std::iter::repeat_n(Value::Null, self.right_cols));
                    return Ok(Some(out));
                }
            }
            let Some(left) = self.probe.next_row()? else { return Ok(None) };
            self.current = Some((left, 0, false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;
    use crate::ast::BinaryOp;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column(i)
    }

    fn eq(a: BoundExpr, b: BoundExpr) -> BoundExpr {
        BoundExpr::Binary { left: Box::new(a), op: BinaryOp::Eq, right: Box::new(b) }
    }

    fn rows2(pairs: &[(i64, i64)]) -> Vec<Row> {
        pairs.iter().map(|&(a, b)| vec![Value::Int(a), Value::Int(b)]).collect()
    }

    #[test]
    fn inner_hash_join_matches() {
        // left(id, x) ⋈ right(id, y) on left.id = right.id
        let left = stream_of(rows2(&[(1, 10), (2, 20), (3, 30)]));
        let right = stream_of(rows2(&[(2, 200), (3, 300), (3, 301)]));
        let j = build_join(left, right, 2, 2, JoinKind::Inner, Some(eq(col(0), col(2))), &ctx())
            .unwrap();
        let out = drain(j).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], vec![Value::Int(2), Value::Int(20), Value::Int(2), Value::Int(200)]);
    }

    #[test]
    fn left_join_pads_with_nulls() {
        let left = stream_of(rows2(&[(1, 10), (2, 20)]));
        let right = stream_of(rows2(&[(2, 200)]));
        let j = build_join(left, right, 2, 2, JoinKind::Left, Some(eq(col(0), col(2))), &ctx())
            .unwrap();
        let out = drain(j).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0][2].is_null() && out[0][3].is_null());
        assert_eq!(out[1][3], Value::Int(200));
    }

    #[test]
    fn null_keys_never_match() {
        let left = stream_of(vec![vec![Value::Null, Value::Int(1)]]);
        let right = stream_of(vec![vec![Value::Null, Value::Int(2)]]);
        let j = build_join(left, right, 2, 2, JoinKind::Inner, Some(eq(col(0), col(2))), &ctx())
            .unwrap();
        assert!(drain(j).unwrap().is_empty());
    }

    #[test]
    fn cross_join_cartesian() {
        let left = stream_of(int_rows(&[1, 2]));
        let right = stream_of(int_rows(&[10, 20, 30]));
        let j = build_join(left, right, 1, 1, JoinKind::Cross, None, &ctx()).unwrap();
        assert_eq!(drain(j).unwrap().len(), 6);
    }

    #[test]
    fn non_equi_condition_uses_nested_loop() {
        let left = stream_of(int_rows(&[1, 2, 3]));
        let right = stream_of(int_rows(&[2]));
        let cond = BoundExpr::Binary {
            left: Box::new(col(0)),
            op: BinaryOp::Gt,
            right: Box::new(col(1)),
        };
        let j = build_join(left, right, 1, 1, JoinKind::Inner, Some(cond), &ctx()).unwrap();
        let out = drain(j).unwrap();
        assert_eq!(out, vec![vec![Value::Int(3), Value::Int(2)]]);
    }

    #[test]
    fn residual_predicate_after_key_match() {
        // ON a.id = b.id AND a.x > 15
        let left = stream_of(rows2(&[(1, 10), (1, 20)]));
        let right = stream_of(rows2(&[(1, 100)]));
        let cond = BoundExpr::Binary {
            left: Box::new(eq(col(0), col(2))),
            op: BinaryOp::And,
            right: Box::new(BoundExpr::Binary {
                left: Box::new(col(1)),
                op: BinaryOp::Gt,
                right: Box::new(BoundExpr::Literal(Value::Int(15))),
            }),
        };
        let j = build_join(left, right, 2, 2, JoinKind::Inner, Some(cond), &ctx()).unwrap();
        let out = drain(j).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][1], Value::Int(20));
    }

    #[test]
    fn small_build_side_survives_tiny_budget_via_floor() {
        // 100 build rows fit the per-operator working-set floor even when
        // the shared budget is exhausted.
        let left = stream_of(int_rows(&[1]));
        let right = stream_of(int_rows(&(0..100).collect::<Vec<_>>()));
        let j = build_join(
            left,
            right,
            1,
            1,
            JoinKind::Inner,
            Some(eq(col(0), col(1))),
            &ctx_with_budget(128),
        )
        .unwrap();
        assert_eq!(drain(j).unwrap().len(), 1);
    }

    #[test]
    fn build_side_over_budget_and_floor_errors() {
        // Beyond the floor (256 rows), the budget is enforced.
        let left = stream_of(int_rows(&[1]));
        let right = stream_of(int_rows(&(0..1000).collect::<Vec<_>>()));
        let res = build_join(
            left,
            right,
            1,
            1,
            JoinKind::Inner,
            Some(eq(col(0), col(1))),
            &ctx_with_budget(128),
        );
        assert!(matches!(res, Err(Error::OutOfMemory { .. })));
    }

    #[test]
    fn mixed_int_float_keys_join() {
        // Int 2 on the left matches Float 2.0 on the right (group_key unifies)
        let left = stream_of(vec![vec![Value::Int(2)]]);
        let right = stream_of(vec![vec![Value::Float(2.0)]]);
        let j = build_join(left, right, 1, 1, JoinKind::Inner, Some(eq(col(0), col(1))), &ctx())
            .unwrap();
        assert_eq!(drain(j).unwrap().len(), 1);
    }
}
