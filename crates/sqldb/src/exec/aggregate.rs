//! Hash aggregation with recursive partition spilling.
//!
//! This operator carries Qymera's `GROUP BY` workload: every gate application
//! is one aggregation over the joined state (Fig. 2c). For dense states the
//! group table is the *entire next quantum state* (up to 2ⁿ groups), so the
//! paper's out-of-core story (§3.3) lives or dies here. The implementation is
//! a textbook hybrid hash/grace scheme:
//!
//! 1. **Consume**: aggregate input rows into an in-memory table. When the
//!    memory reservation cannot grow, flush the table as *partial aggregate
//!    rows* into 16 hash partitions on disk and keep going.
//! 2. **Merge**: drain the in-memory table, then merge each spilled
//!    partition; a partition that still does not fit re-partitions
//!    recursively (depth-limited, with a depth-salted hash).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};
use crate::expr::BoundExpr;
use crate::plan::logical::{AggExpr, AggFunc};
use crate::storage::budget::Reservation;
use crate::storage::spill::{row_bytes, Row, SpillReader, SpillWriter};
use crate::value::{GroupKey, Value};

use super::{eval_values, ExecContext, RowStream};

pub(crate) const PARTITIONS: usize = 16;
pub(crate) const MAX_DEPTH: u32 = 4;

/// Accumulator state for one aggregate in one group. Shared with the
/// vectorized aggregate in [`super::vector`], which reuses the same partial
/// row format so spilled partitions are interchangeable between paths.
#[derive(Debug, Clone)]
pub(crate) enum Acc {
    Sum(Option<Value>),
    Count(i64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
    /// DISTINCT aggregates keep the deduplicated inputs. The set spills as a
    /// count-prefixed value list inside the standard partial row (see
    /// [`Acc::write_partial`]), so DISTINCT participates in partition
    /// spilling and parallel per-worker merging like every other aggregate.
    Distinct { func: AggFunc, seen: HashMap<GroupKey, Value> },
}

impl Acc {
    pub(crate) fn new(agg: &AggExpr) -> Acc {
        if agg.distinct {
            return Acc::Distinct { func: agg.func, seen: HashMap::new() };
        }
        match agg.func {
            AggFunc::Sum => Acc::Sum(None),
            AggFunc::Count | AggFunc::CountStar => Acc::Count(0),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, count: 0 },
        }
    }

    pub(crate) fn update(&mut self, arg: Option<Value>) -> Result<()> {
        match self {
            Acc::Sum(state) => {
                let v = arg.expect("SUM requires an argument");
                if v.is_null() {
                    return Ok(());
                }
                *state = Some(match state.take() {
                    Some(cur) => cur.add(&v)?,
                    None => v,
                });
            }
            Acc::Count(n) => match arg {
                // COUNT(*) — every row counts.
                None => *n += 1,
                Some(v) if !v.is_null() => *n += 1,
                Some(_) => {}
            },
            Acc::Min(state) => {
                let v = arg.expect("MIN requires an argument");
                if v.is_null() {
                    return Ok(());
                }
                let replace = match state {
                    Some(cur) => v.cmp_total(cur) == std::cmp::Ordering::Less,
                    None => true,
                };
                if replace {
                    *state = Some(v);
                }
            }
            Acc::Max(state) => {
                let v = arg.expect("MAX requires an argument");
                if v.is_null() {
                    return Ok(());
                }
                let replace = match state {
                    Some(cur) => v.cmp_total(cur) == std::cmp::Ordering::Greater,
                    None => true,
                };
                if replace {
                    *state = Some(v);
                }
            }
            Acc::Avg { sum, count } => {
                let v = arg.expect("AVG requires an argument");
                if v.is_null() {
                    return Ok(());
                }
                *sum += v.as_f64()?;
                *count += 1;
            }
            Acc::Distinct { seen, .. } => {
                let v = arg.expect("DISTINCT aggregate requires an argument");
                if v.is_null() {
                    return Ok(());
                }
                Self::insert_distinct(seen, v);
            }
        }
        Ok(())
    }

    /// Insert one value into a distinct set, keeping a *deterministic*
    /// representative when numerically-equal values of different
    /// representations share a [`GroupKey`] (`Int 2` vs `Float 2.0`): the
    /// narrower representation wins, independent of arrival order. First-
    /// seen-wins would make `SUM(DISTINCT …)`'s result type depend on input
    /// order — and therefore on worker count under the parallel merge.
    fn insert_distinct(seen: &mut HashMap<GroupKey, Value>, v: Value) {
        fn repr_rank(v: &Value) -> u8 {
            match v {
                Value::Int(_) => 0,
                Value::Big(_) => 1,
                Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Null => 4,
            }
        }
        match seen.entry(v.group_key()) {
            Entry::Occupied(mut e) => {
                if repr_rank(&v) < repr_rank(e.get()) {
                    e.insert(v);
                }
            }
            Entry::Vacant(e) => {
                e.insert(v);
            }
        }
    }

    /// Serialize this accumulator's partial state onto `out`. Fixed-shape
    /// accumulators contribute one value (two for AVG); DISTINCT contributes
    /// a count followed by that many deduplicated values, making the record
    /// self-describing for [`Acc::consume_partial`].
    pub(crate) fn write_partial(&self, out: &mut Row) -> Result<()> {
        match self {
            Acc::Sum(v) | Acc::Min(v) | Acc::Max(v) => {
                out.push(v.clone().unwrap_or(Value::Null))
            }
            Acc::Count(n) => out.push(Value::Int(*n)),
            Acc::Avg { sum, count } => {
                out.push(Value::Float(*sum));
                out.push(Value::Int(*count));
            }
            Acc::Distinct { seen, .. } => {
                out.push(Value::Int(seen.len() as i64));
                // Serialize in total order, not HashMap order, so spill
                // records are deterministic run to run.
                out.extend(Self::sorted_distinct(seen).into_iter().cloned());
            }
        }
        Ok(())
    }

    /// The distinct set's values in [`Value::cmp_total`] order. DISTINCT
    /// folds (SUM/AVG) and spill records must not depend on HashMap
    /// iteration order — float accumulation order shows in the last ulp,
    /// and a per-instance-seeded hash would make repeated runs differ.
    fn sorted_distinct(seen: &HashMap<GroupKey, Value>) -> Vec<&Value> {
        let mut vals: Vec<&Value> = seen.values().collect();
        vals.sort_by(|a, b| a.cmp_total(b));
        vals
    }

    /// Merge one accumulator's slice of a partial row (the inverse of
    /// [`Acc::write_partial`]), reading from `row[*pos..]` and advancing
    /// `*pos` past the consumed values.
    pub(crate) fn consume_partial(&mut self, row: &[Value], pos: &mut usize) -> Result<()> {
        match self {
            Acc::Sum(state) => {
                let v = &row[*pos];
                *pos += 1;
                if !v.is_null() {
                    *state = Some(match state.take() {
                        Some(cur) => cur.add(v)?,
                        None => v.clone(),
                    });
                }
            }
            Acc::Count(n) => {
                *n += row[*pos].as_i64()?;
                *pos += 1;
            }
            Acc::Min(state) => {
                let v = &row[*pos];
                *pos += 1;
                if !v.is_null() {
                    let replace = match state {
                        Some(cur) => v.cmp_total(cur) == std::cmp::Ordering::Less,
                        None => true,
                    };
                    if replace {
                        *state = Some(v.clone());
                    }
                }
            }
            Acc::Max(state) => {
                let v = &row[*pos];
                *pos += 1;
                if !v.is_null() {
                    let replace = match state {
                        Some(cur) => v.cmp_total(cur) == std::cmp::Ordering::Greater,
                        None => true,
                    };
                    if replace {
                        *state = Some(v.clone());
                    }
                }
            }
            Acc::Avg { sum, count } => {
                *sum += row[*pos].as_f64()?;
                *count += row[*pos + 1].as_i64()?;
                *pos += 2;
            }
            Acc::Distinct { seen, .. } => {
                let n = row[*pos].as_i64()? as usize;
                if row.len() < *pos + 1 + n {
                    return Err(Error::Io("truncated DISTINCT partial record".into()));
                }
                for v in &row[*pos + 1..*pos + 1 + n] {
                    Self::insert_distinct(seen, v.clone());
                }
                *pos += 1 + n;
            }
        }
        Ok(())
    }

    /// Merge another accumulator of the same shape into this one (used when
    /// the parallel aggregate combines per-worker tables). Direct
    /// variant-to-variant merges — no partial-row round trip, which would
    /// allocate per group per worker. DISTINCT accumulators merge by set
    /// union; mismatched shapes cannot occur because every table derives its
    /// accumulators from the same aggregate list.
    pub(crate) fn merge_from(&mut self, other: &Acc) -> Result<()> {
        match (&mut *self, other) {
            (Acc::Sum(state), Acc::Sum(v)) => {
                if let Some(v) = v {
                    *state = Some(match state.take() {
                        Some(cur) => cur.add(v)?,
                        None => v.clone(),
                    });
                }
            }
            (Acc::Count(n), Acc::Count(m)) => *n += m,
            (Acc::Min(state), Acc::Min(v)) => {
                if let Some(v) = v {
                    let replace = match state {
                        Some(cur) => v.cmp_total(cur) == std::cmp::Ordering::Less,
                        None => true,
                    };
                    if replace {
                        *state = Some(v.clone());
                    }
                }
            }
            (Acc::Max(state), Acc::Max(v)) => {
                if let Some(v) = v {
                    let replace = match state {
                        Some(cur) => v.cmp_total(cur) == std::cmp::Ordering::Greater,
                        None => true,
                    };
                    if replace {
                        *state = Some(v.clone());
                    }
                }
            }
            (Acc::Avg { sum, count }, Acc::Avg { sum: s, count: c }) => {
                *sum += s;
                *count += c;
            }
            (Acc::Distinct { seen, .. }, Acc::Distinct { seen: other, .. }) => {
                for v in other.values() {
                    Self::insert_distinct(seen, v.clone());
                }
            }
            _ => {
                return Err(Error::Eval(
                    "internal: mismatched accumulator shapes in parallel merge".into(),
                ))
            }
        }
        Ok(())
    }

    pub(crate) fn finalize(self) -> Result<Value> {
        Ok(match self {
            Acc::Sum(v) | Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Count(n) => Value::Int(n),
            Acc::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            Acc::Distinct { func, seen } => match func {
                AggFunc::Count => Value::Int(seen.len() as i64),
                AggFunc::Sum => {
                    // Fold in total order (see `sorted_distinct`): float
                    // sums are then bit-identical across runs, execution
                    // paths, and worker counts.
                    let mut acc: Option<Value> = None;
                    for v in Self::sorted_distinct(&seen) {
                        acc = Some(match acc {
                            Some(cur) => cur.add(v)?,
                            None => v.clone(),
                        });
                    }
                    acc.unwrap_or(Value::Null)
                }
                AggFunc::Avg => {
                    if seen.is_empty() {
                        Value::Null
                    } else {
                        let mut s = 0.0;
                        for v in Self::sorted_distinct(&seen) {
                            s += v.as_f64()?;
                        }
                        Value::Float(s / seen.len() as f64)
                    }
                }
                AggFunc::Min => seen
                    .values()
                    .cloned()
                    .min_by(|a, b| a.cmp_total(b))
                    .unwrap_or(Value::Null),
                AggFunc::Max => seen
                    .values()
                    .cloned()
                    .max_by(|a, b| a.cmp_total(b))
                    .unwrap_or(Value::Null),
                AggFunc::CountStar => Value::Int(seen.len() as i64),
            },
        })
    }

    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Acc::Distinct { seen, .. } => {
                48 + seen.iter().map(|(k, v)| k.heap_bytes() + v.heap_bytes() + 16).sum::<usize>()
            }
            _ => 48,
        }
    }
}

pub(crate) type GroupState = (Vec<Value>, Vec<Acc>); // (representative key values, accumulators)

/// The aggregation operator.
pub struct HashAggregate {
    input: Option<Box<dyn RowStream>>,
    group_by: Vec<BoundExpr>,
    aggs: Vec<AggExpr>,
    ctx: ExecContext,
    reservation: Reservation,
    state: State,
}

enum State {
    /// Not yet executed.
    Pending,
    /// Producing output.
    Draining {
        current: std::vec::IntoIter<GroupState>,
        /// Spilled partitions still to merge (reader, depth).
        pending: Vec<(SpillReader, u32)>,
    },
    Done,
}

impl HashAggregate {
    /// Aggregate `input` grouped by `group_by`, computing `aggs` per group.
    pub fn new(
        input: Box<dyn RowStream>,
        group_by: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        ctx: ExecContext,
    ) -> Self {
        let reservation = Reservation::empty(&ctx.budget);
        HashAggregate {
            input: Some(input),
            group_by,
            aggs,
            ctx,
            reservation,
            state: State::Pending,
        }
    }

    fn keys_of(reps: &[Value]) -> Vec<GroupKey> {
        reps.iter().map(Value::group_key).collect()
    }

    pub(crate) fn entry_bytes(reps: &[Value], accs: &[Acc]) -> usize {
        row_bytes(reps) + accs.iter().map(Acc::heap_bytes).sum::<usize>() + 64
    }

    pub(crate) fn partition_of(keys: &[GroupKey], depth: u32) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // Salt by depth so recursive re-partitioning actually redistributes.
        (0x9e3779b97f4a7c15u64 ^ u64::from(depth)).hash(&mut h);
        keys.hash(&mut h);
        (h.finish() as usize) % PARTITIONS
    }

    /// Flush the in-memory table into partition spill files as partial rows.
    fn flush(
        &mut self,
        map: &mut HashMap<Vec<GroupKey>, GroupState>,
        writers: &mut Option<Vec<SpillWriter>>,
        depth: u32,
    ) -> Result<()> {
        if writers.is_none() {
            let mut ws = Vec::with_capacity(PARTITIONS);
            for _ in 0..PARTITIONS {
                ws.push(SpillWriter::create(&self.ctx.spill)?);
            }
            *writers = Some(ws);
        }
        let ws = writers.as_mut().expect("just initialized");
        for (keys, (reps, accs)) in map.drain() {
            let mut row = reps;
            for a in &accs {
                a.write_partial(&mut row)?;
            }
            ws[Self::partition_of(&keys, depth)].write_row(&row)?;
        }
        self.reservation.free();
        Ok(())
    }

    /// Phase 1: consume the input stream.
    fn consume(&mut self) -> Result<()> {
        let mut input = self.input.take().expect("consume called twice");
        let mut map: HashMap<Vec<GroupKey>, GroupState> = HashMap::new();
        let mut writers: Option<Vec<SpillWriter>> = None;
        let mut saw_rows = false;

        while let Some(row) = input.next_row()? {
            saw_rows = true;
            let reps = eval_values(&self.group_by, &row)?;
            let keys = Self::keys_of(&reps);
            // Evaluate aggregate arguments before taking the map entry.
            let mut args = Vec::with_capacity(self.aggs.len());
            for agg in &self.aggs {
                args.push(match &agg.arg {
                    Some(e) => Some(e.eval(&row)?),
                    None => None,
                });
            }
            let mut new_entry_bytes = None;
            match map.entry(keys) {
                Entry::Occupied(mut e) => {
                    let (_, accs) = e.get_mut();
                    for (acc, arg) in accs.iter_mut().zip(args) {
                        acc.update(arg)?;
                    }
                }
                Entry::Vacant(e) => {
                    let mut accs: Vec<Acc> = self.aggs.iter().map(Acc::new).collect();
                    for (acc, arg) in accs.iter_mut().zip(args) {
                        acc.update(arg)?;
                    }
                    new_entry_bytes = Some(Self::entry_bytes(&reps, &accs));
                    e.insert((reps, accs));
                }
            }
            if let Some(bytes) = new_entry_bytes {
                if !self.reservation.try_grow(bytes) {
                    // Budget exhausted: spill the whole table (including the
                    // entry just inserted — partials merge in phase 2).
                    self.flush(&mut map, &mut writers, 0)?;
                }
            }
        }

        // Global aggregate over empty input produces one all-default row.
        if !saw_rows && self.group_by.is_empty() {
            let accs: Vec<Acc> = self.aggs.iter().map(Acc::new).collect();
            map.insert(Vec::new(), (Vec::new(), accs));
        }

        let mut pending = Vec::new();
        if writers.is_some() {
            // Route the residue through the partitions as well, so phase 2
            // sees every group exactly once per partition.
            self.flush(&mut map, &mut writers, 0)?;
            for w in writers.expect("writers present") {
                if w.rows() > 0 {
                    pending.push((w.into_reader()?, 1));
                }
            }
        }
        let groups: Vec<GroupState> = map.into_values().collect();
        self.state = State::Draining { current: groups.into_iter(), pending };
        Ok(())
    }

    /// Merge one spilled partition of partial rows; partitions that still
    /// exceed the budget re-partition one level deeper (depth-salted hash).
    fn merge_partition(&mut self, mut reader: SpillReader, depth: u32) -> Result<()> {
        let k = self.group_by.len();
        let mut map: HashMap<Vec<GroupKey>, GroupState> = HashMap::new();
        let mut writers: Option<Vec<SpillWriter>> = None;

        while let Some(row) = reader.next_row()? {
            let reps: Vec<Value> = row[..k].to_vec();
            let keys = Self::keys_of(&reps);
            let is_new = !map.contains_key(&keys);
            let (_, accs) = map
                .entry(keys)
                .or_insert_with(|| (reps, self.aggs.iter().map(Acc::new).collect()));
            let mut pos = k;
            for acc in accs.iter_mut() {
                acc.consume_partial(&row, &mut pos)?;
            }
            if is_new {
                // Estimate with a fresh accumulator set (cheap, avoids
                // re-borrowing the entry).
                let est = row_bytes(&row) + 64 + 48 * self.aggs.len();
                if !self.reservation.try_grow(est) {
                    if depth >= MAX_DEPTH {
                        // A partition at maximum depth is 16^MAX_DEPTH-fold
                        // smaller than the input; rather than fail when other
                        // pipeline operators hold the budget, finish it with
                        // a bounded uncharged working set.
                        continue;
                    }
                    self.flush(&mut map, &mut writers, depth)?;
                }
            }
        }

        let mut extra_pending = Vec::new();
        if writers.is_some() {
            self.flush(&mut map, &mut writers, depth)?;
            for w in writers.expect("writers present") {
                if w.rows() > 0 {
                    extra_pending.push((w.into_reader()?, depth + 1));
                }
            }
        }
        let groups: Vec<GroupState> = map.into_values().collect();
        let State::Draining { current, pending } = &mut self.state else {
            unreachable!("merge_partition outside draining state");
        };
        *current = groups.into_iter();
        pending.extend(extra_pending);
        Ok(())
    }

    fn finalize_group(&mut self, (reps, accs): GroupState) -> Result<Row> {
        // Release this entry's memory as it leaves the operator, so
        // downstream operators (e.g. the final sort) can reserve it —
        // otherwise deep CTE pipelines starve under tight shared budgets.
        self.reservation.shrink(Self::entry_bytes(&reps, &accs));
        let mut row = reps;
        row.reserve(accs.len());
        for a in accs {
            row.push(a.finalize()?);
        }
        Ok(row)
    }
}

impl RowStream for HashAggregate {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            enum Step {
                Consume,
                Emit(GroupState),
                Merge(SpillReader, u32),
                Finish,
                Done,
            }
            let step = match &mut self.state {
                State::Pending => Step::Consume,
                State::Draining { current, pending } => match current.next() {
                    Some(group) => Step::Emit(group),
                    None => match pending.pop() {
                        Some((reader, depth)) => Step::Merge(reader, depth),
                        None => Step::Finish,
                    },
                },
                State::Done => Step::Done,
            };
            match step {
                Step::Consume => self.consume()?,
                Step::Emit(group) => return Ok(Some(self.finalize_group(group)?)),
                Step::Merge(reader, depth) => {
                    self.reservation.free();
                    self.merge_partition(reader, depth)?;
                }
                Step::Finish => {
                    self.reservation.free();
                    self.state = State::Done;
                }
                Step::Done => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::*;
    use super::*;

    fn sum_agg(col: usize) -> AggExpr {
        AggExpr { func: AggFunc::Sum, arg: Some(BoundExpr::Column(col)), distinct: false }
    }

    fn count_star() -> AggExpr {
        AggExpr { func: AggFunc::CountStar, arg: None, distinct: false }
    }

    fn run(
        rows: Vec<Row>,
        group_by: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        ctx: ExecContext,
    ) -> Vec<Row> {
        let agg = HashAggregate::new(stream_of(rows), group_by, aggs, ctx);
        let mut out = drain(Box::new(agg)).unwrap();
        out.sort_by(|a, b| a[0].cmp_total(&b[0]));
        out
    }

    fn pairs(data: &[(i64, f64)]) -> Vec<Row> {
        data.iter().map(|&(k, v)| vec![Value::Int(k), Value::Float(v)]).collect()
    }

    #[test]
    fn grouped_sum_and_count() {
        let rows = pairs(&[(1, 0.5), (2, 1.0), (1, 0.25), (2, -1.0)]);
        let out = run(
            rows,
            vec![BoundExpr::Column(0)],
            vec![sum_agg(1), count_star()],
            ctx(),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![Value::Int(1), Value::Float(0.75), Value::Int(2)]);
        assert_eq!(out[1], vec![Value::Int(2), Value::Float(0.0), Value::Int(2)]);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let out = run(vec![], vec![], vec![sum_agg(0), count_star()], ctx());
        assert_eq!(out, vec![vec![Value::Null, Value::Int(0)]]);
    }

    #[test]
    fn grouped_aggregate_on_empty_input_is_empty() {
        let out = run(vec![], vec![BoundExpr::Column(0)], vec![count_star()], ctx());
        assert!(out.is_empty());
    }

    #[test]
    fn min_max_avg() {
        let rows = pairs(&[(1, 3.0), (1, 1.0), (1, 2.0)]);
        let aggs = vec![
            AggExpr { func: AggFunc::Min, arg: Some(BoundExpr::Column(1)), distinct: false },
            AggExpr { func: AggFunc::Max, arg: Some(BoundExpr::Column(1)), distinct: false },
            AggExpr { func: AggFunc::Avg, arg: Some(BoundExpr::Column(1)), distinct: false },
        ];
        let out = run(rows, vec![BoundExpr::Column(0)], aggs, ctx());
        assert_eq!(
            out[0],
            vec![Value::Int(1), Value::Float(1.0), Value::Float(3.0), Value::Float(2.0)]
        );
    }

    #[test]
    fn nulls_are_ignored_by_sum_and_count() {
        let rows = vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(1), Value::Float(2.0)],
        ];
        let aggs = vec![
            sum_agg(1),
            AggExpr { func: AggFunc::Count, arg: Some(BoundExpr::Column(1)), distinct: false },
            count_star(),
        ];
        let out = run(rows, vec![BoundExpr::Column(0)], aggs, ctx());
        assert_eq!(
            out[0],
            vec![Value::Int(1), Value::Float(2.0), Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn distinct_representative_is_order_independent() {
        // Int 2 and Float 2.0 share a GroupKey; the retained representative
        // (and so SUM(DISTINCT)'s result type) must not depend on which
        // arrives first — sequential input order and parallel worker-merge
        // order both reduce to the same narrowest-representation rule.
        let aggs =
            vec![AggExpr { func: AggFunc::Sum, arg: Some(BoundExpr::Column(1)), distinct: true }];
        let forward = vec![
            vec![Value::Int(1), Value::Float(2.0)],
            vec![Value::Int(1), Value::Int(2)],
        ];
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = run(forward, vec![BoundExpr::Column(0)], aggs.clone(), ctx());
        let b = run(reversed, vec![BoundExpr::Column(0)], aggs, ctx());
        assert_eq!(a, b);
        assert!(matches!(a[0][1], Value::Int(2)), "narrower representation wins: {:?}", a);
    }

    #[test]
    fn distinct_aggregates() {
        let rows = pairs(&[(1, 2.0), (1, 2.0), (1, 3.0)]);
        let aggs = vec![
            AggExpr { func: AggFunc::Count, arg: Some(BoundExpr::Column(1)), distinct: true },
            AggExpr { func: AggFunc::Sum, arg: Some(BoundExpr::Column(1)), distinct: true },
        ];
        let out = run(rows, vec![BoundExpr::Column(0)], aggs, ctx());
        assert_eq!(out[0], vec![Value::Int(1), Value::Int(2), Value::Float(5.0)]);
    }

    #[test]
    fn spill_path_produces_identical_results() {
        // 10k groups with a budget small enough to force several flushes.
        let rows: Vec<Row> = (0..40_000)
            .map(|i| vec![Value::Int(i % 10_000), Value::Float(1.0)])
            .collect();
        let tight = ctx_with_budget(200 * 1024);
        let spill_dir = tight.spill.clone();
        let out = run(
            rows.clone(),
            vec![BoundExpr::Column(0)],
            vec![sum_agg(1), count_star()],
            tight,
        );
        assert!(spill_dir.files_created() > 0, "expected spilling to occur");
        assert_eq!(out.len(), 10_000);
        for row in &out {
            assert_eq!(row[1], Value::Float(4.0));
            assert_eq!(row[2], Value::Int(4));
        }
        // Same answer without any budget pressure.
        let out2 = run(
            rows,
            vec![BoundExpr::Column(0)],
            vec![sum_agg(1), count_star()],
            ctx(),
        );
        assert_eq!(out, out2);
    }

    #[test]
    fn group_key_unification_int_float() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.0)],
            vec![Value::Float(1.0), Value::Float(2.0)],
        ];
        let out = run(rows, vec![BoundExpr::Column(0)], vec![sum_agg(1)], ctx());
        assert_eq!(out.len(), 1, "Int(1) and Float(1.0) group together");
        assert_eq!(out[0][1], Value::Float(3.0));
    }

    #[test]
    fn sum_integer_stays_integer() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(1), Value::Int(3)],
        ];
        let out = run(rows, vec![BoundExpr::Column(0)], vec![sum_agg(1)], ctx());
        assert_eq!(out[0][1], Value::Int(5));
    }
}
