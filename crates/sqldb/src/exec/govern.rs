//! Query-lifecycle governance: cooperative cancellation, deadlines, memory
//! grants, and admission control.
//!
//! Every statement executes under a [`QueryContext`] — a shared token
//! carrying the cancel flag, the optional deadline, and the optional memory
//! grant carved from the global [`crate::MemoryBudget`] ledger. Operators
//! call [`QueryContext::check`] at every unit boundary (one batch, one
//! morsel, one spill run, one build block); the first failing check latches
//! the outcome so every worker and operator surfaces the *same* typed error
//! ([`Error::Cancelled`] or [`Error::Timeout`]) no matter which one observed
//! it first. Cancellation is cooperative: nothing is killed mid-write, so
//! the ordinary RAII cleanup (spill files, ledger reservations, WAL
//! truncate-repair + `TableUndo` rollback) runs exactly as it does for any
//! other statement error.
//!
//! Admission control is two-layered:
//! - [`AdmissionController`]: in-process bounded concurrent query grants
//!   with a small retry/backoff queue, shared across `Database` handles via
//!   [`crate::Database::set_admission_controller`].
//! - process slots (`QYMERA_DB_SLOTS`): bounded concurrent *processes* on
//!   one durable database directory, implemented as `create_new` lock files
//!   under `<dir>/slots/` and released on drop.
//!
//! Both reject with a typed [`Error::Overloaded`] once the backoff budget is
//! exhausted, without starting the statement.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// No outcome latched; the query is live.
const KIND_NONE: u8 = 0;
/// Latched: cooperative cancel (handle, injection point, or `cancel()`).
const KIND_CANCELLED: u8 = 1;
/// Latched: the deadline passed.
const KIND_TIMEOUT: u8 = 2;

/// Poll-count sentinel meaning "deterministic cancel injection disarmed".
const POLL_DISARMED: u64 = u64::MAX;

#[derive(Debug)]
struct QueryInner {
    /// First failure wins: 0 = live, 1 = cancelled, 2 = timed out.
    kind: AtomicU8,
    /// Absolute deadline, if the statement runs under a timeout.
    deadline: Option<Instant>,
    /// The configured timeout in ms, reported in [`Error::Timeout`].
    timeout_ms: u64,
    /// External interrupt flag shared with [`CancelHandle`] (CLI Ctrl-C).
    interrupt: Arc<AtomicBool>,
    /// Per-query memory grant in bytes; `None` = the full global budget.
    grant: Option<usize>,
    /// Deterministic injection: latch a cancel once `polls` reaches this.
    cancel_at_poll: u64,
    /// Checkpoint polls so far (every `check()` call counts one).
    polls: AtomicU64,
    /// Work units (batch/morsel/spill-run/build-block) that *completed*
    /// after the cancel flag was already set — the cancellation-latency
    /// meter. Debug builds only; asserted ≤ in-flight bound by the tests.
    #[cfg(debug_assertions)]
    units_after_cancel: AtomicU64,
}

/// Per-statement governance token: cancellation + deadline + memory grant.
///
/// Cheap to clone (`Arc` inside) and `Send + Sync`, so parallel workers
/// share one token. Created by `Database` for every statement; tests and
/// standalone operators use [`QueryContext::unbounded`].
#[derive(Debug, Clone)]
pub struct QueryContext {
    inner: Arc<QueryInner>,
}

impl QueryContext {
    fn build(
        timeout_ms: Option<u64>,
        grant: Option<usize>,
        interrupt: Arc<AtomicBool>,
        cancel_at_poll: Option<u64>,
    ) -> Self {
        let timeout_ms = timeout_ms.unwrap_or(0);
        QueryContext {
            inner: Arc::new(QueryInner {
                kind: AtomicU8::new(KIND_NONE),
                deadline: (timeout_ms > 0)
                    .then(|| Instant::now() + Duration::from_millis(timeout_ms)),
                timeout_ms,
                interrupt,
                grant,
                cancel_at_poll: cancel_at_poll.unwrap_or(POLL_DISARMED),
                polls: AtomicU64::new(0),
                #[cfg(debug_assertions)]
                units_after_cancel: AtomicU64::new(0),
            }),
        }
    }

    /// A token with no deadline, no grant, and a private interrupt flag —
    /// the identity element of governance. Used by operator unit tests and
    /// as the default for contexts built outside a statement.
    pub fn unbounded() -> Self {
        Self::build(None, None, Arc::new(AtomicBool::new(false)), None)
    }

    /// Token for one statement. `interrupt` is the database's session flag
    /// (shared with [`CancelHandle`]); `cancel_at_poll` arms deterministic
    /// cancel injection at the n-th checkpoint poll.
    pub(crate) fn begin(
        timeout_ms: Option<u64>,
        grant: Option<usize>,
        interrupt: Arc<AtomicBool>,
        cancel_at_poll: Option<u64>,
    ) -> Self {
        Self::build(timeout_ms, grant, interrupt, cancel_at_poll)
    }

    /// Latch `kind` as the query outcome unless one is already latched.
    fn latch(&self, kind: u8) {
        let _ = self.inner.kind.compare_exchange(
            KIND_NONE,
            kind,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Request cooperative cancellation of this query directly.
    pub fn cancel(&self) {
        self.latch(KIND_CANCELLED);
    }

    /// Whether a cancel/interrupt is already visible (latched outcome or the
    /// external interrupt flag). Does not consult the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.kind.load(Ordering::Relaxed) != KIND_NONE
            || self.inner.interrupt.load(Ordering::Relaxed)
    }

    /// The latched typed error, if any.
    fn latched(&self) -> Option<Error> {
        match self.inner.kind.load(Ordering::Relaxed) {
            KIND_CANCELLED => Some(Error::Cancelled),
            KIND_TIMEOUT => Some(Error::Timeout { ms: self.inner.timeout_ms }),
            _ => None,
        }
    }

    /// Checkpoint poll. Operators call this before starting each unit of
    /// work (batch, morsel, spill run, build block). Returns the latched
    /// typed error once the query is cancelled or past its deadline; the
    /// first failing check decides which error every later check repeats.
    #[inline]
    pub fn check(&self) -> Result<()> {
        let inner = &self.inner;
        let poll = inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
        if poll >= inner.cancel_at_poll {
            self.latch(KIND_CANCELLED);
        }
        if let Some(e) = self.latched() {
            return Err(e);
        }
        if inner.interrupt.load(Ordering::Relaxed) {
            self.latch(KIND_CANCELLED);
            return Err(self.latched().unwrap_or(Error::Cancelled));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                self.latch(KIND_TIMEOUT);
                return Err(self.latched().unwrap_or(Error::Timeout {
                    ms: inner.timeout_ms,
                }));
            }
        }
        Ok(())
    }

    /// Record that one unit of work finished. In debug builds this counts
    /// units completed *after* cancellation became visible — the latency
    /// meter behind the "every operator observes cancel within one
    /// batch/morsel/spill-run" invariant. Free in release builds.
    #[inline]
    pub fn note_unit(&self) {
        #[cfg(debug_assertions)]
        if self.is_cancelled() {
            self.inner.units_after_cancel.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Units of work that completed after the cancel flag was set. Always 0
    /// in release builds (the meter is debug-only) and for queries that were
    /// never cancelled. Bounded by one in-flight unit per worker plus one
    /// per operator on the executing stack; the cancellation tests assert
    /// this against [`QueryContext::latency_bound`].
    pub fn units_after_cancel(&self) -> u64 {
        #[cfg(debug_assertions)]
        {
            self.inner.units_after_cancel.load(Ordering::Relaxed)
        }
        #[cfg(not(debug_assertions))]
        {
            0
        }
    }

    /// Checkpoint polls observed so far.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }

    /// Debug-mode ceiling on [`QueryContext::units_after_cancel`]: when the
    /// flag flips, each of the `parallelism` workers may finish the morsel
    /// it already started, and each operator on the in-flight call stack
    /// (bounded by plan depth, itself capped well under
    /// `crate::db`'s big-stack threshold) may finish its current unit.
    pub fn latency_bound(parallelism: usize, plan_depth: usize) -> u64 {
        (parallelism + plan_depth + 1) as u64
    }

    /// Fail-fast grant admission: reject a reservation request that could
    /// never fit this query's memory grant, *before* any allocation or
    /// spill. `requested` is the would-be total holding of the requesting
    /// operator, not the increment.
    #[inline]
    pub fn admit(&self, requested: usize) -> Result<()> {
        match self.inner.grant {
            Some(grant) if requested > grant => {
                Err(Error::OutOfMemory { requested, budget: grant })
            }
            _ => Ok(()),
        }
    }

    /// The per-query memory grant in bytes, if one was carved.
    pub fn grant(&self) -> Option<usize> {
        self.inner.grant
    }
}

impl Default for QueryContext {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// External cancellation handle for a database session.
///
/// Returned by [`crate::Database::cancel_handle`]; clone it into any thread
/// (a Ctrl-C handler, a future async server's reaper) and call
/// [`CancelHandle::cancel`] to interrupt the statement in flight *and* any
/// statement started before [`CancelHandle::reset`] is called — the flag is
/// sticky by design so a cancel delivered between statements is not lost.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// A fresh, un-cancelled handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cooperative cancellation (async-signal-safe: one atomic store).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether a cancel has been requested and not yet [`CancelHandle::reset`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Clear the flag so the session can execute statements again.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }

    /// The shared flag, for wiring into per-statement [`QueryContext`]s.
    pub(crate) fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// Retry/backoff schedule shared by the admission queue and process slots:
/// exponential from 1 ms, capped at 25 ms per wait, 8 attempts (~100 ms of
/// queueing total) before the typed [`Error::Overloaded`] rejection.
const ADMIT_ATTEMPTS: u32 = 8;

fn backoff(attempt: u32) -> Duration {
    Duration::from_millis((1u64 << attempt.min(6)).min(25))
}

#[derive(Debug)]
struct AdmissionInner {
    max: usize,
    active: AtomicUsize,
}

/// Bounded concurrent-query admission: at most `max` statements hold a
/// grant at once. Cheap to clone; clones share one ledger, so several
/// `Database` handles (one per session thread) can share one controller.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    inner: Arc<AdmissionInner>,
}

impl AdmissionController {
    /// A controller admitting up to `max` concurrent statements (min 1).
    pub fn new(max: usize) -> Self {
        AdmissionController {
            inner: Arc::new(AdmissionInner {
                max: max.max(1),
                active: AtomicUsize::new(0),
            }),
        }
    }

    /// The configured concurrency limit.
    pub fn max_concurrent(&self) -> usize {
        self.inner.max
    }

    /// Grants currently held.
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Try to take a grant without queueing.
    pub fn try_admit(&self) -> Option<AdmissionGrant> {
        let mut cur = self.inner.active.load(Ordering::Relaxed);
        loop {
            if cur >= self.inner.max {
                return None;
            }
            match self.inner.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(AdmissionGrant { inner: Arc::clone(&self.inner) })
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Take a grant, queueing through the bounded retry/backoff schedule;
    /// rejects with [`Error::Overloaded`] once the schedule is exhausted.
    pub fn admit(&self) -> Result<AdmissionGrant> {
        for attempt in 0..ADMIT_ATTEMPTS {
            if let Some(grant) = self.try_admit() {
                return Ok(grant);
            }
            std::thread::sleep(backoff(attempt));
        }
        Err(Error::Overloaded { active: self.active(), max: self.inner.max })
    }
}

impl Default for AdmissionController {
    /// Generous default: governance is opt-in, so a lone embedded `Database`
    /// never queues, but a runaway fan-out still hits a hard ceiling.
    fn default() -> Self {
        Self::new(64)
    }
}

/// RAII admission grant; releasing (drop) frees the slot for the queue.
#[derive(Debug)]
pub struct AdmissionGrant {
    inner: Arc<AdmissionInner>,
}

impl Drop for AdmissionGrant {
    fn drop(&mut self) {
        self.inner.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII process slot on a durable database directory (see
/// [`acquire_process_slot`]); removes its lock file on drop.
#[derive(Debug)]
pub(crate) struct SlotGuard {
    path: PathBuf,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Bound the number of processes concurrently opening one durable database
/// directory: try to `create_new` one of `slots` lock files under
/// `<dir>/slots/`, retrying on the shared backoff schedule, then reject
/// with [`Error::Overloaded`]. `slots == 0` disables the mechanism
/// (`Ok(None)`). A process killed without running drop leaves its lock
/// behind; deleting `<dir>/slots/` clears stale slots (the files carry no
/// state beyond existence).
pub(crate) fn acquire_process_slot(dir: &Path, slots: usize) -> Result<Option<SlotGuard>> {
    if slots == 0 {
        return Ok(None);
    }
    let slot_dir = dir.join("slots");
    fs::create_dir_all(&slot_dir)?;
    for attempt in 0..ADMIT_ATTEMPTS {
        for i in 0..slots {
            let path = slot_dir.join(format!("slot-{i}.lock"));
            match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(_) => return Ok(Some(SlotGuard { path })),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e.into()),
            }
        }
        std::thread::sleep(backoff(attempt));
    }
    Err(Error::Overloaded { active: slots, max: slots })
}

/// `QYMERA_DB_SLOTS` — process-slot count for durable opens; 0 (default)
/// disables. Panics on an unparsable value, matching the other env knobs.
pub(crate) fn env_db_slots() -> usize {
    match std::env::var("QYMERA_DB_SLOTS") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("QYMERA_DB_SLOTS must be an integer, got {v:?}")),
        Err(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_checks_pass_and_count_polls() {
        let q = QueryContext::unbounded();
        for _ in 0..5 {
            q.check().unwrap();
        }
        assert_eq!(q.polls(), 5);
        assert_eq!(q.units_after_cancel(), 0);
    }

    #[test]
    fn cancel_latches_and_repeats() {
        let q = QueryContext::unbounded();
        q.check().unwrap();
        q.cancel();
        assert!(matches!(q.check(), Err(Error::Cancelled)));
        assert!(matches!(q.check(), Err(Error::Cancelled)));
        assert!(q.is_cancelled());
    }

    #[test]
    fn poll_armed_cancel_fires_at_nth_check() {
        let interrupt = Arc::new(AtomicBool::new(false));
        let q = QueryContext::begin(None, None, interrupt, Some(3));
        q.check().unwrap();
        q.check().unwrap();
        assert!(matches!(q.check(), Err(Error::Cancelled)));
    }

    #[test]
    fn expired_deadline_latches_timeout_over_later_cancel() {
        let interrupt = Arc::new(AtomicBool::new(false));
        let q = QueryContext::begin(Some(1), None, interrupt, None);
        std::thread::sleep(Duration::from_millis(5));
        assert!(matches!(q.check(), Err(Error::Timeout { ms: 1 })));
        q.cancel();
        // First latched outcome wins.
        assert!(matches!(q.check(), Err(Error::Timeout { ms: 1 })));
    }

    #[test]
    fn interrupt_flag_cancels_and_reset_restores() {
        let handle = CancelHandle::new();
        let q = QueryContext::begin(None, None, handle.flag(), None);
        q.check().unwrap();
        handle.cancel();
        assert!(matches!(q.check(), Err(Error::Cancelled)));
        handle.reset();
        // The outcome stays latched for this statement even after reset.
        assert!(matches!(q.check(), Err(Error::Cancelled)));
        let q2 = QueryContext::begin(None, None, handle.flag(), None);
        q2.check().unwrap();
    }

    #[test]
    fn units_after_cancel_counts_only_post_cancel_units() {
        let q = QueryContext::unbounded();
        q.note_unit();
        q.note_unit();
        assert_eq!(q.units_after_cancel(), 0);
        q.cancel();
        q.note_unit();
        if cfg!(debug_assertions) {
            assert_eq!(q.units_after_cancel(), 1);
        } else {
            assert_eq!(q.units_after_cancel(), 0);
        }
    }

    #[test]
    fn grant_admission_fails_fast() {
        let interrupt = Arc::new(AtomicBool::new(false));
        let q = QueryContext::begin(None, Some(1000), interrupt, None);
        q.admit(1000).unwrap();
        let err = q.admit(1001).unwrap_err();
        assert!(
            matches!(err, Error::OutOfMemory { requested: 1001, budget: 1000 }),
            "got {err:?}"
        );
        QueryContext::unbounded().admit(usize::MAX).unwrap();
    }

    #[test]
    fn admission_controller_bounds_and_releases() {
        let ctl = AdmissionController::new(2);
        let g1 = ctl.try_admit().unwrap();
        let _g2 = ctl.try_admit().unwrap();
        assert!(ctl.try_admit().is_none());
        assert_eq!(ctl.active(), 2);
        let err = ctl.admit().unwrap_err();
        assert!(matches!(err, Error::Overloaded { active: 2, max: 2 }));
        drop(g1);
        let _g3 = ctl.admit().unwrap();
        assert_eq!(ctl.active(), 2);
    }

    #[test]
    fn process_slots_bound_concurrent_opens() {
        let dir = std::env::temp_dir().join(format!(
            "qymera-govern-slots-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert!(acquire_process_slot(&dir, 0).unwrap().is_none());
        let g1 = acquire_process_slot(&dir, 2).unwrap().unwrap();
        let g2 = acquire_process_slot(&dir, 2).unwrap().unwrap();
        let err = acquire_process_slot(&dir, 2).unwrap_err();
        assert!(matches!(err, Error::Overloaded { active: 2, max: 2 }));
        drop(g1);
        let _g3 = acquire_process_slot(&dir, 2).unwrap().unwrap();
        drop(g2);
        drop(_g3);
        assert_eq!(fs::read_dir(dir.join("slots")).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
