//! Error taxonomy for the embedded engine.
//!
//! Every fallible public operation returns [`Result<T>`]. Errors are split by
//! pipeline stage so callers (e.g. the Qymera translator, which generates SQL
//! programmatically) can distinguish "the generated SQL is malformed" from
//! "the engine ran out of its memory budget".

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// All errors produced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Tokenizer-level failure (bad character, unterminated string, ...).
    Lex { pos: usize, message: String },
    /// Parser-level failure (unexpected token, missing clause, ...).
    Parse { pos: usize, message: String },
    /// Semantic analysis failure (unknown table/column, arity mismatch, ...).
    Plan(String),
    /// Type error during expression evaluation.
    Type(String),
    /// Runtime evaluation failure (division by zero, overflow, ...).
    Eval(String),
    /// Catalog-level failure (duplicate table, missing table, ...).
    Catalog(String),
    /// The configured memory budget cannot accommodate the operation even
    /// after spilling to disk.
    OutOfMemory { requested: usize, budget: usize },
    /// Error from the disk layer (spill files, WAL, checkpoints).
    Io(String),
    /// The statement was cancelled cooperatively (Ctrl-C, an explicit
    /// [`crate::exec::govern::CancelHandle`], or an injection point). The
    /// engine guarantees the same cleanup contract as any other statement
    /// failure: ledger restored, no orphan spill files, no partial WAL frame.
    Cancelled,
    /// The statement exceeded its deadline (`ms` is the configured timeout).
    /// Same cleanup contract as [`Error::Cancelled`].
    Timeout { ms: u64 },
    /// The admission controller rejected the statement (or a process-level
    /// database slot could not be acquired) because `active` grants already
    /// saturate the `max` concurrent limit, even after the bounded
    /// retry/backoff queue. The statement never started executing.
    Overloaded { active: usize, max: usize },
    /// The lock table chose this transaction as the deadlock victim: waiting
    /// for `table` would close a cycle in the waits-for graph, and this
    /// transaction is the youngest participant. The transaction has been
    /// rolled back (locks released, tables restored) and an immediate retry
    /// of the whole transaction is valid.
    Deadlock { table: String },
    /// A table lock could not be acquired within the bounded wait (`ms` is
    /// the configured lock timeout). Same rollback contract as
    /// [`Error::Deadlock`]: the transaction has been aborted and may be
    /// retried immediately.
    LockTimeout { table: String, ms: u64 },
    /// Feature recognized but not supported by this engine.
    Unsupported(String),
    /// An engine invariant was violated. Reaching this is a bug, but it
    /// surfaces as a typed error instead of a panic so a single bad query
    /// cannot take down an embedding process.
    Internal(String),
}

impl Error {
    pub(crate) fn lex(pos: usize, message: impl Into<String>) -> Self {
        Error::Lex { pos, message: message.into() }
    }

    pub(crate) fn parse(pos: usize, message: impl Into<String>) -> Self {
        Error::Parse { pos, message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            Error::Parse { pos, message } => write!(f, "parse error at byte {pos}: {message}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::OutOfMemory { requested, budget } => write!(
                f,
                "out of memory: requested {requested} bytes with budget {budget} bytes"
            ),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::Cancelled => write!(f, "statement cancelled"),
            Error::Timeout { ms } => {
                write!(f, "statement timed out after {ms} ms")
            }
            Error::Overloaded { active, max } => write!(
                f,
                "overloaded: {active} of {max} concurrent query grants in use"
            ),
            Error::Deadlock { table } => write!(
                f,
                "deadlock: transaction rolled back while waiting for table {table}; retry the transaction"
            ),
            Error::LockTimeout { table, ms } => write!(
                f,
                "lock timeout: could not lock table {table} within {ms} ms; transaction rolled back"
            ),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Internal(m) => write!(f, "internal error (engine bug): {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_stage() {
        let e = Error::parse(7, "expected SELECT");
        assert_eq!(e.to_string(), "parse error at byte 7: expected SELECT");
        let e = Error::OutOfMemory { requested: 10, budget: 5 };
        assert!(e.to_string().contains("budget 5"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
